/**
 * @file
 * Deterministic fault injection (docs/ROBUSTNESS.md).
 *
 * Every rung of the containment/degradation ladder needs a test, and
 * "wait for a real bug" is not a test plan.  This layer plants seeded
 * injection points at the pipeline's failure boundaries — builder
 * throw, verifier reject, slow block, allocation failure — so each
 * failure path can be driven on demand, reproducibly, from the CLI
 * (`--fault-inject`) and the daemon (`sched91 serve --fault-inject`).
 *
 * Determinism contract: whether a point fires is a pure function of
 * (seed, point, key, salt), where the key is derived from the *block
 * content* (support's FNV-1a over the instruction text), never from
 * wall clock, thread id, or arrival order.  The same input therefore
 * fails the same way at every thread count and on every replay —
 * which is what lets the soak client assert exact outcomes against a
 * fault-injecting daemon.  The salt distinguishes retry attempts, so
 * a resilience ladder can be driven through "fails once, succeeds on
 * retry" as well as "fails every attempt".
 *
 * Cost when disabled: one relaxed atomic load per injection point.
 */

#ifndef SCHED91_SUPPORT_FAULT_INJECT_HH
#define SCHED91_SUPPORT_FAULT_INJECT_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

namespace sched91::fault
{

/** Where a fault can be injected. */
enum class Point : unsigned
{
    BuilderThrow,   ///< DAG build throws FatalError
    VerifierReject, ///< independent verifier reports a rejection
    SlowBlock,      ///< block stalls (drives deadline/budget rungs)
    AllocFail,      ///< allocation failure (std::bad_alloc) at build

    // Signal-grade points: these kill (or hang) the process they fire
    // in — by design, that is the failure being simulated.  They are
    // survivable only under `sched91 serve --isolate=process`, where
    // the blast radius is one sandbox worker and the supervisor
    // answers the victim request degraded.
    CrashSegv,   ///< raise(SIGSEGV) at the build boundary
    CrashAbort,  ///< std::abort() at the build boundary
    SpinForever, ///< runaway loop; only a watchdog SIGKILL ends it
    Count_,
};

inline constexpr std::size_t kNumPoints =
    static_cast<std::size_t>(Point::Count_);

/** Spec token for a point: "builder-throw", "verifier-reject",
 * "slow-block", "alloc-fail", "crash-segv", "crash-abort",
 * "spin-forever". */
std::string_view pointName(Point p);

/** Injection configuration. */
struct Config
{
    /** Decision seed; same seed + same inputs = same faults. */
    std::uint64_t seed = 1;

    /** Per-point firing probability in [0, 1]. */
    std::array<double, kNumPoints> rate{};

    /** How long an injected slow block stalls. */
    int slowBlockMs = 25;
};

/**
 * Parse a `--fault-inject` spec: comma-separated `key=value` tokens,
 * e.g. "seed=42,builder-throw=0.25,slow-block=0.1,slow-ms=40".
 * Accepted keys: `seed`, `slow-ms`, and one per pointName().  Throws
 * FatalError on unknown keys or rates outside [0, 1].
 */
Config parseSpec(std::string_view spec);

/** Whether any injection is armed (one relaxed load). */
inline std::atomic<bool> &
enabledFlag()
{
    static std::atomic<bool> flag{false};
    return flag;
}

inline bool
enabled()
{
    return enabledFlag().load(std::memory_order_relaxed);
}

/** Arm the injector.  Not thread-safe against in-flight decisions:
 * configure before starting pipeline/daemon work. */
void configure(const Config &config);

/** Disarm and clear (tests call this between cases). */
void reset();

/** The active configuration (meaningful only while enabled()). */
const Config &activeConfig();

/**
 * Should @p point fire for work unit @p key on attempt @p salt?
 * Pure function of (seed, point, key, salt); counts
 * `fault.injected` when it fires.  Always false while disabled.
 */
bool shouldFire(Point point, std::uint64_t key, std::uint64_t salt = 0);

/** FNV-1a 64-bit content hash (also used for quarantine keys). */
std::uint64_t fnv1a64(std::string_view bytes);

/** Render @p config back to its spec string (for logs/stats). */
std::string specString(const Config &config);

} // namespace sched91::fault

#endif // SCHED91_SUPPORT_FAULT_INJECT_HH
