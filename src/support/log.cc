/**
 * @file
 * Leveled logger implementation: threshold/sink state, buffered
 * record storage, and the deterministic post-join replay.
 */

#include "support/log.hh"

#include <algorithm>
#include <utility>

namespace sched91::log
{

namespace
{
/** Sink override; stderr when null (resolved at write time so tests
 * that swap stderr early still work). */
std::FILE *g_sink = nullptr;
} // namespace

std::string_view
levelName(Level level)
{
    switch (level) {
      case Level::Error:
        return "error";
      case Level::Warn:
        return "warn";
      case Level::Info:
        return "info";
      case Level::Debug:
        return "debug";
    }
    return "?";
}

Level
parseLevel(std::string_view name)
{
    if (name == "error")
        return Level::Error;
    if (name == "warn" || name == "warning")
        return Level::Warn;
    if (name == "info")
        return Level::Info;
    if (name == "debug")
        return Level::Debug;
    fatal("unknown log level '", name,
          "' (expected error, warn, info, or debug)");
}

void
setThreshold(Level level)
{
    detail::g_threshold = level;
}

std::FILE *
sink()
{
    return g_sink ? g_sink : stderr;
}

void
setSink(std::FILE *stream)
{
    g_sink = stream;
}

void
LogBuffer::append(Level level, std::string text)
{
    records_.push_back(Record{level, key_, seq_++, std::move(text)});
}

void
LogBuffer::clear()
{
    key_ = 0;
    seq_ = 0;
    records_.clear();
}

namespace
{

void
emit(const std::string_view text)
{
    std::FILE *out = sink();
    std::fwrite(text.data(), 1, text.size(), out);
    std::fputc('\n', out);
}

} // namespace

void
write(Level level, std::string_view text)
{
    if (!enabled(level))
        return;
    if (detail::t_buffer) {
        detail::t_buffer->append(level, std::string(text));
        return;
    }
    emit(text);
}

void
replay(const std::vector<const LogBuffer *> &buffers)
{
    std::vector<const Record *> all;
    for (const LogBuffer *buf : buffers) {
        if (!buf)
            continue;
        for (const Record &r : buf->records())
            all.push_back(&r);
    }
    std::stable_sort(all.begin(), all.end(),
                     [](const Record *a, const Record *b) {
                         if (a->blockKey != b->blockKey)
                             return a->blockKey < b->blockKey;
                         return a->seq < b->seq;
                     });
    for (const Record *r : all)
        emit(r->text);
}

} // namespace sched91::log
