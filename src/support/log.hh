/**
 * @file
 * Leveled structured logger (docs/FORENSICS.md).
 *
 * One deterministic sink for everything the library and the CLI used
 * to fprintf at stderr ad hoc.  Two delivery modes:
 *
 *  - direct: a thread with no installed buffer writes straight to the
 *    process sink (stderr by default), gated by the global threshold —
 *    the CLI front end and tests use this;
 *  - buffered: the pipeline installs one LogBuffer per worker lane
 *    (ScopedLogBuffer).  Each record is tagged with the block being
 *    processed and a per-block sequence number, and after the parallel
 *    region the buffers are replayed through the sink sorted by
 *    (block, seq) — so worker output can never interleave and the
 *    bytes are identical at every thread count.
 *
 * The sink format is deliberately bare: the message, a newline,
 * nothing else.  Producers that want a prefix put it in the message
 * (the assembly diagnostics carry their own `file:line: error:`
 * rendering), which keeps the routed output byte-identical to the
 * historical fprintf sites.
 */

#ifndef SCHED91_SUPPORT_LOG_HH
#define SCHED91_SUPPORT_LOG_HH

#include <cstdint>
#include <cstdio>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "support/logging.hh"

namespace sched91::log
{

/** Severity, most to least severe.  The threshold admits a level when
 * it is numerically <= the threshold (Warn admits Error and Warn). */
enum class Level : std::uint8_t
{
    Error = 0,
    Warn = 1,
    Info = 2,
    Debug = 3,
};

/** "error" / "warn" / "info" / "debug". */
std::string_view levelName(Level level);

/** Parse a --log-level value; throws FatalError on an unknown name. */
Level parseLevel(std::string_view name);

namespace detail
{
/** Global threshold; records above it are dropped at the call site. */
inline Level g_threshold = Level::Warn;
} // namespace detail

/** Current threshold (default Warn: errors and warnings print). */
inline Level threshold() { return detail::g_threshold; }

void setThreshold(Level level);

/** Whether a record at @p level would currently be admitted. */
inline bool
enabled(Level level)
{
    return static_cast<std::uint8_t>(level) <=
           static_cast<std::uint8_t>(detail::g_threshold);
}

/** Where direct and replayed records go (stderr by default). */
std::FILE *sink();

/** Redirect the sink (tests); nullptr restores stderr. */
void setSink(std::FILE *stream);

/** One buffered record.  blockKey 0 = before any block; block b maps
 * to key b + 1, so keys sort records into block order. */
struct Record
{
    Level level = Level::Info;
    std::uint64_t blockKey = 0;
    std::uint32_t seq = 0;
    std::string text;
};

/**
 * Per-worker record buffer.  The owning lane calls setBlock() at each
 * block boundary; every appended record inherits the current block key
 * and a per-block sequence number, which makes the post-join merge a
 * total order (blocks are disjoint across lanes).
 */
class LogBuffer
{
  public:
    /** Tag subsequent records with block @p block. */
    void
    setBlock(std::uint64_t block)
    {
        key_ = block + 1;
        seq_ = 0;
    }

    void append(Level level, std::string text);

    const std::vector<Record> &records() const { return records_; }
    void clear();

  private:
    std::uint64_t key_ = 0;
    std::uint32_t seq_ = 0;
    std::vector<Record> records_;
};

namespace detail
{
/** Buffer the calling thread's records divert into (none by default). */
inline thread_local LogBuffer *t_buffer = nullptr;
} // namespace detail

/** RAII installer: route this thread's records into @p buffer. */
class ScopedLogBuffer
{
  public:
    explicit ScopedLogBuffer(LogBuffer *buffer) : prev_(detail::t_buffer)
    {
        detail::t_buffer = buffer;
    }

    ~ScopedLogBuffer() { detail::t_buffer = prev_; }

    ScopedLogBuffer(const ScopedLogBuffer &) = delete;
    ScopedLogBuffer &operator=(const ScopedLogBuffer &) = delete;

  private:
    LogBuffer *prev_;
};

/**
 * Emit one record: dropped when above the threshold, else appended to
 * the thread's installed buffer, else written to the sink.
 */
void write(Level level, std::string_view text);

/**
 * Replay buffered records through the sink in (block, seq) order.
 * Deterministic for the pipeline's buffers: each lane's block keys
 * are strictly increasing and no two lanes share a block, so the
 * sorted order is independent of how blocks were distributed.
 */
void replay(const std::vector<const LogBuffer *> &buffers);

namespace detail
{

template <typename... Args>
void
writeJoined(Level level, const Args &...args)
{
    if (!enabled(level))
        return;
    std::ostringstream os;
    ::sched91::detail::appendAll(os, args...);
    write(level, os.str());
}

} // namespace detail

template <typename... Args>
void
error(const Args &...args)
{
    detail::writeJoined(Level::Error, args...);
}

template <typename... Args>
void
warn(const Args &...args)
{
    detail::writeJoined(Level::Warn, args...);
}

template <typename... Args>
void
info(const Args &...args)
{
    detail::writeJoined(Level::Info, args...);
}

template <typename... Args>
void
debug(const Args &...args)
{
    detail::writeJoined(Level::Debug, args...);
}

} // namespace sched91::log

#endif // SCHED91_SUPPORT_LOG_HH
