/**
 * @file
 * Minimal logging / assertion helpers, modeled on gem5's panic()/fatal()
 * split: panic() means an internal library bug, fatal() means a user
 * error (bad input, bad configuration).
 */

#ifndef SCHED91_SUPPORT_LOGGING_HH
#define SCHED91_SUPPORT_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace sched91
{

/** Exception thrown for user-level errors (parse errors, bad config). */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

/** Exception thrown for internal invariant violations. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg) : std::logic_error(msg) {}
};

namespace detail
{

inline void
appendAll(std::ostringstream &)
{
}

template <typename T, typename... Rest>
void
appendAll(std::ostringstream &os, const T &first, const Rest &...rest)
{
    os << first;
    appendAll(os, rest...);
}

} // namespace detail

/**
 * Raise a FatalError for a condition that is the caller's fault
 * (malformed assembly, inconsistent options, ...).
 */
template <typename... Args>
[[noreturn]] void
fatal(const Args &...args)
{
    std::ostringstream os;
    detail::appendAll(os, args...);
    throw FatalError(os.str());
}

/**
 * Raise a PanicError for a condition that should be impossible if the
 * library itself is correct.
 */
template <typename... Args>
[[noreturn]] void
panic(const Args &...args)
{
    std::ostringstream os;
    detail::appendAll(os, args...);
    throw PanicError(os.str());
}

/** Check an internal invariant; panic with a message if it fails. */
#define SCHED91_ASSERT(cond, ...)                                          \
    do {                                                                   \
        if (!(cond))                                                       \
            ::sched91::panic("assertion failed: ", #cond, " ",             \
                             ##__VA_ARGS__);                               \
    } while (0)

} // namespace sched91

#endif // SCHED91_SUPPORT_LOGGING_HH
