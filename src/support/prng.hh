/**
 * @file
 * Deterministic pseudo-random number generator for workload synthesis.
 *
 * splitmix64 core with convenience draws.  Deterministic across
 * platforms so that generated benchmark programs (and therefore the
 * reproduced tables) are stable.
 */

#ifndef SCHED91_SUPPORT_PRNG_HH
#define SCHED91_SUPPORT_PRNG_HH

#include <cmath>
#include <cstdint>

namespace sched91
{

/** splitmix64-based deterministic PRNG. */
class Prng
{
  public:
    explicit Prng(std::uint64_t seed) : state_(seed) {}

    /** Next raw 64-bit draw. */
    std::uint64_t
    next()
    {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    /** Uniform integer in [0, bound); bound must be > 0. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t
    range(std::int64_t lo, std::int64_t hi)
    {
        return lo + static_cast<std::int64_t>(
            below(static_cast<std::uint64_t>(hi - lo + 1)));
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return (next() >> 11) * (1.0 / 9007199254740992.0);
    }

    /** Bernoulli draw with probability @p p of true. */
    bool chance(double p) { return uniform() < p; }

    /**
     * Draw from a geometric-ish heavy-tailed distribution with the
     * given mean, clamped to [1, max].  Used for basic block sizes.
     */
    int
    heavyTail(double mean, int max)
    {
        // Exponential with the requested mean, occasionally boosted to
        // produce the long tail seen in FP benchmarks.
        double u = uniform();
        if (u <= 0.0)
            u = 1e-12;
        double x = -mean * std::log(u);
        int v = static_cast<int>(x) + 1;
        return v > max ? max : v;
    }

  private:
    std::uint64_t state_;
};

} // namespace sched91

#endif // SCHED91_SUPPORT_PRNG_HH
