#include "support/stats.hh"

#include <cstdio>

namespace sched91
{

std::string
formatFixed(double value, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
    return buf;
}

} // namespace sched91
