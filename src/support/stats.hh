/**
 * @file
 * Small statistics accumulators used by the structural-data tables.
 *
 * Tables 3-5 in the paper report max/avg pairs (instructions per basic
 * block, children per instruction, arcs per basic block, unique memory
 * expressions per block).  MinMaxAvg collects exactly that.
 */

#ifndef SCHED91_SUPPORT_STATS_HH
#define SCHED91_SUPPORT_STATS_HH

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>

namespace sched91
{

/** Streaming min / max / mean accumulator. */
class MinMaxAvg
{
  public:
    /** Fold one sample into the accumulator. */
    void
    add(double sample)
    {
        ++count_;
        sum_ += sample;
        min_ = std::min(min_, sample);
        max_ = std::max(max_, sample);
    }

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    double avg() const { return count_ ? sum_ / count_ : 0.0; }

    /** Merge another accumulator into this one. */
    void
    merge(const MinMaxAvg &other)
    {
        if (other.count_ == 0)
            return;
        count_ += other.count_;
        sum_ += other.sum_;
        min_ = std::min(min_, other.min_);
        max_ = std::max(max_, other.max_);
    }

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/** Format a double with @p decimals digits after the point. */
std::string formatFixed(double value, int decimals);

} // namespace sched91

#endif // SCHED91_SUPPORT_STATS_HH
