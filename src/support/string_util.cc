#include "support/string_util.hh"

#include <algorithm>
#include <cctype>

namespace sched91
{

std::string_view
trim(std::string_view s)
{
    std::size_t b = 0;
    while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    std::size_t e = s.size();
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

std::vector<std::string>
splitTrim(std::string_view s, char delim)
{
    std::vector<std::string> out;
    std::size_t pos = 0;
    while (pos <= s.size()) {
        std::size_t next = s.find(delim, pos);
        if (next == std::string_view::npos)
            next = s.size();
        std::string_view piece = trim(s.substr(pos, next - pos));
        if (!piece.empty())
            out.emplace_back(piece);
        pos = next + 1;
    }
    return out;
}

std::vector<std::string>
splitOperands(std::string_view s)
{
    std::vector<std::string> out;
    int depth = 0;
    std::size_t start = 0;
    for (std::size_t i = 0; i <= s.size(); ++i) {
        bool at_end = i == s.size();
        char c = at_end ? ',' : s[i];
        if (c == '[')
            ++depth;
        else if (c == ']')
            --depth;
        if (c == ',' && depth == 0) {
            std::string_view piece = trim(s.substr(start, i - start));
            if (!piece.empty())
                out.emplace_back(piece);
            start = i + 1;
        }
    }
    return out;
}

bool
startsWith(std::string_view s, std::string_view prefix)
{
    return s.substr(0, prefix.size()) == prefix;
}

std::string
toLower(std::string_view s)
{
    std::string out(s);
    std::transform(out.begin(), out.end(), out.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    return out;
}

std::string
padLeft(std::string_view s, std::size_t width)
{
    std::string out(s);
    if (out.size() < width)
        out.insert(out.begin(), width - out.size(), ' ');
    return out;
}

std::string
padRight(std::string_view s, std::size_t width)
{
    std::string out(s);
    if (out.size() < width)
        out.append(width - out.size(), ' ');
    return out;
}

} // namespace sched91
