/**
 * @file
 * String helpers for the assembly parser and table printers.
 */

#ifndef SCHED91_SUPPORT_STRING_UTIL_HH
#define SCHED91_SUPPORT_STRING_UTIL_HH

#include <string>
#include <string_view>
#include <vector>

namespace sched91
{

/** Strip leading/trailing whitespace. */
std::string_view trim(std::string_view s);

/** Split on a delimiter character, trimming each piece. */
std::vector<std::string> splitTrim(std::string_view s, char delim);

/**
 * Split an operand list on top-level commas, i.e. commas not inside
 * brackets, so "[%o0+4],%g1" yields two pieces.
 */
std::vector<std::string> splitOperands(std::string_view s);

/** True when @p s starts with @p prefix. */
bool startsWith(std::string_view s, std::string_view prefix);

/** Lower-case an ASCII string. */
std::string toLower(std::string_view s);

/** Left-pad @p s with spaces to @p width columns. */
std::string padLeft(std::string_view s, std::size_t width);

/** Right-pad @p s with spaces to @p width columns. */
std::string padRight(std::string_view s, std::size_t width);

} // namespace sched91

#endif // SCHED91_SUPPORT_STRING_UTIL_HH
