#include "support/subprocess.hh"

#include <cerrno>
#include <cstring>
#include <sstream>

#include <fcntl.h>
#include <signal.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include "support/logging.hh"

namespace sched91
{

namespace
{

/** First fd used when re-homing remap sources out of the target
 * range; high enough that no sane remap plan targets it. */
constexpr int kScratchFdBase = 100;

} // namespace

std::string
SpawnExit::describe() const
{
    std::ostringstream os;
    if (execFailed)
        os << "exec failed (exit " << code << ")";
    else if (signaled)
        os << "signal " << sig;
    else
        os << "exit " << code;
    return os.str();
}

Subprocess::~Subprocess()
{
    if (execStatusFd_ >= 0)
        ::close(execStatusFd_);
}

Subprocess &
Subprocess::operator=(Subprocess &&other) noexcept
{
    if (this != &other) {
        if (execStatusFd_ >= 0)
            ::close(execStatusFd_);
        pid_ = other.pid_;
        execStatusFd_ = other.execStatusFd_;
        other.pid_ = -1;
        other.execStatusFd_ = -1;
    }
    return *this;
}

Subprocess
Subprocess::spawn(const SpawnSpec &spec)
{
    if (spec.argv.empty())
        fatal("subprocess: empty argv");

    // Everything the child touches is materialized pre-fork: after
    // fork() from a multi-threaded parent only async-signal-safe
    // calls are legal until exec.
    std::vector<char *> argvp;
    argvp.reserve(spec.argv.size() + 1);
    for (const std::string &arg : spec.argv)
        argvp.push_back(const_cast<char *>(arg.c_str()));
    argvp.push_back(nullptr);

    int statusPipe[2];
    if (::pipe2(statusPipe, O_CLOEXEC) < 0)
        fatal("subprocess: pipe2(): ", std::strerror(errno));

    const pid_t pid = ::fork();
    if (pid < 0) {
        const int err = errno;
        ::close(statusPipe[0]);
        ::close(statusPipe[1]);
        fatal("subprocess: fork(): ", std::strerror(err));
    }

    if (pid == 0) {
        // --- Child: async-signal-safe calls only -------------------
        ::close(statusPipe[0]);

        // Re-home every remap source above the target range so a
        // source that collides with another mapping's target is not
        // clobbered mid-plan.
        int scratch[16];
        const std::size_t n =
            spec.fds.size() < 16 ? spec.fds.size() : 16;
        bool failed = spec.fds.size() > 16;
        for (std::size_t i = 0; i < n && !failed; ++i) {
            scratch[i] =
                ::fcntl(spec.fds[i].second, F_DUPFD, kScratchFdBase);
            failed = scratch[i] < 0;
        }
        for (std::size_t i = 0; i < n && !failed; ++i) {
            failed = ::dup2(scratch[i], spec.fds[i].first) < 0;
            ::close(scratch[i]);
        }

        if (!failed && spec.limits.cpuSeconds > 0) {
            rlimit rl{};
            rl.rlim_cur = static_cast<rlim_t>(spec.limits.cpuSeconds);
            rl.rlim_max =
                static_cast<rlim_t>(spec.limits.cpuSeconds + 1);
            failed = ::setrlimit(RLIMIT_CPU, &rl) < 0;
        }
        if (!failed && spec.limits.addressSpaceMb > 0) {
            rlimit rl{};
            rl.rlim_cur = rl.rlim_max = static_cast<rlim_t>(
                spec.limits.addressSpaceMb * (1u << 20));
            failed = ::setrlimit(RLIMIT_AS, &rl) < 0;
        }

        if (!failed)
            ::execv(argvp[0], argvp.data());

        // Setup or exec failed: report errno over the CLOEXEC pipe
        // (a successful exec closes it silently) and die.
        const int err = errno;
        (void)!::write(statusPipe[1], &err, sizeof err);
        ::_exit(127);
    }

    // --- Parent -----------------------------------------------------
    ::close(statusPipe[1]);
    Subprocess child;
    child.pid_ = pid;
    child.execStatusFd_ = statusPipe[0];
    return child;
}

void
Subprocess::kill(int sig) const
{
    if (valid())
        (void)::kill(pid_, sig);
}

SpawnExit
Subprocess::finishWait(int status)
{
    SpawnExit exit;
    if (WIFEXITED(status)) {
        exit.exited = true;
        exit.code = WEXITSTATUS(status);
    } else if (WIFSIGNALED(status)) {
        exit.signaled = true;
        exit.sig = WTERMSIG(status);
    }
    // A byte on the status pipe means execv never ran.
    if (execStatusFd_ >= 0) {
        int err = 0;
        ssize_t n;
        do {
            n = ::read(execStatusFd_, &err, sizeof err);
        } while (n < 0 && errno == EINTR);
        exit.execFailed = n > 0;
        ::close(execStatusFd_);
        execStatusFd_ = -1;
    }
    pid_ = -1;
    return exit;
}

SpawnExit
Subprocess::wait()
{
    if (!valid())
        return SpawnExit{};
    int status = 0;
    pid_t rc;
    do {
        rc = ::waitpid(pid_, &status, 0);
    } while (rc < 0 && errno == EINTR);
    if (rc < 0) {
        // ECHILD etc.: nothing more to learn.
        pid_ = -1;
        return SpawnExit{};
    }
    return finishWait(status);
}

std::optional<SpawnExit>
Subprocess::tryWait()
{
    if (!valid())
        return SpawnExit{};
    int status = 0;
    pid_t rc;
    do {
        rc = ::waitpid(pid_, &status, WNOHANG);
    } while (rc < 0 && errno == EINTR);
    if (rc == 0)
        return std::nullopt;
    if (rc < 0) {
        pid_ = -1;
        return SpawnExit{};
    }
    return finishWait(status);
}

std::string
selfExePath()
{
    char buf[4096];
    const ssize_t n =
        ::readlink("/proc/self/exe", buf, sizeof buf - 1);
    if (n <= 0)
        return {};
    buf[n] = '\0';
    return buf;
}

} // namespace sched91
