/**
 * @file
 * Minimal fork/exec subprocess helper for the sandboxed scheduling
 * service (docs/ROBUSTNESS.md).
 *
 * The supervisor pre-forks sandbox workers and must also respawn them
 * later, from a heavily multi-threaded daemon.  fork() in that setting
 * leaves the child with whatever locks other threads held, so between
 * fork and exec the child may only make async-signal-safe calls.
 * spawn() is built around that constraint: the argv vector, fd
 * remapping plan, and rlimits are all materialized into plain arrays
 * *before* the fork, and the child does nothing but dup2/setrlimit/
 * execv/_exit.
 *
 * Exec failures are detected via a CLOEXEC status pipe: a successful
 * exec closes it silently; a failed one writes errno before _exit, so
 * the parent distinguishes "worker never came up" from "worker came up
 * and died" without guessing at exit codes.
 */

#ifndef SCHED91_SUPPORT_SUBPROCESS_HH
#define SCHED91_SUPPORT_SUBPROCESS_HH

#include <cstddef>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include <sys/types.h>

namespace sched91
{

/** Per-child resource limits; 0 = leave unlimited. */
struct SpawnLimits
{
    /** RLIMIT_CPU in seconds: a runaway worker gets SIGXCPU/SIGKILL
     * from the kernel even if every watchdog is asleep. */
    int cpuSeconds = 0;

    /** RLIMIT_AS in MiB.  Caution: ASan reserves terabytes of shadow
     * address space, so sanitizer builds must leave this 0. */
    std::size_t addressSpaceMb = 0;
};

/** Everything spawn() needs, materialized before the fork. */
struct SpawnSpec
{
    /** argv[0] is the executable path (execv, no PATH search). */
    std::vector<std::string> argv;

    /** fd remapping plan: each {childFd, parentFd} makes the parent's
     * fd visible to the child *as* childFd (dup2 clears CLOEXEC).
     * Parent fds are re-homed above the target range first, so plans
     * whose sources collide with targets stay correct. */
    std::vector<std::pair<int, int>> fds;

    SpawnLimits limits;
};

/** How a child ended, from waitpid(2). */
struct SpawnExit
{
    bool exited = false;   ///< normal _exit/exit
    int code = 0;          ///< exit code when exited
    bool signaled = false; ///< killed by a signal
    int sig = 0;           ///< the signal when signaled
    bool execFailed = false; ///< exec never happened (status pipe)

    /** "exit 0" / "signal 9" / "exec failed: ..." for logs. */
    std::string describe() const;
};

/** One spawned child.  Movable; the destructor does NOT kill or reap
 * (the owner decides), it only closes the status-pipe fd. */
class Subprocess
{
  public:
    Subprocess() = default;
    ~Subprocess();

    Subprocess(Subprocess &&other) noexcept { *this = std::move(other); }
    Subprocess &operator=(Subprocess &&other) noexcept;
    Subprocess(const Subprocess &) = delete;
    Subprocess &operator=(const Subprocess &) = delete;

    /**
     * Fork and exec.  Throws FatalError only for parent-side setup
     * failures (pipe/fork); an exec failure in the child is reported
     * through wait() (execFailed) instead, since it happens after the
     * fork already succeeded.
     */
    static Subprocess spawn(const SpawnSpec &spec);

    bool valid() const { return pid_ > 0; }
    pid_t pid() const { return pid_; }

    /** Send a signal; no-op when not valid(). */
    void kill(int sig) const;

    /** Blocking waitpid; marks the handle reaped. */
    SpawnExit wait();

    /** Non-blocking waitpid; nullopt while the child still runs. */
    std::optional<SpawnExit> tryWait();

  private:
    SpawnExit finishWait(int status);

    pid_t pid_ = -1;
    int execStatusFd_ = -1; ///< CLOEXEC pipe read end; -1 once checked
};

/** /proc/self/exe, or empty when unreadable. */
std::string selfExePath();

} // namespace sched91

#endif // SCHED91_SUPPORT_SUBPROCESS_HH
