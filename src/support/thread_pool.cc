#include "support/thread_pool.hh"

#include <string>
#include <utility>

#include "obs/events.hh"
#include "support/logging.hh"

namespace sched91
{

namespace
{

/** "... (N additional worker error(s) suppressed)" suffix. */
std::string
suppressedSuffix(std::size_t n)
{
    return " (" + std::to_string(n) + " additional worker error" +
           (n == 1 ? "" : "s") + " suppressed)";
}

} // namespace

unsigned
ThreadPool::hardwareConcurrency()
{
    unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : n;
}

ThreadPool::ThreadPool(unsigned threads)
    : nthreads_(threads == 0 ? 1 : threads)
{
    workers_.reserve(nthreads_ - 1);
    for (unsigned id = 1; id < nthreads_; ++id)
        workers_.emplace_back([this, id] { workerMain(id); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        stop_ = true;
    }
    cvStart_.notify_all();
    for (std::thread &t : workers_)
        t.join();
}

void
ThreadPool::runChunks(unsigned id)
{
    for (;;) {
        std::size_t begin =
            next_.fetch_add(jobChunk_, std::memory_order_relaxed);
        if (begin >= jobSize_)
            return;
        std::size_t end = begin + jobChunk_;
        if (end > jobSize_)
            end = jobSize_;
        try {
            (*jobFn_)(id, begin, end);
        } catch (...) {
            std::lock_guard<std::mutex> lk(mu_);
            if (!firstError_)
                firstError_ = std::current_exception();
            else
                ++suppressed_; // counted under mu_; reported by caller
        }
    }
}

void
ThreadPool::workerMain(unsigned id)
{
    std::unique_lock<std::mutex> lk(mu_);
    std::uint64_t seen = 0;
    for (;;) {
        cvStart_.wait(lk,
                      [&] { return stop_ || generation_ != seen; });
        if (stop_)
            return;
        seen = generation_;
        lk.unlock();
        runChunks(id);
        lk.lock();
        if (--active_ == 0)
            cvDone_.notify_all();
    }
}

void
ThreadPool::parallelFor(std::size_t n, std::size_t chunk,
                        const ChunkFn &fn)
{
    if (n == 0)
        return;
    if (chunk == 0)
        chunk = 1;
    if (nthreads_ == 1) {
        // Serial lane: same chunking, no synchronization.
        for (std::size_t begin = 0; begin < n; begin += chunk) {
            std::size_t end = begin + chunk > n ? n : begin + chunk;
            fn(0, begin, end);
        }
        return;
    }

    {
        std::lock_guard<std::mutex> lk(mu_);
        jobSize_ = n;
        jobChunk_ = chunk;
        jobFn_ = &fn;
        firstError_ = nullptr;
        suppressed_ = 0;
        next_.store(0, std::memory_order_relaxed);
        active_ = static_cast<unsigned>(workers_.size());
        ++generation_;
    }
    cvStart_.notify_all();

    runChunks(0);

    std::exception_ptr error;
    std::size_t extra;
    {
        std::unique_lock<std::mutex> lk(mu_);
        cvDone_.wait(lk, [&] { return active_ == 0; });
        jobFn_ = nullptr;
        error = std::exchange(firstError_, nullptr);
        extra = std::exchange(suppressed_, 0);
    }
    if (!error)
        return;
    // Count and annotate on the caller's thread: workers have no
    // counter shard installed, so incrementing there would race.
    if (extra == 0)
        std::rethrow_exception(error);
    obs::ev::robustPoolSuppressed.inc(
        static_cast<std::uint64_t>(extra));
    try {
        std::rethrow_exception(error);
    } catch (const PanicError &e) {
        throw PanicError(e.what() + suppressedSuffix(extra));
    } catch (const FatalError &e) {
        throw FatalError(e.what() + suppressedSuffix(extra));
    } catch (const std::exception &e) {
        throw FatalError(e.what() + suppressedSuffix(extra));
    }
    // Non-std exceptions propagate unannotated.
}

} // namespace sched91
