/**
 * @file
 * Chunked self-scheduling thread pool for the block-parallel pipeline.
 *
 * Basic blocks are independent units of work — each gets its own DAG,
 * heuristic pass, and schedule — so the whole-program pipeline is
 * embarrassingly parallel at block granularity.  The pool runs one
 * persistent worker thread per extra lane; parallelFor() hands out
 * contiguous index chunks through a shared atomic cursor, so fast
 * workers steal the remaining range from slow ones (chunked work
 * stealing) without any per-item locking.  The caller participates as
 * worker 0, so a pool of N threads uses N-1 spawned threads.
 *
 * Determinism contract: the pool imposes no ordering, so callers must
 * write results into pre-sized slots indexed by work item (the
 * pipeline indexes by basic-block id) and do any order-sensitive
 * reduction after parallelFor() returns.
 */

#ifndef SCHED91_SUPPORT_THREAD_POOL_HH
#define SCHED91_SUPPORT_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sched91
{

/** Fixed-size pool; one instance per parallel region is fine (threads
 * are reused across parallelFor calls, not across pools). */
class ThreadPool
{
  public:
    /** fn(worker, begin, end): process items [begin, end). */
    using ChunkFn =
        std::function<void(unsigned, std::size_t, std::size_t)>;

    /** std::thread::hardware_concurrency, never 0. */
    static unsigned hardwareConcurrency();

    /** @p threads total lanes including the caller; clamped to >= 1. */
    explicit ThreadPool(unsigned threads);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    unsigned threads() const { return nthreads_; }

    /**
     * Run @p fn over [0, n) in chunks of @p chunk items, on all lanes.
     * Blocks until every item is done.  The first exception thrown by
     * @p fn is rethrown here (remaining chunks still drain).  Further
     * exceptions are counted, not swallowed: the count lands in the
     * `robust.pool_suppressed_errors` event counter and is appended to
     * the rethrown FatalError/PanicError message, so a multi-lane
     * failure is distinguishable from a single bad chunk.
     */
    void parallelFor(std::size_t n, std::size_t chunk, const ChunkFn &fn);

  private:
    void workerMain(unsigned id);
    void runChunks(unsigned id);

    unsigned nthreads_;
    std::vector<std::thread> workers_;

    std::mutex mu_;
    std::condition_variable cvStart_;
    std::condition_variable cvDone_;
    std::uint64_t generation_ = 0;
    unsigned active_ = 0;
    bool stop_ = false;

    // Current job (published under mu_, consumed lock-free via next_).
    std::atomic<std::size_t> next_{0};
    std::size_t jobSize_ = 0;
    std::size_t jobChunk_ = 1;
    const ChunkFn *jobFn_ = nullptr;
    std::exception_ptr firstError_;
    std::size_t suppressed_ = 0; ///< worker errors after the first
};

} // namespace sched91

#endif // SCHED91_SUPPORT_THREAD_POOL_HH
