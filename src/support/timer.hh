/**
 * @file
 * Monotonic wall-clock timer for the run-time tables.
 *
 * The paper timed scheduling runs with /usr/bin/time on a
 * SPARCstation-2 and averaged user+sys over five runs; we time
 * in-process with a steady clock and likewise average repeated runs.
 */

#ifndef SCHED91_SUPPORT_TIMER_HH
#define SCHED91_SUPPORT_TIMER_HH

#include <chrono>

namespace sched91
{

/** Steady-clock stopwatch. */
class Timer
{
  public:
    Timer() : start_(Clock::now()) {}

    /** Restart the stopwatch. */
    void reset() { start_ = Clock::now(); }

    /** Elapsed seconds since construction or last reset(). */
    double
    seconds() const
    {
        return std::chrono::duration<double>(Clock::now() - start_).count();
    }

    /** Elapsed milliseconds. */
    double milliseconds() const { return seconds() * 1e3; }

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

} // namespace sched91

#endif // SCHED91_SUPPORT_TIMER_HH
