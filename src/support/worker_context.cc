#include "support/worker_context.hh"

namespace sched91
{

namespace
{
thread_local WorkerContext *t_context = nullptr;
} // namespace

WorkerContext *
WorkerContext::current()
{
    return t_context;
}

Arena *
WorkerContext::currentArena()
{
    return t_context ? &t_context->arena() : nullptr;
}

WorkerContext::Scope::Scope(WorkerContext &ctx) : prev_(t_context)
{
    t_context = &ctx;
}

WorkerContext::Scope::~Scope() { t_context = prev_; }

} // namespace sched91
