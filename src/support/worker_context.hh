/**
 * @file
 * Per-worker allocation and scratch-buffer context for the
 * block-parallel pipeline.
 *
 * Each pipeline lane owns one WorkerContext for the duration of a run.
 * It bundles:
 *
 *  - a bump Arena recycled at every block boundary, backing the DAG's
 *    arc-index lists and the table builders' def/use lists
 *    (support/arena.hh);
 *  - named scratch vectors whose *capacity* persists across blocks —
 *    the list scheduler's ready list, heap storage and key store, and
 *    the timing pass's dependence-ready array.
 *
 * The context is installed thread-locally (WorkerContext::Scope) so
 * deep call sites — DAG builders, the list scheduler — can pick up the
 * worker's arena without threading a parameter through every API.
 * When no context is installed (tests, single-block CLI commands,
 * library embedders) every consumer falls back to plain heap
 * allocation and behaves exactly as before.
 */

#ifndef SCHED91_SUPPORT_WORKER_CONTEXT_HH
#define SCHED91_SUPPORT_WORKER_CONTEXT_HH

#include <cstdint>
#include <vector>

#include "support/arena.hh"

namespace sched91
{

class WorkerContext
{
  public:
    WorkerContext() = default;
    WorkerContext(const WorkerContext &) = delete;
    WorkerContext &operator=(const WorkerContext &) = delete;

    /** Block-lifetime allocator (reset by beginBlock). */
    Arena &arena() { return arena_; }

    /** Recycle all block-lifetime allocations.  Call only when the
     * previous block's DAG and scratch users are gone. */
    void beginBlock() { arena_.reset(); }

    /** The context installed on the calling thread, or nullptr. */
    static WorkerContext *current();

    /** Shorthand: the installed context's arena, or nullptr. */
    static Arena *currentArena();

    /** RAII thread-local installer (nestable; restores the previous
     * context on destruction). */
    class Scope
    {
      public:
        explicit Scope(WorkerContext &ctx);
        ~Scope();
        Scope(const Scope &) = delete;
        Scope &operator=(const Scope &) = delete;

      private:
        WorkerContext *prev_;
    };

    // --- capacity-persistent scratch (cleared by users, not here) ----

    /** List scheduler: linear-scan candidate list. */
    std::vector<std::uint32_t> readyList;

    /** List scheduler: d-ary heap element storage. */
    std::vector<std::uint32_t> heapNodes;

    /** List scheduler: per-node ranked-key store for the heap. */
    std::vector<long long> heapKeys;

    /** Timing fill pass: per-node dependence-ready cycles. */
    std::vector<int> depReady;

  private:
    Arena arena_;
};

} // namespace sched91

#endif // SCHED91_SUPPORT_WORKER_CONTEXT_HH
