#include "workload/generator.hh"

#include <algorithm>
#include <cmath>
#include <map>
#include <mutex>

#include "ir/basic_block.hh"
#include "support/logging.hh"
#include "support/prng.hh"

namespace sched91
{

namespace
{

/** Base registers the generated code never redefines (pointers). */
constexpr int kBaseRegs[] = {1, 2, 3, 4, 24, 25, 26, 27, 28, 29};

/** Destination rotation set for integer results. */
constexpr int kIntDests[] = {5, 6, 8, 9, 10, 11, 12, 13,
                             16, 17, 18, 19, 20, 21, 22, 23};

/** Even FP registers (double-precision slots). */
constexpr int kFpDests[] = {0, 2, 4, 6, 8, 10, 12, 14,
                            16, 18, 20, 22, 24, 26, 28, 30};

/** Decide each block's size, honoring total / max / second-largest. */
std::vector<int>
blockSizes(const WorkloadProfile &p, Prng &rng)
{
    std::vector<int> sizes;
    sizes.reserve(p.numBlocks);
    int fixed_sum = 0;
    int fixed_count = 0;

    if (p.maxBlock > 0) {
        sizes.push_back(p.maxBlock);
        fixed_sum += p.maxBlock;
        ++fixed_count;
    }
    if (p.secondBlock > 0) {
        sizes.push_back(p.secondBlock);
        fixed_sum += p.secondBlock;
        ++fixed_count;
    }

    int rest = p.numBlocks - fixed_count;
    SCHED91_ASSERT(rest > 0, "profile too small");
    double mean = static_cast<double>(p.totalInsts - fixed_sum) / rest;
    int cap = std::min(p.maxBlock - 1,
                       std::max(4, static_cast<int>(mean * 8)));

    long long sum = 0;
    for (int i = 0; i < rest; ++i) {
        int s = rng.heavyTail(mean, cap);
        sizes.push_back(s);
        sum += s;
    }

    // Exact-total adjustment on the non-pinned blocks.
    long long target = p.totalInsts - fixed_sum;
    while (sum != target) {
        std::size_t i =
            fixed_count + static_cast<std::size_t>(rng.below(rest));
        if (sum < target && sizes[i] < cap) {
            ++sizes[i];
            ++sum;
        } else if (sum > target && sizes[i] > 1) {
            --sizes[i];
            --sum;
        }
    }

    // Shuffle so the pinned giants sit somewhere in the middle.
    for (std::size_t i = sizes.size(); i > 1; --i)
        std::swap(sizes[i - 1], sizes[rng.below(i)]);
    return sizes;
}

/** Per-block unique-memory-expression budget. */
std::vector<int>
memBudgets(const WorkloadProfile &p, const std::vector<int> &sizes,
           Prng &rng)
{
    double avg_size =
        static_cast<double>(p.totalInsts) / p.numBlocks;
    std::vector<int> budgets;
    budgets.reserve(sizes.size());
    for (int s : sizes) {
        // The 1.4 factor calibrates for budget under-consumption:
        // introductions landing after a block's final memory access
        // are dropped, and colliding random expressions deduplicate.
        double raw = 1.4 * p.avgMemExprs * s / avg_size;
        raw *= 0.7 + 0.6 * rng.uniform(); // jitter
        int mem_ops = static_cast<int>(
            (p.loadFraction + p.storeFraction) * s) + 1;
        int m = static_cast<int>(std::lround(raw));
        m = std::min({m, p.maxMemExprs, mem_ops});
        budgets.push_back(std::max(s >= 4 ? 1 : 0, m));
    }
    // Pin the single largest block to the profile's maximum.
    std::size_t big = 0;
    for (std::size_t i = 1; i < sizes.size(); ++i)
        if (sizes[i] > sizes[big])
            big = i;
    budgets[big] = std::min(
        p.maxMemExprs,
        static_cast<int>((p.loadFraction + p.storeFraction) *
                         sizes[big]) + 1);
    return budgets;
}

/** State for generating one block. */
class BlockGen
{
  public:
    BlockGen(const WorkloadProfile &p, Prng &rng, Program &prog,
             int block_id, int size, int mem_budget)
        : p_(p), rng_(rng), prog_(prog), blockId_(block_id), size_(size),
          memBudget_(mem_budget)
    {
    }

    void
    emit()
    {
        prog_.addLabel("B" + std::to_string(blockId_));
        planExprIntroductions();

        int tail = tailLength();
        // Large blocks materialize their array pointers first, like
        // compiled code does (sethi into a base register that the
        // rest of the block addresses through).  This is what gives
        // real fpppp blocks nodes with hundreds of children: one
        // pointer definition feeding every reference based on it.
        int setups = 0;
        if (size_ >= 64) {
            setups = std::min<int>(std::size(kBaseRegs),
                                   1 + size_ / 256);
            for (int k = 0; k < setups; ++k) {
                // sethi places the pointer inside the register's own
                // 16 MiB address region (value = (reg << 24) + r <<
                // 10), so distinct base registers keep provably
                // disjoint address ranges under the executor and the
                // expression-as-resource disambiguation stays sound.
                int reg = kBaseRegs[k];
                std::int64_t imm =
                    (static_cast<std::int64_t>(reg) << 14) +
                    static_cast<std::int64_t>(rng_.below(1 << 13));
                prog_.append(makeInstruction(
                    Opcode::Sethi, Resource(), Resource(),
                    Resource::intReg(reg), std::nullopt, imm));
            }
        }

        for (int i = 0; i < size_ - tail - setups; ++i)
            emitBody(i);
        emitTail(tail);
    }

  private:
    /** How many instructions the block ending consumes. */
    int
    tailLength()
    {
        double u = rng_.uniform();
        if (size_ >= 3 && u < p_.branchProb) {
            tailKind_ = Tail::Branch;
            return 2; // cmp + bcc
        }
        if (size_ >= 1 && u < p_.branchProb + p_.callProb) {
            tailKind_ = Tail::Call;
            return 1;
        }
        tailKind_ = Tail::None;
        return 0;
    }

    /** Pre-draw positions at which new memory expressions first appear,
     * skewed toward the block end by endBias. */
    void
    planExprIntroductions()
    {
        for (int j = 0; j < memBudget_; ++j) {
            double u = rng_.uniform();
            double skew = std::pow(u, 1.0 / (1.0 + 1.5 * p_.endBias));
            introductions_.push_back(
                static_cast<int>(skew * (size_ - 1)));
        }
        std::sort(introductions_.begin(), introductions_.end());
    }

    /** A memory operand for this reference (new or from the pool). */
    MemOperand
    pickExpr(int pos, std::uint8_t width)
    {
        bool introduce =
            nextIntro_ < introductions_.size() &&
            introductions_[nextIntro_] <= pos;
        if (introduce || pool_.empty()) {
            ++nextIntro_;
            MemOperand m;
            // A few attempts to draw an expression not already in the
            // pool, so the budget translates into *unique* expressions.
            for (int attempt = 0; attempt < 4; ++attempt) {
                m = MemOperand{};
                double u = rng_.uniform();
                if (u < 0.45) { // frame slot
                    m.base = 30; // %fp
                    m.offset = -8 * static_cast<std::int64_t>(
                                   1 + rng_.below(480));
                } else if (u < 0.85) { // array via stable pointer
                    m.base =
                        kBaseRegs[rng_.below(std::size(kBaseRegs))];
                    m.offset =
                        8 * static_cast<std::int64_t>(rng_.below(480));
                } else { // static datum
                    m.symbol = "data" + std::to_string(rng_.below(24));
                    m.offset =
                        8 * static_cast<std::int64_t>(rng_.below(128));
                }
                bool clash = false;
                for (const MemOperand &e : pool_)
                    if (e.base == m.base && e.index == m.index &&
                        e.symbol == m.symbol && e.offset == m.offset) {
                        clash = true;
                        break;
                    }
                if (!clash)
                    break;
            }
            m.width = width;
            pool_.push_back(m);
            return m;
        }
        MemOperand m = pool_[rng_.below(pool_.size())];
        m.width = width;
        return m;
    }

    Resource
    nextIntDest()
    {
        Resource r = Resource::intReg(
            kIntDests[intDestIdx_++ % std::size(kIntDests)]);
        recentInt_.push_back(r);
        if (recentInt_.size() > 6)
            recentInt_.erase(recentInt_.begin());
        return r;
    }

    Resource
    nextFpDest()
    {
        Resource r = Resource::fpReg(
            kFpDests[fpDestIdx_++ % std::size(kFpDests)]);
        recentFp_.push_back(r);
        if (recentFp_.size() > 6)
            recentFp_.erase(recentFp_.begin());
        return r;
    }

    Resource
    pickIntSrc()
    {
        if (!recentInt_.empty() && rng_.chance(0.7))
            return recentInt_[rng_.below(recentInt_.size())];
        return Resource::intReg(
            kBaseRegs[rng_.below(std::size(kBaseRegs))]);
    }

    Resource
    pickFpSrc()
    {
        if (!recentFp_.empty() && rng_.chance(0.75))
            return recentFp_[rng_.below(recentFp_.size())];
        return Resource::fpReg(kFpDests[rng_.below(std::size(kFpDests))]);
    }

    void
    emitBody(int pos)
    {
        double u = rng_.uniform();
        if (u < p_.loadFraction) {
            bool fp = rng_.chance(p_.fpFraction);
            if (fp) {
                MemOperand m = pickExpr(pos, 8);
                prog_.append(makeInstruction(Opcode::Lddf, Resource(),
                                             Resource(), nextFpDest(),
                                             m));
            } else {
                MemOperand m = pickExpr(pos, 4);
                prog_.append(makeInstruction(Opcode::Ld, Resource(),
                                             Resource(), nextIntDest(),
                                             m));
            }
            return;
        }
        if (u < p_.loadFraction + p_.storeFraction) {
            bool fp = rng_.chance(p_.fpFraction) && !recentFp_.empty();
            if (fp) {
                MemOperand m = pickExpr(pos, 8);
                prog_.append(makeInstruction(Opcode::Stdf, pickFpSrc(),
                                             Resource(), Resource(), m));
            } else {
                MemOperand m = pickExpr(pos, 4);
                prog_.append(makeInstruction(Opcode::St, pickIntSrc(),
                                             Resource(), Resource(), m));
            }
            return;
        }
        if (rng_.chance(p_.fpFraction)) {
            static constexpr Opcode fp_ops[] = {
                Opcode::Faddd, Opcode::Faddd, Opcode::Fsubd,
                Opcode::Fmuld, Opcode::Fmuld, Opcode::Fdivd,
            };
            Opcode op = fp_ops[rng_.below(std::size(fp_ops))];
            if (op == Opcode::Fdivd && !rng_.chance(0.25))
                op = Opcode::Fmuld; // divides are rare
            Resource s1 = pickFpSrc();
            Resource s2 = pickFpSrc();
            prog_.append(makeInstruction(op, s1, s2, nextFpDest()));
            return;
        }
        static constexpr Opcode int_ops[] = {
            Opcode::Add, Opcode::Add, Opcode::Sub, Opcode::And,
            Opcode::Or, Opcode::Xor, Opcode::Sll, Opcode::Sethi,
        };
        Opcode op = int_ops[rng_.below(std::size(int_ops))];
        if (op == Opcode::Sethi) {
            prog_.append(makeInstruction(op, Resource(), Resource(),
                                         nextIntDest(), std::nullopt,
                                         static_cast<std::int64_t>(
                                             rng_.below(1 << 20))));
            return;
        }
        Resource s1 = pickIntSrc();
        Resource s2;
        std::int64_t imm = 0;
        if (rng_.chance(0.4))
            imm = rng_.range(-512, 511);
        else
            s2 = pickIntSrc();
        prog_.append(makeInstruction(op, s1, s2, nextIntDest(),
                                     std::nullopt, imm));
    }

    void
    emitTail(int tail)
    {
        if (tailKind_ == Tail::Branch && tail == 2) {
            prog_.append(makeInstruction(Opcode::Cmp, pickIntSrc(),
                                         Resource(), Resource(),
                                         std::nullopt,
                                         rng_.range(0, 15)));
            static constexpr Opcode branches[] = {
                Opcode::Bne, Opcode::Be, Opcode::Bg, Opcode::Bl,
                Opcode::Bge, Opcode::Ble,
            };
            Instruction br = makeInstruction(
                branches[rng_.below(std::size(branches))], Resource(),
                Resource(), Resource());
            br.setTarget("B" + std::to_string(blockId_ + 1));
            prog_.append(std::move(br));
        } else if (tailKind_ == Tail::Call && tail == 1) {
            Instruction call = makeInstruction(Opcode::Call, Resource(),
                                               Resource(), Resource());
            call.setTarget("func" + std::to_string(rng_.below(12)));
            prog_.append(std::move(call));
        }
    }

    enum class Tail { None, Branch, Call };

    const WorkloadProfile &p_;
    Prng &rng_;
    Program &prog_;
    int blockId_;
    int size_;
    int memBudget_;
    Tail tailKind_ = Tail::None;

    std::vector<MemOperand> pool_;
    std::vector<int> introductions_;
    std::size_t nextIntro_ = 0;
    std::vector<Resource> recentInt_;
    std::vector<Resource> recentFp_;
    std::size_t intDestIdx_ = 0;
    std::size_t fpDestIdx_ = 0;
};

} // namespace

Program
generateProgram(const WorkloadProfile &profile)
{
    Prng rng(profile.seed * 0x9e3779b97f4a7c15ULL + 1);
    Program prog;

    std::vector<int> sizes = blockSizes(profile, rng);
    std::vector<int> budgets = memBudgets(profile, sizes, rng);

    for (std::size_t i = 0; i < sizes.size(); ++i) {
        BlockGen gen(profile, rng, prog, static_cast<int>(i), sizes[i],
                     budgets[i]);
        gen.emit();
    }

    stampMemGenerations(prog);
    return prog;
}

const Program &
cachedProgram(const std::string &profile_name)
{
    static std::mutex mutex;
    static std::map<std::string, Program> cache;
    std::lock_guard<std::mutex> lock(mutex);
    auto it = cache.find(profile_name);
    if (it == cache.end()) {
        it = cache.emplace(profile_name,
                           generateProgram(profileByName(profile_name)))
                 .first;
    }
    return it->second;
}

} // namespace sched91
