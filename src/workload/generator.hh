/**
 * @file
 * Synthetic benchmark program generator.
 *
 * Produces SPARC-like assembly Programs whose structure matches a
 * WorkloadProfile's Table 3 targets: exact block and instruction
 * counts, the pinned maximum (and for fpppp, second-largest) block
 * sizes, per-block unique-memory-expression pools scaled with block
 * size and capped at the profile maximum, and integer vs
 * floating-point instruction mixes.
 *
 * Memory address expressions use dedicated base registers that the
 * generated code never redefines, mirroring compiler output where
 * frame/array pointers are stable within a block — this is what makes
 * the "same base register, different offset" disambiguation of
 * Section 2 effective, exactly as it was for the paper's compiled
 * benchmarks.  The fpppp profile's endBias concentrates first uses of
 * new memory expressions toward the end of its 11750-instruction
 * block, reproducing the effect the paper observed on backward-pass
 * construction cost.
 */

#ifndef SCHED91_WORKLOAD_GENERATOR_HH
#define SCHED91_WORKLOAD_GENERATOR_HH

#include "ir/program.hh"
#include "workload/profiles.hh"

namespace sched91
{

/** Generate the synthetic program for a profile (deterministic). */
Program generateProgram(const WorkloadProfile &profile);

/**
 * Generated program for a named profile, built once per process and
 * cached (the fpppp program is ~25k instructions; benches and tests
 * share it).  The cached Program already has memory generations
 * stamped.
 */
const Program &cachedProgram(const std::string &profile_name);

} // namespace sched91

#endif // SCHED91_WORKLOAD_GENERATOR_HH
