#include "workload/kernels.hh"

#include "ir/basic_block.hh"
#include "ir/parser.hh"
#include "support/logging.hh"

namespace sched91
{

namespace
{

// Linpack's daxpy inner loop, unrolled 4x: dy[i] += da * dx[i].
// da lives in %f30:%f31; %i0 = dx, %i1 = dy.
const char *kDaxpy = R"(
daxpy:
    lddf  [%i0+0],  %f0
    lddf  [%i1+0],  %f2
    fmuld %f0, %f30, %f4
    faddd %f2, %f4, %f6
    stdf  %f6, [%i1+0]
    lddf  [%i0+8],  %f8
    lddf  [%i1+8],  %f10
    fmuld %f8, %f30, %f12
    faddd %f10, %f12, %f14
    stdf  %f14, [%i1+8]
    lddf  [%i0+16], %f16
    lddf  [%i1+16], %f18
    fmuld %f16, %f30, %f20
    faddd %f18, %f20, %f22
    stdf  %f22, [%i1+16]
    lddf  [%i0+24], %f24
    lddf  [%i1+24], %f26
    fmuld %f24, %f30, %f28
    faddd %f26, %f28, %f0
    stdf  %f0, [%i1+24]
    add   %l0, 4, %l0
    cmp   %l0, 400
    bl    daxpy
    nop
)";

// Livermore loop 1 (hydro fragment), unrolled 2x:
// x[k] = q + y[k] * (r * z[k+10] + t * z[k+11]).
// q = %f20, r = %f26, t = %f28; %i0 = x, %i1 = y, %i2 = z.
const char *kLivermore1 = R"(
lloop1:
    lddf  [%i2+80], %f0
    lddf  [%i2+88], %f2
    fmuld %f0, %f26, %f4
    fmuld %f2, %f28, %f6
    faddd %f4, %f6, %f8
    lddf  [%i1+0],  %f10
    fmuld %f10, %f8, %f12
    faddd %f12, %f20, %f14
    stdf  %f14, [%i0+0]
    lddf  [%i2+96], %f16
    fmuld %f2, %f26, %f18
    fmuld %f16, %f28, %f22
    faddd %f18, %f22, %f24
    lddf  [%i1+8],  %f10
    fmuld %f10, %f24, %f12
    faddd %f12, %f20, %f14
    stdf  %f14, [%i0+8]
    add   %l0, 2, %l0
    cmp   %l0, 1000
    bl    lloop1
    nop
)";

// One point of the tomcatv mesh relaxation: loads from several arrays
// with a divide on the critical path.
const char *kTomcatv = R"(
tomcatv:
    lddf  [%i0+0],   %f0
    lddf  [%i0+8],   %f2
    lddf  [%i0+16],  %f4
    lddf  [%i1+0],   %f6
    lddf  [%i1+8],   %f8
    lddf  [%i1+16],  %f10
    fsubd %f4, %f0, %f12
    fsubd %f10, %f6, %f14
    fmuld %f12, %f12, %f16
    fmuld %f14, %f14, %f18
    faddd %f16, %f18, %f20
    fmuld %f12, %f14, %f22
    lddf  [%i2+0],   %f24
    faddd %f24, %f20, %f26
    fdivd %f22, %f26, %f28
    stdf  %f28, [%i3+0]
    fsubd %f2, %f8, %f0
    fmuld %f0, %f28, %f2
    faddd %f2, %f24, %f4
    stdf  %f4, [%i3+8]
    add   %l1, 1, %l1
    cmp   %l1, 512
    bl    tomcatv
    nop
)";

// Figure 1's WAR-then-RAW divide pattern embedded in a block with
// enough independent filler work to hide the divide latency — but
// only if the scheduler knows the divide is critical.  A builder that
// prunes the transitive 20-cycle RAW arc (Landskov) computes a short
// delay-to-leaf for the divide, schedules the filler chains first,
// and pays the divide latency at the end.
const char *kDivideChain = R"(
divchain:
    fdivd %f0, %f2, %f4
    faddd %f6, %f8, %f0
    faddd %f0, %f4, %f10
    stdf  %f10, [%fp-8]
    fmuld %f12, %f14, %f16
    fmuld %f16, %f14, %f18
    stdf  %f18, [%fp-16]
    fmuld %f20, %f22, %f24
    fmuld %f24, %f22, %f26
    stdf  %f26, [%fp-24]
    fmuld %f28, %f30, %f12
    fmuld %f12, %f30, %f20
    stdf  %f20, [%fp-32]
)";

// grep's byte-scan inner loop (integer code, small block).
const char *kGrepScan = R"(
scan:
    ldub  [%i0+0], %o0
    ldub  [%i0+1], %o1
    sll   %o0, 2, %l0
    ld    [%i1+%l0], %l1
    and   %o1, 127, %l2
    add   %l1, %l2, %l3
    st    %l3, [%fp-16]
    cmp   %l3, 256
    bl    scan
    nop
)";

// Pointer-chasing list walk with stores (dfa-like integer code).
const char *kListWalk = R"(
walk:
    ld    [%i0+0], %l0
    ld    [%i0+4], %l1
    add   %l1, 1, %l2
    st    %l2, [%i0+4]
    ld    [%i0+8], %l3
    xor   %l3, %l2, %l4
    st    %l4, [%fp-8]
    cmp   %l0, 0
    bne   walk
    nop
)";

} // namespace

std::vector<std::string>
kernelNames()
{
    return {"daxpy", "livermore1", "tomcatv", "grep-scan", "list-walk",
            "divide-chain"};
}

std::string
kernelSource(const std::string &name)
{
    if (name == "daxpy")
        return kDaxpy;
    if (name == "livermore1")
        return kLivermore1;
    if (name == "tomcatv")
        return kTomcatv;
    if (name == "grep-scan")
        return kGrepScan;
    if (name == "list-walk")
        return kListWalk;
    if (name == "divide-chain")
        return kDivideChain;
    fatal("unknown kernel '", name, "'");
}

Program
kernelProgram(const std::string &name)
{
    Program prog = parseAssembly(kernelSource(name));
    stampMemGenerations(prog);
    return prog;
}

Program
figure1Program()
{
    Program prog = parseAssembly(R"(
    fdivd %f0, %f2, %f4
    faddd %f6, %f8, %f0
    faddd %f0, %f4, %f10
)");
    stampMemGenerations(prog);
    return prog;
}

} // namespace sched91
