/**
 * @file
 * Handwritten kernels in the SPARC-like dialect: realistic unrolled
 * loop bodies of the kinds the paper's benchmarks contain (Linpack's
 * daxpy, Livermore loop 1, the tomcatv stencil, grep's scan loop) plus
 * the Figure 1 example.  Used by the examples and tests.
 */

#ifndef SCHED91_WORKLOAD_KERNELS_HH
#define SCHED91_WORKLOAD_KERNELS_HH

#include <string>
#include <vector>

#include "ir/program.hh"

namespace sched91
{

/** Names of all available kernels. */
std::vector<std::string> kernelNames();

/** Assembly text of a kernel by name; throws FatalError if unknown. */
std::string kernelSource(const std::string &name);

/** Parsed kernel Program (generations stamped). */
Program kernelProgram(const std::string &name);

/**
 * The three-instruction example of Figure 1:
 *
 *     1: DIVF R1,R2,R3 (20 cycles)   fdivd %f0,%f2,%f4
 *     2: ADDF R4,R5,R1 ( 4 cycles)   faddd %f6,%f8,%f0
 *     3: ADDF R1,R3,R6 ( 4 cycles)   faddd %f0,%f4,%f10
 *
 * Arc 1->2 is WAR (delay 1), 2->3 RAW (delay 4), and the transitive
 * arc 1->3 RAW (delay 20) carries the timing information that
 * transitive-arc removal destroys.
 */
Program figure1Program();

} // namespace sched91

#endif // SCHED91_WORKLOAD_KERNELS_HH
