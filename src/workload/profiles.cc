#include "workload/profiles.hh"

#include "support/logging.hh"

namespace sched91
{

namespace
{

WorkloadProfile
makeProfile(const char *name, std::uint64_t seed, int blocks, int insts,
            int max_block, int max_mem, double avg_mem, double fp_frac,
            double load_frac, double store_frac, double branch_prob,
            double call_prob, double end_bias, int second_block)
{
    WorkloadProfile p;
    p.name = name;
    p.seed = seed;
    p.numBlocks = blocks;
    p.totalInsts = insts;
    p.maxBlock = max_block;
    p.maxMemExprs = max_mem;
    p.avgMemExprs = avg_mem;
    p.fpFraction = fp_frac;
    p.loadFraction = load_frac;
    p.storeFraction = store_frac;
    p.branchProb = branch_prob;
    p.callProb = call_prob;
    p.endBias = end_bias;
    p.secondBlock = second_block;
    return p;
}

} // namespace

std::vector<WorkloadProfile>
allProfiles()
{
    // Targets are the Table 3 rows; seeds fixed for reproducibility.
    return {
        // name     seed blocks insts  maxB maxM avgM  fp   ld    st    br   call bias 2nd
        makeProfile("grep", 101, 730, 1739, 34, 5, 0.32,
                    0.0, 0.18, 0.08, 0.75, 0.10, 0.0, 0),
        makeProfile("regex", 102, 873, 2417, 52, 9, 0.31,
                    0.0, 0.18, 0.08, 0.75, 0.08, 0.0, 0),
        makeProfile("dfa", 103, 1623, 4760, 45, 13, 0.67,
                    0.0, 0.20, 0.09, 0.78, 0.08, 0.0, 0),
        makeProfile("cccp", 104, 3480, 8831, 36, 10, 0.35,
                    0.0, 0.18, 0.08, 0.72, 0.12, 0.0, 0),
        makeProfile("linpack", 105, 390, 3391, 145, 62, 2.58,
                    0.55, 0.26, 0.12, 0.70, 0.02, 0.0, 0),
        makeProfile("lloops", 106, 263, 3753, 124, 40, 4.37,
                    0.55, 0.26, 0.13, 0.70, 0.02, 0.0, 0),
        makeProfile("tomcatv", 107, 112, 1928, 326, 68, 5.24,
                    0.60, 0.27, 0.12, 0.60, 0.02, 0.0, 0),
        makeProfile("nasa7", 108, 756, 10654, 284, 60, 4.23,
                    0.55, 0.26, 0.12, 0.65, 0.02, 0.0, 0),
        makeProfile("fpppp", 109, 662, 25545, 11750, 324, 4.76,
                    0.60, 0.25, 0.13, 0.55, 0.01, 0.85, 2500),
    };
}

WorkloadProfile
profileByName(const std::string &name)
{
    for (auto &p : allProfiles())
        if (p.name == name)
            return p;
    fatal("unknown workload profile '", name, "'");
}

std::vector<Table3Row>
paperTable3()
{
    return {
        {"grep", 730, 1739, 34, 2.38, 5, 0.32},
        {"regex", 873, 2417, 52, 2.77, 9, 0.31},
        {"dfa", 1623, 4760, 45, 2.93, 13, 0.67},
        {"cccp", 3480, 8831, 36, 2.54, 10, 0.35},
        {"linpack", 390, 3391, 145, 8.69, 62, 2.58},
        {"lloops", 263, 3753, 124, 14.27, 40, 4.37},
        {"tomcatv", 112, 1928, 326, 17.21, 68, 5.24},
        {"nasa7", 756, 10654, 284, 14.09, 60, 4.23},
        {"fpppp-1000", 675, 25545, 1000, 37.84, 120, 5.92},
        {"fpppp-2000", 668, 25545, 2000, 38.24, 161, 5.34},
        {"fpppp-4000", 664, 25545, 4000, 38.47, 209, 5.02},
        {"fpppp", 662, 25545, 11750, 38.59, 324, 4.76},
    };
}

} // namespace sched91
