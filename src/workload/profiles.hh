/**
 * @file
 * Workload profiles calibrated to Table 3 of the paper.
 *
 * The paper measured SPARC assembly of nine benchmarks ("cc -O4 -S" /
 * "f77 -O4 -S" under SunOS 4.1.1).  Those artifacts are not available,
 * so each profile drives a synthetic generator toward the structural
 * statistics Table 3 reports — the quantities the paper's experiments
 * actually depend on: block count, instruction count, block-size
 * distribution (max and average), unique memory expressions per block
 * (max and average), and the integer/floating-point character of the
 * code.  The fpppp profile additionally skews the introduction of new
 * memory expressions toward the end of its giant block, reproducing
 * the forward-vs-backward cost asymmetry discussed in Section 6.
 *
 * The fpppp-1000/2000/4000 variants are obtained exactly as in the
 * paper: by capping block size with an instruction window
 * (PartitionOptions::window), not by separate profiles.  The second-
 * largest fpppp block is pinned at 2500 instructions so that windowing
 * at 1000/2000/4000 reproduces Table 3's block counts
 * (662 -> 675/668/664).
 */

#ifndef SCHED91_WORKLOAD_PROFILES_HH
#define SCHED91_WORKLOAD_PROFILES_HH

#include <cstdint>
#include <string>
#include <vector>

namespace sched91
{

/** Generation targets for one synthetic benchmark. */
struct WorkloadProfile
{
    std::string name;
    std::uint64_t seed = 1;

    // Table 3 targets.
    int numBlocks = 0;
    int totalInsts = 0;
    int maxBlock = 0;
    int maxMemExprs = 0;      ///< max unique memory exprs in one block
    double avgMemExprs = 0.0; ///< average unique memory exprs per block

    // Code character.
    double fpFraction = 0.0;    ///< FP share of arithmetic instructions
    double loadFraction = 0.2;  ///< share of loads
    double storeFraction = 0.1; ///< share of stores
    double branchProb = 0.8;    ///< chance a block ends in cmp+branch
    double callProb = 0.0;      ///< chance a block ends in a call instead
    double endBias = 0.0;       ///< 0 = uniform; 1 = new memory
                                ///< expressions concentrated at block end
    int secondBlock = 0;        ///< pinned second-largest block size
};

/** Profile by benchmark name (grep, regex, dfa, cccp, linpack,
 * lloops, tomcatv, nasa7, fpppp); throws FatalError when unknown. */
WorkloadProfile profileByName(const std::string &name);

/** All nine profiles, Table 3 order. */
std::vector<WorkloadProfile> allProfiles();

/**
 * Table 3 as published, for paper-vs-measured reporting in the
 * benches.
 */
struct Table3Row
{
    const char *benchmark;
    int basicBlocks;
    int insts;
    int maxInstsPerBlock;
    double avgInstsPerBlock;
    int maxMemExprsPerBlock;
    double avgMemExprsPerBlock;
};

/** Published Table 3 rows (including the fpppp window variants). */
std::vector<Table3Row> paperTable3();

} // namespace sched91

#endif // SCHED91_WORKLOAD_PROFILES_HH
