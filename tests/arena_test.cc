/**
 * @file
 * Unit tests for the block-lifetime bump arena and its std-allocator
 * adapter: alignment, chunk growth and retention across reset(), the
 * null-arena heap fallback, and ArenaVector behavior under the
 * allocator-propagating move that the DAG builders rely on.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>

#include "support/arena.hh"

namespace sched91
{
namespace
{

TEST(Arena, AllocationsAreAligned)
{
    Arena arena(256);
    for (std::size_t align : {1u, 2u, 4u, 8u, 16u, 64u}) {
        void *p = arena.allocate(3, align);
        ASSERT_NE(p, nullptr);
        EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % align, 0u);
    }
}

TEST(Arena, AllocationsDoNotOverlap)
{
    Arena arena(128); // small chunks force several allocateSlow paths
    std::vector<std::pair<std::uintptr_t, std::size_t>> spans;
    for (int i = 0; i < 100; ++i) {
        std::size_t bytes = 1 + (i * 7) % 40;
        auto p = reinterpret_cast<std::uintptr_t>(arena.allocate(bytes, 8));
        for (const auto &[q, qb] : spans)
            EXPECT_TRUE(p + bytes <= q || q + qb <= p)
                << "allocation " << i << " overlaps an earlier one";
        spans.emplace_back(p, bytes);
    }
}

TEST(Arena, OversizedRequestGetsDedicatedChunk)
{
    Arena arena(64);
    void *p = arena.allocateArray<std::uint64_t>(1000);
    ASSERT_NE(p, nullptr);
    EXPECT_GE(arena.bytesReserved(), 8000u);
}

TEST(Arena, ResetRetainsChunks)
{
    Arena arena(128);
    for (int i = 0; i < 50; ++i)
        arena.allocate(32, 8);
    std::size_t reserved = arena.bytesReserved();
    std::size_t chunks = arena.numChunks();
    EXPECT_GT(chunks, 1u);

    arena.reset();
    EXPECT_EQ(arena.bytesInUse(), 0u);
    EXPECT_EQ(arena.bytesReserved(), reserved);
    EXPECT_EQ(arena.numChunks(), chunks);

    // Steady state: the same allocation pattern fits in the retained
    // chunks, so no new storage is acquired.
    for (int i = 0; i < 50; ++i)
        arena.allocate(32, 8);
    EXPECT_EQ(arena.bytesReserved(), reserved);
    EXPECT_EQ(arena.numChunks(), chunks);
}

TEST(Arena, ValuesSurviveUntilReset)
{
    Arena arena(256);
    std::vector<int *> ptrs;
    for (int i = 0; i < 200; ++i) {
        int *p = arena.allocateArray<int>(1);
        *p = i;
        ptrs.push_back(p);
    }
    for (int i = 0; i < 200; ++i)
        EXPECT_EQ(*ptrs[i], i);
}

TEST(ArenaAllocator, NullArenaFallsBackToHeap)
{
    ArenaAllocator<int> alloc;
    EXPECT_EQ(alloc.arena(), nullptr);
    int *p = alloc.allocate(4);
    ASSERT_NE(p, nullptr);
    p[0] = 7;
    alloc.deallocate(p, 4);
}

TEST(ArenaAllocator, EqualityIsArenaIdentity)
{
    Arena a, b;
    EXPECT_EQ(ArenaAllocator<int>(&a), ArenaAllocator<int>(&a));
    EXPECT_NE(ArenaAllocator<int>(&a), ArenaAllocator<int>(&b));
    EXPECT_NE(ArenaAllocator<int>(&a), ArenaAllocator<int>());
    // Rebinding keeps the arena.
    ArenaAllocator<double> rebound{ArenaAllocator<int>(&a)};
    EXPECT_EQ(rebound.arena(), &a);
}

TEST(ArenaVector, GrowsInsideArena)
{
    Arena arena;
    ArenaVector<std::uint32_t> v{ArenaAllocator<std::uint32_t>(&arena)};
    for (std::uint32_t i = 0; i < 1000; ++i)
        v.push_back(i);
    EXPECT_GT(arena.bytesInUse(), 1000 * sizeof(std::uint32_t) - 1);
    EXPECT_EQ(std::accumulate(v.begin(), v.end(), 0u), 999u * 1000u / 2u);
}

TEST(Arena, ArmedAllocFailureThrowsOnceThenRecovers)
{
    Arena arena(256);
    // Warm the arena so recovery lands back in a retained chunk.
    arena.allocate(64, 8);
    arena.reset();

    arena.armAllocFailure();
    EXPECT_THROW(arena.allocate(16, 8), std::bad_alloc);

    // One-shot: the throw restored a clean start-of-block state and
    // the arena is immediately usable again.
    void *p = arena.allocate(16, 8);
    ASSERT_NE(p, nullptr);
    EXPECT_THROW(
        {
            arena.armAllocFailure();
            arena.allocate(1, 1);
        },
        std::bad_alloc);
    EXPECT_NE(arena.allocate(32, 8), nullptr);
}

TEST(Arena, ResetDisarmsAllocFailure)
{
    Arena arena;
    arena.armAllocFailure();
    arena.reset();
    // The armed failure must not leak into the next block.
    EXPECT_NE(arena.allocate(8, 8), nullptr);
}

TEST(Arena, ArmedFailureOnVirginArenaLeavesItUsable)
{
    // No chunks exist yet: the recovery path must handle the empty
    // case (cursor back to zero) and the next allocation grows a
    // chunk normally.
    Arena arena(128);
    arena.armAllocFailure();
    EXPECT_THROW(arena.allocate(8, 8), std::bad_alloc);
    EXPECT_NE(arena.allocate(8, 8), nullptr);
    EXPECT_EQ(arena.numChunks(), 1u);
}

TEST(ArenaVector, MoveAssignmentPropagatesAllocator)
{
    // The DAG builders install arena storage by move-assigning an
    // empty arena-backed vector over a default (heap) one; POCMA makes
    // the target adopt the arena.
    Arena arena;
    ArenaVector<std::uint32_t> heap_backed;
    heap_backed = ArenaVector<std::uint32_t>(
        ArenaAllocator<std::uint32_t>(&arena));
    EXPECT_EQ(heap_backed.get_allocator().arena(), &arena);

    std::size_t before = arena.bytesInUse();
    for (std::uint32_t i = 0; i < 100; ++i)
        heap_backed.push_back(i);
    EXPECT_GT(arena.bytesInUse(), before);
}

} // namespace
} // namespace sched91
