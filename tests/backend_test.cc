/**
 * @file
 * Whole-program backend tests: the prepass -> allocate -> postpass
 * flow must preserve memory semantics block by block, account spills
 * correctly, and degrade gracefully on unallocatable blocks.
 */

#include <gtest/gtest.h>

#include "core/backend.hh"
#include "ir/parser.hh"
#include "machine/presets.hh"
#include "sim/executor.hh"
#include "workload/generator.hh"
#include "workload/kernels.hh"

namespace sched91
{
namespace
{

/** Per-block memory-effect equivalence between two programs. */
void
expectSameMemoryEffects(Program &original, Program &rewritten,
                        std::uint64_t seed)
{
    auto blocks_a = partitionBlocks(original);
    auto blocks_b = partitionBlocks(rewritten);
    ASSERT_EQ(blocks_a.size(), blocks_b.size());

    for (std::size_t i = 0; i < blocks_a.size(); ++i) {
        BlockView a(original, blocks_a[i]);
        BlockView b(rewritten, blocks_b[i]);

        std::vector<std::uint32_t> ida(a.size());
        for (std::uint32_t k = 0; k < a.size(); ++k)
            ida[k] = k;
        std::vector<std::uint32_t> idb(b.size());
        for (std::uint32_t k = 0; k < b.size(); ++k)
            idb[k] = k;

        ExecState sa = runBlock(a, ida, seed);
        ExecState sb = runBlock(b, idb, seed);
        for (const auto &[addr, byte] : sa.memory) {
            auto it = sb.memory.find(addr);
            ASSERT_NE(it, sb.memory.end())
                << "block " << i << " missing byte @" << addr;
            EXPECT_EQ(it->second, byte) << "block " << i;
        }
    }
}

TEST(Backend, CompilesKernelsPreservingMemoryEffects)
{
    MachineModel machine = sparcstation2();
    for (const std::string &kernel :
         {std::string("livermore1"), std::string("divide-chain")}) {
        Program prog = kernelProgram(kernel);
        BackendOptions opts;
        opts.allocator.fpPool = {0, 2, 4, 6, 8};
        opts.allocator.intPool = {8, 9, 10, 11};
        BackendResult result = compileProgram(prog, machine, opts);
        EXPECT_GT(result.cycles, 0);
        expectSameMemoryEffects(prog, result.program, 61);
    }
}

TEST(Backend, SyntheticProgramEndToEnd)
{
    WorkloadProfile p = profileByName("lloops");
    p.numBlocks = 10;
    p.totalInsts = 220;
    p.maxBlock = 40;
    p.secondBlock = 0;
    p.callProb = 0.0;
    Program prog = generateProgram(p);

    MachineModel machine = sparcstation2();
    BackendOptions opts;
    opts.memPolicy = AliasPolicy::SymbolicExpr;
    opts.allocator.fpPool = {0, 2, 4, 6, 8, 10};
    opts.allocator.intPool = {8, 9, 10, 11, 12, 13};
    BackendResult result = compileProgram(prog, machine, opts);

    EXPECT_EQ(result.blocks, 10u);
    EXPECT_GT(result.allocatedBlocks, 0u);
    expectSameMemoryEffects(prog, result.program, 67);
}

TEST(Backend, TightPoolSpillsMore)
{
    Program prog1 = kernelProgram("livermore1");
    Program prog2 = kernelProgram("livermore1");
    MachineModel machine = sparcstation2();

    BackendOptions tight;
    tight.allocator.fpPool = {0, 2, 4};
    BackendResult r_tight = compileProgram(prog1, machine, tight);

    BackendOptions roomy;
    roomy.allocator.fpPool = {0, 2, 4, 6, 8, 10, 12, 14};
    BackendResult r_roomy = compileProgram(prog2, machine, roomy);

    EXPECT_GE(r_tight.spillStores + r_tight.spillLoads,
              r_roomy.spillStores + r_roomy.spillLoads);
}

TEST(Backend, NoAllocationPassThrough)
{
    Program prog = kernelProgram("daxpy");
    MachineModel machine = sparcstation2();
    BackendOptions opts;
    opts.allocate = false;
    opts.postpass = std::nullopt;
    BackendResult result = compileProgram(prog, machine, opts);
    EXPECT_EQ(result.spillStores + result.spillLoads, 0);
    EXPECT_EQ(result.allocatedBlocks, 0u);
    expectSameMemoryEffects(prog, result.program, 71);
}

TEST(Backend, UnallocatableBlocksStillScheduled)
{
    // A block with a call cannot be allocated but must still flow
    // through (scheduled, unallocated).
    Program prog = parseAssembly(
        "ld [%i0], %l0\n"
        "add %l0, 1, %o0\n"
        "call helper\n"
        "next:\n"
        "ld [%i0+8], %l1\n"
        "st %l1, [%i1]\n");
    MachineModel machine = sparcstation2();
    BackendOptions opts;
    BackendResult result = compileProgram(prog, machine, opts);
    EXPECT_EQ(result.blocks, 2u);
    EXPECT_EQ(result.allocatedBlocks, 1u);
    EXPECT_EQ(result.program.size(), prog.size());
}

} // namespace
} // namespace sched91
