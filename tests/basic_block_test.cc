/**
 * @file
 * Basic-block partitioning tests: block-ending rules (branch, call,
 * save/restore), delay-slot accounting, labels, instruction windows,
 * and memory-generation stamping.
 */

#include <gtest/gtest.h>

#include "ir/basic_block.hh"
#include "ir/parser.hh"

namespace sched91
{
namespace
{

Program
parse(const char *text)
{
    return parseAssembly(text);
}

TEST(Partition, BranchEndsBlockDelaySlotFollows)
{
    // Per the Table 3 note, the delay-slot instruction counts with the
    // *following* block.
    Program p = parse(
        "add %g1, %g2, %g3\n"
        "bne x\n"
        "nop\n" // delay slot -> next block
        "sub %g1, %g2, %g4\n");
    auto blocks = partitionBlocks(p);
    ASSERT_EQ(blocks.size(), 2u);
    EXPECT_EQ(blocks[0].begin, 0u);
    EXPECT_EQ(blocks[0].end, 2u);
    EXPECT_EQ(blocks[1].begin, 2u);
    EXPECT_EQ(blocks[1].end, 4u);
}

TEST(Partition, CallEndsBlockByDefault)
{
    Program p = parse("call f\nadd %g1, %g2, %g3\n");
    EXPECT_EQ(partitionBlocks(p).size(), 2u);

    PartitionOptions opts;
    opts.callsEndBlocks = false;
    EXPECT_EQ(partitionBlocks(p, opts).size(), 1u);
}

TEST(Partition, WindowOpsEndBlocks)
{
    Program p = parse(
        "save %sp, -96, %sp\n"
        "add %g1, %g2, %g3\n"
        "restore\n"
        "retl\n"
        "nop\n");
    auto blocks = partitionBlocks(p);
    // save | add restore | retl | nop
    ASSERT_EQ(blocks.size(), 4u);
    EXPECT_EQ(blocks[0].size(), 1u);
    EXPECT_EQ(blocks[1].size(), 2u);
}

TEST(Partition, LabelsStartBlocks)
{
    Program p = parse(
        "add %g1, %g2, %g3\n"
        "loop:\n"
        "sub %g3, 1, %g3\n"
        "ba loop\n");
    auto blocks = partitionBlocks(p);
    ASSERT_EQ(blocks.size(), 2u);
    EXPECT_EQ(blocks[1].begin, 1u);
}

TEST(Partition, WindowSplitsLargeBlocks)
{
    std::string text;
    for (int i = 0; i < 100; ++i)
        text += "add %g1, %g2, %g3\n";
    Program p = parse(text.c_str());

    PartitionOptions opts;
    opts.window = 30;
    auto blocks = partitionBlocks(p, opts);
    ASSERT_EQ(blocks.size(), 4u); // 30+30+30+10
    EXPECT_EQ(blocks[0].size(), 30u);
    EXPECT_EQ(blocks[3].size(), 10u);
}

TEST(Partition, BlocksCoverProgramExactly)
{
    Program p = parse(
        "add %g1, %g2, %g3\ncmp %g3, 4\nbne a\nnop\n"
        "a:\nld [%o0], %g1\ncall f\nsub %g1, 1, %g2\nretl\nnop\n");
    auto blocks = partitionBlocks(p);
    std::uint32_t covered = 0;
    std::uint32_t prev_end = 0;
    for (const auto &bb : blocks) {
        EXPECT_EQ(bb.begin, prev_end);
        EXPECT_GT(bb.end, bb.begin);
        covered += bb.size();
        prev_end = bb.end;
    }
    EXPECT_EQ(covered, p.size());
}

TEST(Generations, BaseRedefinitionBumpsStamp)
{
    Program p = parse(
        "ld [%o0+4], %g1\n"
        "add %o0, 8, %o0\n"
        "ld [%o0+4], %g2\n");
    partitionBlocks(p);
    EXPECT_EQ(p[0].mem()->baseGen, 0u);
    EXPECT_EQ(p[2].mem()->baseGen, 1u);
}

TEST(Generations, UnrelatedDefsDoNotBump)
{
    Program p = parse(
        "ld [%o0+4], %g1\n"
        "add %g1, 8, %g2\n"
        "ld [%o0+8], %g3\n");
    partitionBlocks(p);
    EXPECT_EQ(p[0].mem()->baseGen, p[2].mem()->baseGen);
}

TEST(Structure, MeasuresTable3Quantities)
{
    Program p = parse(
        "ld [%o0+4], %g1\n"
        "ld [%o0+4], %g2\n"
        "ld [%o0+8], %g3\n"
        "bne x\n"
        "nop\n"
        "add %g1, %g2, %g3\n");
    auto blocks = partitionBlocks(p);
    auto s = measureStructure(p, blocks);
    EXPECT_EQ(s.numBlocks, 2u);
    EXPECT_EQ(s.numInsts, 6u);
    EXPECT_DOUBLE_EQ(s.instsPerBlock.max(), 4.0);
    EXPECT_DOUBLE_EQ(s.memExprsPerBlock.max(), 2.0); // [%o0+4], [%o0+8]
}

} // namespace
} // namespace sched91
