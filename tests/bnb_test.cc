/**
 * @file
 * Branch-and-bound optimal scheduler tests: validity, optimality
 * against exhaustive enumeration on tiny blocks, never-worse-than-
 * heuristics, and budget behaviour.
 */

#include <gtest/gtest.h>

#include <limits>

#include "core/pipeline.hh"
#include "dag/table_forward.hh"
#include "heuristics/static_passes.hh"
#include "ir/parser.hh"
#include "machine/presets.hh"
#include "sched/branch_and_bound.hh"
#include "sched/pipeline_sim.hh"
#include "workload/generator.hh"
#include "workload/kernels.hh"

namespace sched91
{
namespace
{

Dag
buildBlock(Program &prog, std::size_t block_idx = 0)
{
    auto blocks = partitionBlocks(prog);
    return TableForwardBuilder().build(
        BlockView(prog, blocks.at(block_idx)), sparcstation2(),
        BuildOptions{});
}

/** Exhaustive minimum makespan over all topological orders. */
int
bruteForceOptimum(const Dag &dag, const MachineModel &machine)
{
    std::vector<std::uint32_t> order;
    std::vector<bool> used(dag.size(), false);
    std::vector<int> parents(dag.size());
    for (std::uint32_t i = 0; i < dag.size(); ++i)
        parents[i] = dag.numParents(i);

    int best = std::numeric_limits<int>::max();
    auto rec = [&](auto &&self) -> void {
        if (order.size() == dag.size()) {
            best = std::min(
                best, simulateSchedule(dag, order, machine).cycles);
            return;
        }
        for (std::uint32_t i = 0; i < dag.size(); ++i) {
            if (used[i] || parents[i] != 0)
                continue;
            used[i] = true;
            order.push_back(i);
            for (std::uint32_t c : dag.succTo(i))
                --parents[c];
            self(self);
            for (std::uint32_t c : dag.succTo(i))
                ++parents[c];
            order.pop_back();
            used[i] = false;
        }
    };
    rec(rec);
    return best;
}

TEST(BranchAndBound, MatchesBruteForceOnTinyBlocks)
{
    const char *programs[] = {
        // load-use stall with a filler
        "ld [%o0], %g1\nadd %g1, 1, %g2\nadd %g3, 1, %g4\n"
        "add %g4, 1, %g5\n",
        // Figure 1 plus filler
        "fdivd %f0, %f2, %f4\nfaddd %f6, %f8, %f0\n"
        "faddd %f0, %f4, %f10\nadd %g1, 1, %g2\nadd %g2, 1, %g3\n",
        // two independent chains
        "ld [%o0], %g1\nadd %g1, 1, %g2\nst %g2, [%o1]\n"
        "ld [%o0+8], %g3\nadd %g3, 1, %g4\nst %g4, [%o1+8]\n",
    };
    MachineModel machine = sparcstation2();
    for (const char *text : programs) {
        Program prog = parseAssembly(text);
        Dag dag = buildBlock(prog);
        int brute = bruteForceOptimum(dag, machine);

        BnbResult result = scheduleOptimal(dag, machine);
        EXPECT_TRUE(result.optimal);
        EXPECT_EQ(result.cycles, brute);
        EXPECT_TRUE(isValidTopologicalOrder(dag, result.sched.order));
        EXPECT_EQ(simulateSchedule(dag, result.sched.order, machine)
                      .cycles,
                  brute);
    }
}

TEST(BranchAndBound, NeverWorseThanHeuristics)
{
    MachineModel machine = sparcstation2();
    for (const std::string &kernel : kernelNames()) {
        Program prog = kernelProgram(kernel);
        auto blocks = partitionBlocks(prog);
        for (const auto &bb : blocks) {
            if (bb.size() > 26)
                continue;
            Dag dag = TableForwardBuilder().build(BlockView(prog, bb),
                                                  machine,
                                                  BuildOptions{});
            BnbResult optimal = scheduleOptimal(dag, machine);

            for (AlgorithmKind kind : publishedAlgorithms()) {
                PipelineOptions opts;
                opts.algorithm = kind;
                auto h = scheduleBlock(BlockView(prog, bb), machine,
                                       opts);
                Dag gt = TableForwardBuilder().build(
                    BlockView(prog, bb), machine, BuildOptions{});
                int cycles =
                    simulateSchedule(gt, h.sched.order, machine).cycles;
                EXPECT_LE(optimal.cycles, cycles)
                    << kernel << " vs " << algorithmName(kind);
            }
        }
    }
}

TEST(BranchAndBound, BudgetExhaustionStillValid)
{
    // Independent divides on one non-pipelined divider: the search's
    // FU-blind lower bound is far below the true optimum, so pruning
    // cannot close the search — a tiny node budget must be exhausted.
    Program prog = parseAssembly(
        "fdivd %f0, %f2, %f4\n"
        "fdivd %f6, %f8, %f10\n"
        "fdivd %f12, %f14, %f16\n"
        "fdivd %f18, %f20, %f22\n"
        "fdivd %f24, %f26, %f28\n"
        "fmuld %f4, %f10, %f30\n");
    MachineModel machine = sparcstation2();
    Dag dag = buildBlock(prog);
    BnbOptions opts;
    opts.maxNodes = 3;
    BnbResult result = scheduleOptimal(dag, machine, opts);
    EXPECT_FALSE(result.optimal);
    EXPECT_TRUE(isValidTopologicalOrder(dag, result.sched.order));
    EXPECT_GT(result.cycles, 0);
}

TEST(BranchAndBound, RespectsStructuralHazards)
{
    // Two independent divides on one non-pipelined divider: even the
    // optimum pays the serialization.
    Program prog = parseAssembly(
        "fdivd %f0, %f2, %f4\nfdivd %f6, %f8, %f10\n");
    MachineModel machine = sparcstation2();
    Dag dag = buildBlock(prog);
    BnbResult result = scheduleOptimal(dag, machine);
    EXPECT_TRUE(result.optimal);
    EXPECT_GE(result.cycles, 2 * machine.latency(InstClass::FpDiv));
}

TEST(BranchAndBound, QuantifiesHeuristicGap)
{
    // The divide-chain kernel is built so that delay-to-leaf-first
    // heuristics schedule it optimally while pruned-DAG schedules
    // lose ~10%; the optimum must match the good heuristic result.
    Program prog = kernelProgram("divide-chain");
    MachineModel machine = sparcstation2();
    Dag dag = buildBlock(prog);
    BnbResult result = scheduleOptimal(dag, machine);
    EXPECT_TRUE(result.optimal);
    EXPECT_LE(result.cycles, 30);
}

} // namespace
} // namespace sched91
