/**
 * @file
 * DAG construction algorithm tests.
 *
 * The central properties from the paper:
 *  - all builders produce DAGs with the same *transitive closure*
 *    (same ordering constraints);
 *  - the n**2 and table builders also preserve all *timing*: the
 *    longest-delay path between any two nodes matches the full n**2
 *    dependence DAG;
 *  - Landskov-style transitive-arc prevention keeps the closure but
 *    LOSES timing on Figure 1's pattern (the paper's conclusion 3);
 *  - the table builders retain Figure 1's transitive RAW arc.
 */

#include <gtest/gtest.h>

#include <limits>

#include "dag/builder.hh"
#include "dag/table_backward.hh"
#include "dag/table_forward.hh"
#include "ir/basic_block.hh"
#include "ir/parser.hh"
#include "machine/presets.hh"
#include "workload/generator.hh"
#include "workload/kernels.hh"

namespace sched91
{
namespace
{

/** All-pairs maximum path delay (-1 = unreachable). */
std::vector<std::vector<int>>
longestDelays(const Dag &dag)
{
    std::uint32_t n = dag.size();
    std::vector<std::vector<int>> d(n, std::vector<int>(n, -1));
    for (std::uint32_t i = n; i-- > 0;) {
        d[i][i] = 0;
        for (std::uint32_t arc_id : dag.succs(i)) {
            const Arc &arc = dag.arc(arc_id);
            for (std::uint32_t j = 0; j < n; ++j) {
                if (d[arc.to][j] >= 0)
                    d[i][j] = std::max(d[i][j],
                                       arc.delay + d[arc.to][j]);
            }
        }
    }
    return d;
}

Dag
buildWith(BuilderKind kind, const BlockView &block,
          const MachineModel &machine, BuildOptions opts = {})
{
    return makeBuilder(kind)->build(block, machine, opts);
}

class KernelBuilders : public ::testing::TestWithParam<std::string>
{
};

TEST_P(KernelBuilders, AllBuildersSameClosure)
{
    Program prog = kernelProgram(GetParam());
    auto blocks = partitionBlocks(prog);
    MachineModel machine = sparcstation2();

    for (const auto &bb : blocks) {
        BlockView block(prog, bb);
        Dag ref = buildWith(BuilderKind::N2Forward, block, machine);
        auto ref_delays = longestDelays(ref);

        for (BuilderKind kind : allBuilderKinds()) {
            Dag dag = buildWith(kind, block, machine);
            auto delays = longestDelays(dag);
            for (std::uint32_t i = 0; i < dag.size(); ++i) {
                for (std::uint32_t j = 0; j < dag.size(); ++j) {
                    // Same ordering constraints (closure equality).
                    EXPECT_EQ(delays[i][j] >= 0, ref_delays[i][j] >= 0)
                        << builderKindName(kind) << " closure " << i
                        << "->" << j;
                    if (kind == BuilderKind::N2Landskov)
                        continue; // may lose timing, checked elsewhere
                    EXPECT_EQ(delays[i][j], ref_delays[i][j])
                        << builderKindName(kind) << " timing " << i
                        << "->" << j;
                }
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Kernels, KernelBuilders,
                         ::testing::Values("daxpy", "livermore1",
                                           "tomcatv", "grep-scan",
                                           "list-walk"));

TEST(Builders, SyntheticProgramClosureEquivalence)
{
    WorkloadProfile p = profileByName("lloops");
    p.numBlocks = 24;
    p.totalInsts = 400;
    p.maxBlock = 60;
    p.secondBlock = 0;
    Program prog = generateProgram(p);
    auto blocks = partitionBlocks(prog);
    MachineModel machine = sparcstation2();

    for (const auto &bb : blocks) {
        if (bb.size() > 80)
            continue;
        BlockView block(prog, bb);
        Dag ref = buildWith(BuilderKind::N2Forward, block, machine);
        auto ref_delays = longestDelays(ref);
        for (BuilderKind kind :
             {BuilderKind::TableForward, BuilderKind::TableBackward}) {
            Dag dag = buildWith(kind, block, machine);
            auto delays = longestDelays(dag);
            EXPECT_EQ(delays, ref_delays) << builderKindName(kind);
        }
    }
}

TEST(Builders, Figure1TableRetainsTransitiveArc)
{
    Program prog = figure1Program();
    auto blocks = partitionBlocks(prog);
    MachineModel machine = figure1Machine();
    BlockView block(prog, blocks.at(0));

    for (BuilderKind kind :
         {BuilderKind::N2Forward, BuilderKind::TableForward,
          BuilderKind::TableBackward}) {
        Dag dag = buildWith(kind, block, machine);
        // Expect exactly the three arcs of Figure 1.
        ASSERT_EQ(dag.numArcs(), 3u) << builderKindName(kind);
        auto delays = longestDelays(dag);
        EXPECT_EQ(delays[0][1], 1);  // WAR
        EXPECT_EQ(delays[1][2], 4);  // RAW
        EXPECT_EQ(delays[0][2], 20); // transitive RAW retained
    }
}

TEST(Builders, Figure1LandskovLosesTiming)
{
    Program prog = figure1Program();
    auto blocks = partitionBlocks(prog);
    MachineModel machine = figure1Machine();
    BlockView block(prog, blocks.at(0));

    Dag dag = buildWith(BuilderKind::N2Landskov, block, machine);
    EXPECT_EQ(dag.numArcs(), 2u);
    EXPECT_GE(dag.suppressedCount(), 1u); // one per pair register
    auto delays = longestDelays(dag);
    // Ordering survives but the 20-cycle constraint collapses to 5.
    EXPECT_EQ(delays[0][2], 5);
}

TEST(Builders, Figure1ArcKinds)
{
    Program prog = figure1Program();
    auto blocks = partitionBlocks(prog);
    MachineModel machine = figure1Machine();
    Dag dag = buildWith(BuilderKind::TableForward,
                        BlockView(prog, blocks.at(0)), machine);
    int raw = 0, war = 0;
    for (const Arc &arc : dag.arcs()) {
        if (arc.kind == DepKind::RAW)
            ++raw;
        if (arc.kind == DepKind::WAR)
            ++war;
    }
    EXPECT_EQ(raw, 2);
    EXPECT_EQ(war, 1);
}

TEST(Builders, N2HasMoreArcsThanTable)
{
    // Table 4 vs Table 5: the n**2 approach keeps transitive arcs.
    Program prog = kernelProgram("daxpy");
    auto blocks = partitionBlocks(prog);
    MachineModel machine = sparcstation2();
    BlockView block(prog, blocks.at(0));

    Dag n2 = buildWith(BuilderKind::N2Forward, block, machine);
    Dag table = buildWith(BuilderKind::TableForward, block, machine);
    EXPECT_GT(n2.numArcs(), table.numArcs());
    EXPECT_GT(n2.countTransitiveArcs(), 0u);
}

TEST(Builders, LandskovProducesNoTransitiveArcs)
{
    for (const char *kernel : {"daxpy", "livermore1", "tomcatv"}) {
        Program prog = kernelProgram(kernel);
        auto blocks = partitionBlocks(prog);
        MachineModel machine = sparcstation2();
        for (const auto &bb : blocks) {
            Dag dag = buildWith(BuilderKind::N2Landskov,
                                BlockView(prog, bb), machine);
            EXPECT_EQ(dag.countTransitiveArcs(), 0u) << kernel;
        }
    }
}

TEST(Builders, N2BackwardMatchesForwardArcSet)
{
    Program prog = kernelProgram("tomcatv");
    auto blocks = partitionBlocks(prog);
    MachineModel machine = sparcstation2();
    BlockView block(prog, blocks.at(0));

    Dag fwd = buildWith(BuilderKind::N2Forward, block, machine);
    Dag bwd = buildWith(BuilderKind::N2Backward, block, machine);
    EXPECT_EQ(fwd.numArcs(), bwd.numArcs());
    EXPECT_EQ(longestDelays(fwd), longestDelays(bwd));
}

TEST(Builders, SerializeAllOrdersAllMemoryOps)
{
    Program prog = parseAssembly(
        "ld [%o0+0], %g1\n"
        "ld [%o0+8], %g2\n"
        "st %g1, [%o1+0]\n"
        "st %g2, [%o1+8]\n");
    auto blocks = partitionBlocks(prog);
    MachineModel machine = sparcstation2();
    BuildOptions serialize;
    serialize.memPolicy = AliasPolicy::SerializeAll;
    BuildOptions precise;
    precise.memPolicy = AliasPolicy::BaseOffset;

    Dag s = TableForwardBuilder().build(BlockView(prog, blocks[0]),
                                        machine, serialize);
    Dag p = TableForwardBuilder().build(BlockView(prog, blocks[0]),
                                        machine, precise);
    auto sd = longestDelays(s);
    auto pd = longestDelays(p);
    // Serialize-all orders store 2 after store 3 ... store after store:
    EXPECT_GE(sd[2][3], 0);
    // Base-offset proves the two stores independent.
    EXPECT_LT(pd[2][3], 0);
    // Loads stay unordered against each other in both.
    EXPECT_LT(sd[0][1], 0);
}

TEST(Builders, BaseRedefinitionForcesMayAlias)
{
    Program prog = parseAssembly(
        "st %g1, [%o0+0]\n"
        "add %o0, 16, %o0\n"
        "ld [%o0+8], %g2\n"); // could overlap the store before redef
    auto blocks = partitionBlocks(prog);
    MachineModel machine = sparcstation2();
    Dag dag = TableForwardBuilder().build(BlockView(prog, blocks[0]),
                                          machine, BuildOptions{});
    auto d = longestDelays(dag);
    EXPECT_GE(d[0][2], 0) << "store->load must be ordered across redef";
}

TEST(Builders, AnchorBranchMakesBranchLast)
{
    Program prog = parseAssembly(
        "ld [%o0], %g1\n"
        "add %g2, %g3, %g4\n"  // independent of the branch condition
        "cmp %g1, 0\n"
        "bne out\n");
    auto blocks = partitionBlocks(prog);
    MachineModel machine = sparcstation2();
    Dag dag = TableForwardBuilder().build(BlockView(prog, blocks[0]),
                                          machine, BuildOptions{});
    // Every other node must reach the branch.
    auto d = longestDelays(dag);
    for (std::uint32_t i = 0; i + 1 < dag.size(); ++i)
        EXPECT_GE(d[i][dag.size() - 1], 0) << i;
}

TEST(Builders, NoAnchorLeavesBranchFloating)
{
    Program prog = parseAssembly(
        "add %g2, %g3, %g4\n"
        "cmp %g1, 0\n"
        "bne out\n");
    auto blocks = partitionBlocks(prog);
    MachineModel machine = sparcstation2();
    BuildOptions opts;
    opts.anchorBranch = false;
    Dag dag = TableForwardBuilder().build(BlockView(prog, blocks[0]),
                                          machine, opts);
    auto d = longestDelays(dag);
    EXPECT_LT(d[0][2], 0); // add has no path to the branch
}

TEST(Builders, WawOmittedWhenUsesIntervene)
{
    // def r, use r, def r: the paper's table algorithm relies on the
    // RAW + WAR chain and adds no direct WAW arc.
    Program prog = parseAssembly(
        "add %g1, %g2, %g3\n"
        "sub %g3, 1, %g4\n"
        "or %g5, %g6, %g3\n");
    auto blocks = partitionBlocks(prog);
    MachineModel machine = sparcstation2();
    Dag dag = TableForwardBuilder().build(BlockView(prog, blocks[0]),
                                          machine, BuildOptions{});
    bool direct_02 = false;
    for (const Arc &arc : dag.arcs())
        if (arc.from == 0 && arc.to == 2)
            direct_02 = true;
    EXPECT_FALSE(direct_02);
    // But ordering still holds transitively.
    EXPECT_GE(longestDelays(dag)[0][2], 0);
}

TEST(Builders, DescendantMapsDuringBackwardBuild)
{
    Program prog = kernelProgram("daxpy");
    auto blocks = partitionBlocks(prog);
    MachineModel machine = sparcstation2();
    BuildOptions opts;
    opts.maintainReachMaps = true;
    Dag dag = TableBackwardBuilder().build(BlockView(prog, blocks[0]),
                                           machine, opts);
    ASSERT_EQ(dag.reachMode(), ReachMode::Descendants);
    BitMatrix maps = dag.computeDescendantMaps();
    for (std::uint32_t i = 0; i < dag.size(); ++i)
        for (std::uint32_t j = 0; j < dag.size(); ++j)
            EXPECT_EQ(dag.reachMap(i).test(j), maps.row(i).test(j));
}

} // namespace
} // namespace sched91
