/**
 * @file
 * Cooperative cancellation tests (support/cancellation.hh).
 *
 * The property that distinguishes this layer from PR 3's
 * phase-boundary budget checks: a block that exceeds its budget is
 * abandoned *mid-loop* — inside the n**2 builder's pairwise scan or
 * the list scheduler's extraction loop — and degrades per the
 * containment semantics in both runPipeline and compileProgram.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "core/backend.hh"
#include "core/pipeline.hh"
#include "obs/counters.hh"
#include "dag/n2_forward.hh"
#include "ir/basic_block.hh"
#include "ir/parser.hh"
#include "machine/machine_model.hh"
#include "sched/list_scheduler.hh"
#include "sched/registry.hh"
#include "support/cancellation.hh"

namespace sched91
{
namespace
{

/** A straight-line block big enough that the n**2 pairwise scan and
 * the scheduler loop each poll the token well past its stride. */
std::string
bigBlockSource(int n)
{
    std::string src = "top:\n";
    for (int i = 0; i < n; ++i)
        src += "    add %g1, %g2, %g3\n";
    return src;
}

// --- Token unit behaviour ------------------------------------------

TEST(CancellationToken, DefaultTokenNeverCancels)
{
    CancellationToken token;
    EXPECT_FALSE(token.cancelled());
    for (int i = 0; i < 10000; ++i)
        EXPECT_NO_THROW(token.poll());
}

TEST(CancellationToken, ManualCancelMakesPollThrow)
{
    CancellationToken token;
    token.setReason("test cancel");
    token.requestCancel();
    EXPECT_TRUE(token.cancelled());
    try {
        token.poll();
        FAIL() << "poll() did not throw";
    } catch (const CancelledError &e) {
        EXPECT_NE(std::string(e.what()).find("test cancel"),
                  std::string::npos);
    }
}

TEST(CancellationToken, ExpiredDeadlineFiresWithinOnePollStride)
{
    CancellationToken token(0.0); // deadline already in the past
    EXPECT_TRUE(token.cancelled());
    // poll() amortizes the clock read, so the throw may take up to
    // one stride of calls — but no more.
    EXPECT_THROW(
        {
            for (int i = 0; i < 1000; ++i)
                token.poll();
        },
        CancelledError);
}

TEST(CancellationToken, CancelledErrorIsNotAFatalOrPanicError)
{
    // The containment ladder routes budget outcomes separately from
    // faults; a CancelledError must not be caught by handlers for
    // either.
    CancellationToken token;
    token.requestCancel();
    bool caught = false;
    try {
        token.poll();
    } catch (const std::runtime_error &) {
        caught = true;
    }
    EXPECT_TRUE(caught);
}

// --- Mid-loop cancellation in the builder and scheduler ------------

TEST(Cancellation, N2BuildAbortsMidLoopOnCancelledToken)
{
    Program prog = parseAssembly(bigBlockSource(8));
    stampMemGenerations(prog);
    auto blocks = partitionBlocks(prog);
    ASSERT_EQ(blocks.size(), 1u);
    BlockView block(prog, blocks[0]);
    MachineModel machine;

    CancellationToken token;
    token.requestCancel();
    BuildOptions opts;
    opts.cancel = &token;
    EXPECT_THROW(N2ForwardBuilder().build(block, machine, opts),
                 CancelledError);
}

TEST(Cancellation, ListSchedulerAbortsOnCancelledToken)
{
    Program prog = parseAssembly(bigBlockSource(8));
    stampMemGenerations(prog);
    auto blocks = partitionBlocks(prog);
    BlockView block(prog, blocks[0]);
    MachineModel machine;
    Dag dag = N2ForwardBuilder().build(block, machine);
    runAllStaticPasses(dag, PassImpl::ReverseWalk, true);

    CancellationToken token;
    token.requestCancel();
    ListScheduler scheduler(
        algorithmSpec(AlgorithmKind::SimpleForward).config, machine);
    EXPECT_THROW(scheduler.run(dag, nullptr, &token), CancelledError);
}

// --- Pipeline-level budget degradation -----------------------------

TEST(Cancellation, PipelineBudgetCancelsBlockAndDegrades)
{
    Program prog = parseAssembly(bigBlockSource(400));
    MachineModel machine;
    PipelineOptions opts;
    opts.builder = BuilderKind::N2Forward;
    opts.maxBlockSeconds = 1e-9; // expires before the first poll
    opts.threads = 1;

    ProgramResult result = runPipeline(prog, machine, opts);
    EXPECT_EQ(result.blocksDegraded, 1u);
    ASSERT_FALSE(result.blockIssues.empty());
    EXPECT_EQ(result.blockIssues[0].stage, "budget");
    EXPECT_TRUE(result.blockIssues[0].degraded);
    EXPECT_NE(result.blockIssues[0].reason.find("cancelled mid-loop"),
              std::string::npos);
}

TEST(Cancellation, StrictModeStillDegradesOnBudget)
{
    // Budget overruns are environmental, not faults: --strict
    // (containFaults off) must not turn them into a crash.
    Program prog = parseAssembly(bigBlockSource(400));
    MachineModel machine;
    PipelineOptions opts;
    opts.builder = BuilderKind::N2Forward;
    opts.maxBlockSeconds = 1e-9;
    opts.containFaults = false;
    opts.threads = 1;

    ProgramResult result;
    EXPECT_NO_THROW(result = runPipeline(prog, machine, opts));
    EXPECT_EQ(result.blocksDegraded, 1u);
}

TEST(Cancellation, GenerousBudgetDoesNotDegrade)
{
    Program prog = parseAssembly(bigBlockSource(100));
    MachineModel machine;
    PipelineOptions opts;
    opts.builder = BuilderKind::N2Forward;
    opts.maxBlockSeconds = 3600.0;
    opts.threads = 1;

    ProgramResult result = runPipeline(prog, machine, opts);
    EXPECT_EQ(result.blocksDegraded, 0u);
    EXPECT_TRUE(result.blockIssues.empty());
}

// --- Whole-run budget (PipelineOptions::maxRunSeconds) -------------

/** Several branch-separated blocks, so the run budget has more than
 * one block to account for. */
std::string
multiBlockSource(int blocks, int insts_per_block)
{
    std::string src;
    for (int b = 0; b < blocks; ++b) {
        src += "blk" + std::to_string(b) + ":\n";
        for (int i = 0; i < insts_per_block; ++i)
            src += "    add %g1, %g2, %g3\n";
        if (b + 1 < blocks)
            src += "    ba blk" + std::to_string(b + 1) + "\n    nop\n";
    }
    return src;
}

TEST(Cancellation, RunBudgetDegradesEveryBlockAndCounts)
{
    obs::setEnabled(true);
    obs::CounterRegistry::global().resetAll();

    Program prog = parseAssembly(multiBlockSource(4, 50));
    MachineModel machine;
    PipelineOptions opts;
    opts.maxRunSeconds = 1e-9; // exhausted before any block starts
    opts.threads = 1;

    ProgramResult result = runPipeline(prog, machine, opts);
    obs::setEnabled(false);
    obs::CounterRegistry::global().resetAll();

    EXPECT_EQ(result.blocksDegraded, result.numBlocks);
    ASSERT_EQ(result.blockIssues.size(), result.numBlocks);
    for (const ProgramResult::BlockIssue &issue : result.blockIssues) {
        EXPECT_EQ(issue.stage, "budget");
        EXPECT_TRUE(issue.degraded);
        EXPECT_NE(issue.reason.find("run budget"), std::string::npos);
    }
    // The run-budget rung of the ladder is attributed distinctly
    // from the per-block budget.
    EXPECT_GE(result.counters.value("cancel.run_budget_exhausted"),
              static_cast<std::uint64_t>(result.numBlocks));
}

TEST(Cancellation, GenerousRunBudgetDoesNotDegrade)
{
    obs::setEnabled(true);
    obs::CounterRegistry::global().resetAll();

    Program prog = parseAssembly(multiBlockSource(4, 50));
    MachineModel machine;
    PipelineOptions opts;
    opts.maxRunSeconds = 3600.0;
    opts.threads = 1;

    ProgramResult result = runPipeline(prog, machine, opts);
    obs::setEnabled(false);
    obs::CounterRegistry::global().resetAll();

    EXPECT_EQ(result.blocksDegraded, 0u);
    EXPECT_TRUE(result.blockIssues.empty());
    EXPECT_EQ(result.counters.value("cancel.run_budget_exhausted"), 0u);
}

TEST(Cancellation, RunBudgetTightensPerBlockShare)
{
    // A whole-run budget smaller than the (huge) per-block cap must
    // win: the fair share, not maxBlockSeconds, is what expires.
    Program prog = parseAssembly(multiBlockSource(2, 50));
    MachineModel machine;
    PipelineOptions opts;
    opts.maxBlockSeconds = 3600.0;
    opts.maxRunSeconds = 1e-9;
    opts.threads = 1;

    ProgramResult result = runPipeline(prog, machine, opts);
    EXPECT_EQ(result.blocksDegraded, result.numBlocks);
}

// --- Backend (compileProgram) budget threading ---------------------

TEST(Cancellation, BackendBudgetDegradesAndPreservesProgram)
{
    Program prog = parseAssembly(bigBlockSource(400));
    stampMemGenerations(prog);
    MachineModel machine;
    BackendOptions opts;
    opts.builder = BuilderKind::N2Forward;
    opts.allocate = false;
    opts.maxBlockSeconds = 1e-9;

    BackendResult result = compileProgram(prog, machine, opts);
    EXPECT_GE(result.blocksDegraded, 1u);
    ASSERT_FALSE(result.blockIssues.empty());
    EXPECT_EQ(result.blockIssues[0].stage, "budget");
    // The block degrades to its incoming order: same instructions.
    EXPECT_EQ(result.program.insts().size(), prog.insts().size());
}

TEST(Cancellation, BackendBudgetDegradesEvenWithoutContainment)
{
    Program prog = parseAssembly(bigBlockSource(400));
    stampMemGenerations(prog);
    MachineModel machine;
    BackendOptions opts;
    opts.builder = BuilderKind::N2Forward;
    opts.allocate = false;
    opts.containFaults = false;
    opts.maxBlockSeconds = 1e-9;

    BackendResult result;
    EXPECT_NO_THROW(result = compileProgram(prog, machine, opts));
    EXPECT_GE(result.blocksDegraded, 1u);
}

} // namespace
} // namespace sched91
