! Malformed memory operands: missing brackets, empty addresses,
! and operator soup inside the brackets.
.text
addr:
	ld	%g1 + 4, %g2	! missing brackets
	ld	[%g1 + 4], %g2
	st	%g2, %g1 + 8	! missing brackets
	st	%g2, [%g1 + 8]
	ld	[], %g3		! empty address
	ld	[%g1 +], %g3	! dangling operator
	ld	[%q5 + 4], %g3	! bad base register
	ld	[%g1 + + 4], %g3	! doubled operator
	ld	[%x9], %g3	! register-like token, no %x bank
	ld	[%g1 + 12], %g3
	nop
