! Unknown mnemonics interleaved with valid instructions: lenient
! parsing must drop exactly the bad lines and keep the rest.
.text
start:
	add	%g1, %g2, %g3
	addd	%g1, %g2, %g3	! no such mnemonic
	sub	%g3, 4, %g4
	mumble	%g4, %g5	! no such mnemonic
	ld	[%g4 + 8], %g5
	stw	%g5, [%g4 + 12]	! sparc v9 name, not in this dialect
	or	%g5, %g0, %g6
	frobnicate		! no such mnemonic
	nop
