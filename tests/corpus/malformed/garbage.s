! Byte salad: every non-comment line below is junk, but the parser
! must keep going, produce one diagnostic per line, and exit cleanly.
start:
<<<<<<< HEAD
=======
>>>>>>> branch
{"json": "not assembly"}
0x41414141 0x42424242
~~~~~~~~~~
	add add add add
	%g1, %g2, %g3
-----BEGIN CERTIFICATE-----
MIIBIjANBgkqhkiG9w0BAQEFAAOCAQ8AMIIBCgKCAQEA7
	nop
