! Register operands outside the SPARC-like namespace: bank letters
! that do not exist and indices past the end of a bank.
.text
typos:
	add	%q1, %g2, %g3	! no %q bank
	add	%g9, %g2, %g3	! %g stops at %g7
	add	%g1, %g2, %g3
	fadds	%f40, %f2, %f4	! %f stops at %f31
	fadds	%f0, %f2, %f4
	mov	%o8, %g5	! %o stops at %o7
	mov	%o1, %g5
	ld	[%i9 + 4], %g6	! %i stops at %i7
	ld	[%i1 + 4], %g6
	nop
