! Suspicious but well-formed: immediates outside the signed 13-bit
! field and doubly defined labels are warnings, not errors — every
! instruction here survives a lenient *and* a strict parse.
.text
top:
	add	%g1, 5000, %g2		! simm13 overflow: warning
	mov	-4097, %g3		! simm13 underflow: warning
	cmp	%g2, 123456		! simm13 overflow: warning
	ld	[%g1 + 8192], %g4	! offset overflow: warning
	st	%g4, [%g1 + 16]
	sethi	%hi(buf), %g5		! 22-bit field: no warning
	add	%g1, 4095, %g6		! boundary value: no warning
top:
	nop
