! Right mnemonic, wrong operand count: each bad line is one
! source-located diagnostic, the rest of the block still schedules.
.text
trunc:
	add	%g1, %g2	! add expects 3 operands
	add	%g1, %g2, %g3
	ld	[%g1]		! ld expects 2 operands
	ld	[%g1 + 4], %g4
	st	%g4		! st expects 2 operands
	st	%g4, [%g1 + 8]
	sethi	%hi(0x1000)	! sethi expects 2 operands
	sethi	%hi(0x1000), %g5
	cmp	%g5		! cmp expects 2 operands
	nop
