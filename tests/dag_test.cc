/**
 * @file
 * Tests of the Dag container: add_arc bookkeeping ('a'-class heuristic
 * slots), duplicate merging, transitive prevention via reachability
 * maps, level lists, and transitive-arc counting.
 */

#include <gtest/gtest.h>

#include "dag/dag.hh"
#include "support/logging.hh"
#include "ir/basic_block.hh"
#include "ir/parser.hh"

namespace sched91
{
namespace
{

struct Fixture
{
    Program prog;
    std::vector<BasicBlock> blocks;

    explicit Fixture(int n)
    {
        std::string text;
        for (int i = 0; i < n; ++i)
            text += "add %g1, %g2, %g3\n";
        prog = parseAssembly(text);
        blocks = partitionBlocks(prog);
    }

    BlockView view() { return BlockView(prog, blocks.at(0)); }
};

TEST(Dag, NodesMatchBlock)
{
    Fixture f(5);
    Dag dag(f.view());
    EXPECT_EQ(dag.size(), 5u);
    for (std::uint32_t i = 0; i < 5; ++i)
        EXPECT_EQ(dag.inst(i).index(), i);
}

TEST(Dag, AddArcUpdatesCounters)
{
    Fixture f(3);
    Dag dag(f.view());
    dag.addArc(0, 1, DepKind::RAW, 4, Resource::intReg(3));
    dag.addArc(0, 2, DepKind::RAW, 2, Resource::intReg(3));
    EXPECT_EQ(dag.numChildren(0), 2);
    EXPECT_EQ(dag.numParents(1), 1);
    EXPECT_EQ(dag.ann().sumDelaysToChildren[0], 6);
    EXPECT_EQ(dag.ann().maxDelayToChild[0], 4);
    EXPECT_EQ(dag.ann().sumDelaysFromParents[2], 2);
    EXPECT_EQ(dag.ann().maxDelayFromParents[2], 2);
}

TEST(Dag, InterlockWithChildFlag)
{
    Fixture f(3);
    Dag dag(f.view());
    dag.addArc(0, 1, DepKind::RAW, 1);
    EXPECT_FALSE(dag.ann().interlockWithChild[0]);
    dag.addArc(0, 2, DepKind::RAW, 2);
    EXPECT_TRUE(dag.ann().interlockWithChild[0]);
}

TEST(Dag, DuplicateKeepsMaxDelay)
{
    Fixture f(2);
    Dag dag(f.view());
    EXPECT_EQ(dag.addArc(0, 1, DepKind::WAR, 1), Dag::AddArcResult::Added);
    EXPECT_EQ(dag.addArc(0, 1, DepKind::RAW, 5),
              Dag::AddArcResult::Duplicate);
    EXPECT_EQ(dag.numArcs(), 1u);
    EXPECT_EQ(dag.arc(0).delay, 5);
    EXPECT_EQ(dag.arc(0).kind, DepKind::RAW);
    EXPECT_EQ(dag.duplicateCount(), 1u);
    // Counters reflect unique arcs only.
    EXPECT_EQ(dag.numChildren(0), 1);
}

TEST(Dag, DuplicateDetectionWithArcGroup)
{
    Fixture f(4);
    Dag dag(f.view());
    dag.beginArcGroup(3);
    dag.addArc(0, 3, DepKind::RAW, 2);
    dag.addArc(1, 3, DepKind::RAW, 2);
    EXPECT_EQ(dag.addArc(0, 3, DepKind::WAW, 1),
              Dag::AddArcResult::Duplicate);
    dag.beginArcGroup(2);
    dag.addArc(0, 2, DepKind::RAW, 1); // new pair, new group
    EXPECT_EQ(dag.numArcs(), 3u);
}

TEST(Dag, RootsAndLeaves)
{
    Fixture f(4);
    Dag dag(f.view());
    dag.addArc(0, 2, DepKind::RAW, 1);
    dag.addArc(1, 2, DepKind::RAW, 1);
    dag.addArc(2, 3, DepKind::RAW, 1);
    ArcIdxVec roots = dag.roots();
    ArcIdxVec leaves = dag.leaves();
    EXPECT_EQ(std::vector<std::uint32_t>(roots.begin(), roots.end()),
              (std::vector<std::uint32_t>{0, 1}));
    EXPECT_EQ(std::vector<std::uint32_t>(leaves.begin(), leaves.end()),
              (std::vector<std::uint32_t>{3}));
}

TEST(Dag, LevelsFromRoots)
{
    Fixture f(4);
    Dag dag(f.view());
    dag.setLevelOrigin(Dag::LevelOrigin::Roots);
    dag.addArc(0, 1, DepKind::RAW, 1);
    dag.addArc(1, 3, DepKind::RAW, 1);
    dag.addArc(2, 3, DepKind::RAW, 1);
    EXPECT_EQ(dag.level(0), 0);
    EXPECT_EQ(dag.level(1), 1);
    EXPECT_EQ(dag.level(2), 0);
    EXPECT_EQ(dag.level(3), 2);

    const auto &lists = dag.levelLists();
    ASSERT_EQ(lists.size(), 3u);
    auto list_vec = [&](std::size_t l) {
        return std::vector<std::uint32_t>(lists[l].begin(),
                                          lists[l].end());
    };
    EXPECT_EQ(list_vec(0), (std::vector<std::uint32_t>{0, 2}));
    EXPECT_EQ(list_vec(2), (std::vector<std::uint32_t>{3}));
}

TEST(Dag, LevelListsInvalidatedByLateArcs)
{
    // Interleave level-list queries with arc insertion: the flattened
    // lists are cached lazily, so every addArc (and recomputeLevels)
    // must drop the cache or a stale snapshot leaks out.
    Fixture f(4);
    Dag dag(f.view());
    dag.setLevelOrigin(Dag::LevelOrigin::Roots);
    dag.addArc(0, 1, DepKind::RAW, 1);

    const auto &first = dag.levelLists();
    ASSERT_EQ(first.size(), 2u);
    EXPECT_EQ(first[0].size(), 3u); // 0, 2, 3 at level 0

    // Late arcs deepen the graph; a stale cache would still say 2.
    dag.addArc(1, 3, DepKind::RAW, 1);
    dag.addArc(2, 3, DepKind::RAW, 1);
    const auto &lists = dag.levelLists();
    ASSERT_EQ(lists.size(), 3u);
    EXPECT_EQ(lists[0].size(), 2u); // 0, 2
    EXPECT_EQ(lists[1].size(), 1u); // 1
    EXPECT_EQ(lists[2].size(), 1u); // 3
    EXPECT_EQ(dag.level(3), 2);

    // recomputeLevels (used after late branch-anchoring arcs in
    // backward builds) must also invalidate.
    dag.recomputeLevels();
    const auto &again = dag.levelLists();
    ASSERT_EQ(again.size(), 3u);
    EXPECT_EQ(again[2].size(), 1u);
}

TEST(Dag, LevelsFromLeaves)
{
    Fixture f(3);
    Dag dag(f.view());
    dag.setLevelOrigin(Dag::LevelOrigin::Leaves);
    // Backward construction order: arcs from earlier nodes added last.
    dag.addArc(1, 2, DepKind::RAW, 1);
    dag.addArc(0, 1, DepKind::RAW, 1);
    EXPECT_EQ(dag.level(2), 0);
    EXPECT_EQ(dag.level(1), 1);
    EXPECT_EQ(dag.level(0), 2);
}

TEST(Dag, DescendantReachMaps)
{
    Fixture f(4);
    Dag dag(f.view());
    dag.enableReachMaps(ReachMode::Descendants);
    // Backward build order: children complete before parents.
    dag.addArc(2, 3, DepKind::RAW, 1);
    dag.addArc(1, 2, DepKind::RAW, 1);
    dag.addArc(0, 1, DepKind::RAW, 1);
    EXPECT_TRUE(dag.reachMap(0).test(3));
    EXPECT_TRUE(dag.reachMap(0).test(0)); // self
    EXPECT_FALSE(dag.reachMap(3).test(0));
    EXPECT_EQ(dag.reachMap(0).count(), 4u);
}

TEST(Dag, TransitivePreventionDescendants)
{
    Fixture f(3);
    Dag dag(f.view());
    dag.enableReachMaps(ReachMode::Descendants);
    dag.setPreventTransitive(true);
    dag.addArc(1, 2, DepKind::RAW, 4);
    dag.addArc(0, 1, DepKind::WAR, 1);
    // 0 already reaches 2 through 1: suppressed.
    EXPECT_EQ(dag.addArc(0, 2, DepKind::RAW, 20),
              Dag::AddArcResult::Suppressed);
    EXPECT_EQ(dag.numArcs(), 2u);
    EXPECT_EQ(dag.suppressedCount(), 1u);
}

TEST(Dag, TransitivePreventionAncestors)
{
    Fixture f(3);
    Dag dag(f.view());
    dag.enableReachMaps(ReachMode::Ancestors);
    dag.setPreventTransitive(true);
    // Forward build, most-recent-first arc insertion (Landskov).
    dag.addArc(0, 1, DepKind::WAR, 1);
    dag.addArc(1, 2, DepKind::RAW, 4);
    EXPECT_EQ(dag.addArc(0, 2, DepKind::RAW, 20),
              Dag::AddArcResult::Suppressed);
}

TEST(Dag, ComputeDescendantMapsMatchesMaintained)
{
    Fixture f(5);
    Dag dag(f.view());
    dag.enableReachMaps(ReachMode::Descendants);
    dag.addArc(3, 4, DepKind::RAW, 1);
    dag.addArc(2, 4, DepKind::RAW, 1);
    dag.addArc(1, 3, DepKind::RAW, 1);
    dag.addArc(0, 1, DepKind::RAW, 1);
    BitMatrix maps = dag.computeDescendantMaps();
    for (std::uint32_t i = 0; i < dag.size(); ++i)
        for (std::uint32_t j = 0; j < dag.size(); ++j)
            EXPECT_EQ(maps.row(i).test(j), dag.reachMap(i).test(j))
                << i << "->" << j;
}

TEST(Dag, CountTransitiveArcs)
{
    Fixture f(3);
    Dag dag(f.view());
    dag.addArc(0, 1, DepKind::WAR, 1);
    dag.addArc(1, 2, DepKind::RAW, 4);
    dag.addArc(0, 2, DepKind::RAW, 20); // transitive via 1
    EXPECT_EQ(dag.countTransitiveArcs(), 1u);
}

TEST(Dag, SelfArcPanics)
{
    Fixture f(2);
    Dag dag(f.view());
    EXPECT_THROW(dag.addArc(1, 1, DepKind::RAW, 1), PanicError);
}

} // namespace
} // namespace sched91
