/**
 * @file
 * Winnowing decision-statistics tests: the stats-collecting selection
 * path must pick identical schedules to the plain lexicographic path,
 * and the counters must account for every pick.
 */

#include <gtest/gtest.h>

#include "core/pipeline.hh"
#include "dag/table_forward.hh"
#include "heuristics/register_pressure.hh"
#include "heuristics/static_passes.hh"
#include "ir/parser.hh"
#include "machine/presets.hh"
#include "sched/list_scheduler.hh"
#include "workload/kernels.hh"

namespace sched91
{
namespace
{

TEST(DecisionStats, SameScheduleWithAndWithoutStats)
{
    MachineModel machine = sparcstation2();
    for (AlgorithmKind kind : publishedAlgorithms()) {
        AlgorithmSpec spec = algorithmSpec(kind);
        ListScheduler scheduler(spec.config, machine);
        for (const std::string &kernel : kernelNames()) {
            Program prog = kernelProgram(kernel);
            auto blocks = partitionBlocks(prog);
            for (const auto &bb : blocks) {
                BlockView block(prog, bb);
                auto build = [&]() {
                    Dag dag = TableForwardBuilder().build(
                        block, machine, BuildOptions{});
                    runAllStaticPasses(dag, PassImpl::ReverseWalk,
                                       spec.config.needsDescendants);
                    if (spec.config.needsRegisterPressure)
                        computeRegisterPressure(dag);
                    return dag;
                };
                Dag a = build();
                Dag b = build();
                Schedule plain = scheduler.run(a);
                DecisionStats stats;
                Schedule counted = scheduler.run(b, &stats);
                EXPECT_EQ(plain.order, counted.order)
                    << algorithmName(kind) << " on " << kernel;
            }
        }
    }
}

TEST(DecisionStats, CountersAccountForEveryPick)
{
    MachineModel machine = sparcstation2();
    AlgorithmSpec spec = algorithmSpec(AlgorithmKind::Krishnamurthy);
    ListScheduler scheduler(spec.config, machine);

    Program prog = kernelProgram("tomcatv");
    auto blocks = partitionBlocks(prog);
    DecisionStats stats;
    std::size_t nodes = 0;
    for (const auto &bb : blocks) {
        Dag dag = TableForwardBuilder().build(BlockView(prog, bb),
                                              machine, BuildOptions{});
        runAllStaticPasses(dag);
        scheduler.run(dag, &stats);
        nodes += bb.size();
    }
    EXPECT_EQ(stats.totalPicks, static_cast<long long>(nodes));
    long long accounted = stats.trivialPicks + stats.originalOrderTies;
    for (long long d : stats.decidedAtRank)
        accounted += d;
    EXPECT_EQ(accounted, stats.totalPicks);
    EXPECT_EQ(stats.decidedAtRank.size(), spec.config.ranking.size());
}

TEST(DecisionStats, EmptyRankingAllTies)
{
    Program prog = parseAssembly(
        "add %g1, 1, %g2\nadd %g3, 1, %g4\nadd %g5, 1, %g6\n");
    auto blocks = partitionBlocks(prog);
    MachineModel machine = sparcstation2();
    Dag dag = TableForwardBuilder().build(BlockView(prog, blocks[0]),
                                          machine, BuildOptions{});
    SchedulerConfig bare;
    DecisionStats stats;
    ListScheduler(bare, machine).run(dag, &stats);
    EXPECT_EQ(stats.totalPicks, 3);
    // The last pick has a single candidate left.
    EXPECT_EQ(stats.originalOrderTies, 2);
    EXPECT_EQ(stats.trivialPicks, 1);
}

TEST(SpillEstimator, ZeroWhenRegistersSuffice)
{
    Program prog = parseAssembly(
        "ld [%o0], %g1\n"
        "add %g1, 1, %g2\n"
        "st %g2, [%o1]\n");
    auto blocks = partitionBlocks(prog);
    Dag dag = TableForwardBuilder().build(BlockView(prog, blocks[0]),
                                          sparcstation2(),
                                          BuildOptions{});
    std::vector<std::uint32_t> order{0, 1, 2};
    EXPECT_EQ(estimateSpilledValues(dag, order, 8), 0);
}

TEST(SpillEstimator, CountsOverflow)
{
    // Four values live simultaneously; with 2 registers, two of them
    // spill.
    Program prog = parseAssembly(
        "ld [%o0+0], %l0\n"
        "ld [%o0+4], %l1\n"
        "ld [%o0+8], %l2\n"
        "ld [%o0+12], %l3\n"
        "add %l0, %l1, %l4\n"
        "add %l2, %l3, %l5\n"
        "add %l4, %l5, %l6\n");
    auto blocks = partitionBlocks(prog);
    Dag dag = TableForwardBuilder().build(BlockView(prog, blocks[0]),
                                          sparcstation2(),
                                          BuildOptions{});
    std::vector<std::uint32_t> order{0, 1, 2, 3, 4, 5, 6};
    // Live at the first add: l0..l3 plus %o0 (live-in) = 5 values.
    EXPECT_GT(estimateSpilledValues(dag, order, 2), 0);
    EXPECT_EQ(estimateSpilledValues(dag, order, 8), 0);
}

TEST(SpillEstimator, ScheduleSensitivity)
{
    // Interleaved load/use order needs fewer registers than
    // hoisted-loads order.
    Program prog = parseAssembly(
        "ld [%o0+0], %l0\n"
        "st %l0, [%o1+0]\n"
        "ld [%o0+4], %l1\n"
        "st %l1, [%o1+4]\n"
        "ld [%o0+8], %l2\n"
        "st %l2, [%o1+8]\n");
    auto blocks = partitionBlocks(prog);
    BuildOptions bopts;
    bopts.memPolicy = AliasPolicy::SymbolicExpr;
    Dag dag = TableForwardBuilder().build(BlockView(prog, blocks[0]),
                                          sparcstation2(), bopts);
    std::vector<std::uint32_t> seq{0, 1, 2, 3, 4, 5};
    std::vector<std::uint32_t> hoisted{0, 2, 4, 1, 3, 5};
    EXPECT_LE(estimateSpilledValues(dag, seq, 3),
              estimateSpilledValues(dag, hoisted, 3));
}

} // namespace
} // namespace sched91
