/**
 * @file
 * Branch delay-slot filler tests.
 */

#include <gtest/gtest.h>

#include "core/pipeline.hh"
#include "dag/table_forward.hh"
#include "ir/parser.hh"
#include "machine/presets.hh"
#include "sched/delay_slot.hh"
#include "workload/kernels.hh"

namespace sched91
{
namespace
{

TEST(DelaySlot, FillsWithIndependentInstruction)
{
    Program prog = parseAssembly(
        "ld [%o0], %g1\n"
        "add %g2, %g3, %g4\n" // independent of the branch condition
        "cmp %g1, 0\n"
        "bne out\n");
    auto blocks = partitionBlocks(prog);
    MachineModel machine = sparcstation2();
    Dag dag = TableForwardBuilder().build(BlockView(prog, blocks[0]),
                                          machine, BuildOptions{});
    Schedule sched = originalOrderSchedule(dag);
    DelaySlotResult r = fillBranchDelaySlot(dag, sched);
    ASSERT_TRUE(r.filled);
    EXPECT_EQ(r.filler, 1u); // the independent add
    EXPECT_EQ(sched.order.back(), 1u);
    EXPECT_EQ(sched.order[sched.order.size() - 2], 3u); // branch
    EXPECT_TRUE(isValidModuloDelaySlot(dag, sched.order));
    EXPECT_FALSE(isValidTopologicalOrder(dag, sched.order));
}

TEST(DelaySlot, RefusesWhenEverythingFeedsBranch)
{
    Program prog = parseAssembly(
        "ld [%o0], %g1\n"
        "cmp %g1, 0\n"
        "bne out\n");
    auto blocks = partitionBlocks(prog);
    MachineModel machine = sparcstation2();
    Dag dag = TableForwardBuilder().build(BlockView(prog, blocks[0]),
                                          machine, BuildOptions{});
    Schedule sched = originalOrderSchedule(dag);
    DelaySlotResult r = fillBranchDelaySlot(dag, sched);
    EXPECT_FALSE(r.filled);
    EXPECT_EQ(sched.order.back(), 2u);
}

TEST(DelaySlot, NoBranchNoFill)
{
    Program prog = parseAssembly(
        "add %g1, 1, %g2\n"
        "add %g2, 1, %g3\n");
    auto blocks = partitionBlocks(prog);
    MachineModel machine = sparcstation2();
    Dag dag = TableForwardBuilder().build(BlockView(prog, blocks[0]),
                                          machine, BuildOptions{});
    Schedule sched = originalOrderSchedule(dag);
    EXPECT_FALSE(fillBranchDelaySlot(dag, sched).filled);
}

TEST(DelaySlot, WorksAfterHeuristicScheduling)
{
    Program prog = kernelProgram("daxpy");
    auto blocks = partitionBlocks(prog);
    MachineModel machine = sparcstation2();
    PipelineOptions opts;
    opts.algorithm = AlgorithmKind::Krishnamurthy;
    auto result = scheduleBlock(BlockView(prog, blocks[0]), machine,
                                opts);
    DelaySlotResult r = fillBranchDelaySlot(result.dag, result.sched);
    ASSERT_TRUE(r.filled);
    EXPECT_TRUE(isValidModuloDelaySlot(result.dag, result.sched.order));
}

TEST(DelaySlot, PicksLatestScheduledCandidate)
{
    Program prog = parseAssembly(
        "add %g2, 1, %g4\n"   // candidate A
        "add %g3, 1, %g5\n"   // candidate B (scheduled later)
        "cmp %g1, 0\n"
        "bne out\n");
    auto blocks = partitionBlocks(prog);
    MachineModel machine = sparcstation2();
    Dag dag = TableForwardBuilder().build(BlockView(prog, blocks[0]),
                                          machine, BuildOptions{});
    Schedule sched = originalOrderSchedule(dag);
    DelaySlotResult r = fillBranchDelaySlot(dag, sched);
    ASSERT_TRUE(r.filled);
    EXPECT_EQ(r.filler, 1u);
}

} // namespace
} // namespace sched91
