/**
 * @file
 * Differential oracle tests (fuzz/differential.hh): the pinned
 * random-program sweep the acceptance harness runs in CI, plus the
 * reducer.
 *
 * The sweep is the executable form of the paper's equivalence claim:
 * for every generated program, the n**2 and table builders agree on
 * the transitively-closed dependence relation, the static heuristics
 * agree node-for-node, and all seven algorithms produce schedules the
 * independent verifier accepts over all three DAGs.
 */

#include <gtest/gtest.h>

#include <array>
#include <string>

#include "fuzz/differential.hh"
#include "fuzz/program_gen.hh"
#include "machine/machine_model.hh"

namespace sched91
{
namespace
{

constexpr std::array<AliasPolicy, 4> kPolicies = {
    AliasPolicy::SerializeAll,
    AliasPolicy::BaseOffset,
    AliasPolicy::StorageClassed,
    AliasPolicy::SymbolicExpr,
};

/** Deterministic parameter schedule covering the knob space. */
fuzz::GenParams
sweepParams(std::uint64_t i)
{
    fuzz::GenParams p;
    p.seed = 0x5eed0000 + i;
    p.numBlocks = 1 + static_cast<int>(i % 3);
    p.maxBlockSize = 4 + static_cast<int>(i % 28);
    p.fpMix = (i % 5) / 10.0;
    p.memMix = (i % 7) / 10.0;
    p.storeBias = 0.5;
    p.branchProb = (i % 4) / 3.0;
    p.intRegPool = 2 + static_cast<int>(i % 10);
    p.fpRegPool = 2 + static_cast<int>(i % 6);
    p.memExprPool = 1 + static_cast<int>(i % 6);
    p.symbolMix = (i % 3) / 4.0;
    p.bigImmMix = (i % 10 == 0) ? 0.3 : 0.0;
    // Every fourth program is syntax-corrupted: the oracle then also
    // exercises lenient parsing and checks whatever survived.
    p.corruption = (i % 4 == 3) ? 0.15 : 0.0;
    return p;
}

TEST(Differential, PinnedThousandProgramSweep)
{
    MachineModel machine;
    std::size_t blocks = 0, schedules = 0;
    for (std::uint64_t i = 0; i < 1000; ++i) {
        fuzz::GenParams p = sweepParams(i);
        std::string src = fuzz::generateSource(p);
        fuzz::OracleOptions opts;
        opts.memPolicy = kPolicies[i % kPolicies.size()];
        fuzz::OracleReport report =
            fuzz::checkSource(src, machine, opts);
        ASSERT_TRUE(report.ok)
            << "sweep program " << i << ": " << report.failure << "\n"
            << src;
        blocks += report.blocksChecked;
        schedules += report.schedulesChecked;
    }
    // The sweep must actually exercise the pipeline, not vacuously
    // pass over empty programs.
    EXPECT_GT(blocks, 1000u);
    EXPECT_GT(schedules, 21000u);
}

TEST(Differential, ReportsCountsOnCleanProgram)
{
    fuzz::GenParams p;
    p.seed = 42;
    p.numBlocks = 2;
    MachineModel machine;
    fuzz::OracleReport report =
        fuzz::checkSource(fuzz::generateSource(p), machine);
    EXPECT_TRUE(report.ok) << report.failure;
    EXPECT_EQ(report.blocksChecked, 2u);
    // 7 algorithms x 3 builders per block.
    EXPECT_EQ(report.schedulesChecked, report.blocksChecked * 21u);
    EXPECT_TRUE(report.failure.empty());
}

TEST(Differential, EmptySourceIsVacuouslyOk)
{
    MachineModel machine;
    fuzz::OracleReport report = fuzz::checkSource("", machine);
    EXPECT_TRUE(report.ok);
    EXPECT_EQ(report.blocksChecked, 0u);
}

// --- Reducer -------------------------------------------------------

TEST(Differential, MinimizeLinesShrinksToCulpritLines)
{
    std::string source;
    for (int i = 0; i < 32; ++i)
        source += "line" + std::to_string(i) + "\n";
    source += "BUG\n";
    for (int i = 32; i < 64; ++i)
        source += "line" + std::to_string(i) + "\n";

    auto predicate = [](const std::string &candidate) {
        return candidate.find("BUG") != std::string::npos;
    };
    std::string reduced = fuzz::minimizeLines(source, predicate);
    EXPECT_EQ(reduced, "BUG\n");
}

TEST(Differential, MinimizeLinesKeepsInteractingPair)
{
    // Two lines that only fail together: ddmin must keep both.
    std::string source = "aaa\nFIRST\nbbb\nccc\nSECOND\nddd\n";
    auto predicate = [](const std::string &candidate) {
        return candidate.find("FIRST") != std::string::npos &&
               candidate.find("SECOND") != std::string::npos;
    };
    std::string reduced = fuzz::minimizeLines(source, predicate);
    EXPECT_EQ(reduced, "FIRST\nSECOND\n");
}

TEST(Differential, MinimizeLinesRespectsCheckBudget)
{
    std::string source;
    for (int i = 0; i < 64; ++i)
        source += "x\n";
    int calls = 0;
    auto predicate = [&](const std::string &) {
        ++calls;
        return true; // everything "fails": reducer drives to minimum
    };
    std::string reduced = fuzz::minimizeLines(source, predicate, 16);
    EXPECT_LE(calls, 16);
    EXPECT_FALSE(reduced.empty());
}

TEST(Differential, MinimizeOperandsDropsTrailingOperands)
{
    // Line-level ddmin cannot shrink a single culprit line; the
    // operand pass peels trailing operands as long as the failure
    // reproduces, leaving a strictly smaller repro.
    std::string source = "add %r1, %r2, %r3\nBUG %x, %y\n";
    auto predicate = [](const std::string &candidate) {
        return candidate.find("BUG") != std::string::npos;
    };
    std::string reduced = fuzz::minimizeOperands(source, predicate);
    EXPECT_EQ(reduced, "add %r1\nBUG %x\n");
    EXPECT_LT(reduced.size(), source.size());
}

TEST(Differential, MinimizeOperandsKeepsLoadBearingOperand)
{
    std::string source = "add %r1, %r2, %r3\n";
    auto predicate = [](const std::string &candidate) {
        return candidate.find("%r3") != std::string::npos;
    };
    std::string reduced = fuzz::minimizeOperands(source, predicate);
    EXPECT_EQ(reduced, source) << "dropping %r3 no longer fails";
}

TEST(Differential, MinimizeOperandsRespectsCheckBudget)
{
    std::string source;
    for (int i = 0; i < 32; ++i)
        source += "op a, b, c, d, e, f, g, h\n";
    int calls = 0;
    auto predicate = [&](const std::string &) {
        ++calls;
        return true;
    };
    fuzz::minimizeOperands(source, predicate, 12);
    EXPECT_LE(calls, 12);
}

TEST(Differential, LineThenOperandPassesCompose)
{
    // The minimizeSource pipeline order: whole-line ddmin first, then
    // trailing-operand trimming on the survivors.
    std::string source =
        "aaa 1, 2\nBUG %x, %y, %z\nbbb 3, 4\nccc 5, 6\n";
    auto predicate = [](const std::string &candidate) {
        return candidate.find("BUG") != std::string::npos;
    };
    std::string reduced = fuzz::minimizeOperands(
        fuzz::minimizeLines(source, predicate), predicate);
    EXPECT_EQ(reduced, "BUG %x\n")
        << "lines dropped first, then trailing operands";
}

} // namespace
} // namespace sched91
