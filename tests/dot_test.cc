/**
 * @file
 * DOT export tests.
 */

#include <gtest/gtest.h>

#include "dag/dot_export.hh"
#include "dag/table_forward.hh"
#include "heuristics/static_passes.hh"
#include "ir/parser.hh"
#include "machine/presets.hh"
#include "workload/kernels.hh"

namespace sched91
{
namespace
{

TEST(DotExport, ContainsNodesAndArcs)
{
    Program prog = figure1Program();
    auto blocks = partitionBlocks(prog);
    Dag dag = TableForwardBuilder().build(BlockView(prog, blocks[0]),
                                          figure1Machine(),
                                          BuildOptions{});
    std::string dot = toDot(dag);
    EXPECT_NE(dot.find("digraph dag"), std::string::npos);
    EXPECT_NE(dot.find("n0 ["), std::string::npos);
    EXPECT_NE(dot.find("n0 -> n2"), std::string::npos);
    EXPECT_NE(dot.find("RAW 20"), std::string::npos);
    EXPECT_NE(dot.find("WAR 1"), std::string::npos);
    EXPECT_EQ(dot.back(), '\n');
}

TEST(DotExport, HeuristicAnnotations)
{
    Program prog = figure1Program();
    auto blocks = partitionBlocks(prog);
    Dag dag = TableForwardBuilder().build(BlockView(prog, blocks[0]),
                                          figure1Machine(),
                                          BuildOptions{});
    runAllStaticPasses(dag);
    DotOptions opts;
    opts.showHeuristics = true;
    std::string dot = toDot(dag, opts);
    EXPECT_NE(dot.find("d2l=20"), std::string::npos);
    EXPECT_NE(dot.find("slk="), std::string::npos);
}

TEST(DotExport, EscapesQuotes)
{
    Program prog = parseAssembly("add %g1, 1, %g2\n");
    auto blocks = partitionBlocks(prog);
    Dag dag = TableForwardBuilder().build(BlockView(prog, blocks[0]),
                                          sparcstation2(),
                                          BuildOptions{});
    std::string dot = toDot(dag);
    // No stray unescaped quotes inside labels (parse sanity).
    EXPECT_EQ(std::count(dot.begin(), dot.end(), '"') % 2, 0);
}

TEST(DotExport, ControlArcsGray)
{
    Program prog = parseAssembly(
        "add %g1, 1, %g2\ncmp %g3, 0\nbne x\n");
    auto blocks = partitionBlocks(prog);
    Dag dag = TableForwardBuilder().build(BlockView(prog, blocks[0]),
                                          sparcstation2(),
                                          BuildOptions{});
    std::string dot = toDot(dag);
    EXPECT_NE(dot.find("color=gray"), std::string::npos);
}

} // namespace
} // namespace sched91
