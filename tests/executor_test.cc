/**
 * @file
 * Functional executor tests: per-opcode semantics and determinism.
 */

#include <gtest/gtest.h>

#include "ir/basic_block.hh"
#include "ir/parser.hh"
#include "sim/executor.hh"

namespace sched91
{
namespace
{

ExecState
run(const char *text, std::uint64_t seed = 7)
{
    Program prog = parseAssembly(text);
    auto blocks = partitionBlocks(prog);
    std::vector<std::uint32_t> order(blocks[0].size());
    for (std::uint32_t i = 0; i < order.size(); ++i)
        order[i] = i;
    return runBlock(BlockView(prog, blocks[0]), order, seed);
}

TEST(Executor, IntegerArithmetic)
{
    ExecState s = run(
        "mov 6, %g1\n"
        "mov 7, %g2\n"
        "add %g1, %g2, %g3\n"
        "sub %g1, %g2, %g4\n"
        "and %g1, %g2, %g5\n"
        "or  %g1, %g2, %g6\n"
        "xor %g1, %g2, %g7\n");
    EXPECT_EQ(s.intRegs[3], 13);
    EXPECT_EQ(s.intRegs[4], -1);
    EXPECT_EQ(s.intRegs[5], 6);
    EXPECT_EQ(s.intRegs[6], 7);
    EXPECT_EQ(s.intRegs[7], 1);
}

TEST(Executor, Shifts)
{
    ExecState s = run(
        "mov 1, %g1\n"
        "sll %g1, 4, %g2\n"
        "mov -16, %g3\n"
        "sra %g3, 2, %g4\n");
    EXPECT_EQ(s.intRegs[2], 16);
    EXPECT_EQ(s.intRegs[4], -4);
}

TEST(Executor, ZeroRegisterStaysZero)
{
    ExecState s = run("add %g1, %g2, %g0\n");
    EXPECT_EQ(s.intRegs[0], 0);
}

TEST(Executor, ConditionCodes)
{
    ExecState s = run("mov 5, %g1\ncmp %g1, 5\n");
    EXPECT_TRUE(s.icc.z);
    EXPECT_FALSE(s.icc.n);

    s = run("mov 3, %g1\ncmp %g1, 5\n");
    EXPECT_FALSE(s.icc.z);
    EXPECT_TRUE(s.icc.n);
}

TEST(Executor, StoreLoadRoundTrip)
{
    ExecState s = run(
        "mov 1234, %g1\n"
        "st %g1, [%fp-8]\n"
        "ld [%fp-8], %g2\n");
    EXPECT_EQ(s.intRegs[2], 1234);
}

TEST(Executor, ByteAndHalfwordAccess)
{
    ExecState s = run(
        "mov 0x1ff, %g1\n"
        "stb %g1, [%fp-4]\n"
        "ldub [%fp-4], %g2\n"
        "ldsb [%fp-4], %g3\n");
    EXPECT_EQ(s.intRegs[2], 0xff);
    EXPECT_EQ(s.intRegs[3], -1);
}

TEST(Executor, UnwrittenMemoryIsDeterministic)
{
    ExecState a = run("ld [%fp-64], %g1\n", 99);
    ExecState b = run("ld [%fp-64], %g1\n", 99);
    EXPECT_EQ(a.intRegs[1], b.intRegs[1]);

    ExecState c = run("ld [%fp-64], %g1\n", 100);
    EXPECT_NE(a.intRegs[1], c.intRegs[1]); // seed-dependent
}

TEST(Executor, FpDoubleArithmetic)
{
    ExecState s = run(
        "mov 0, %g1\n"
        "st %g1, [%fp-8]\n"
        "st %g1, [%fp-4]\n"
        "lddf [%fp-8], %f4\n"    // +0.0
        "faddd %f4, %f4, %f6\n"  // +0.0
        "fcmpd %f4, %f6\n");
    EXPECT_EQ(s.fcc, 0);
}

TEST(Executor, FpStoreLoadRoundTrip)
{
    ExecState s = run(
        "stdf %f0, [%fp-16]\n"
        "lddf [%fp-16], %f8\n");
    EXPECT_EQ(s.fpRegs[8], s.fpRegs[0]);
    EXPECT_EQ(s.fpRegs[9], s.fpRegs[1]);
}

TEST(Executor, DoubleWordIntStoreLoad)
{
    ExecState s = run(
        "mov 17, %g2\n"
        "mov 99, %g3\n"
        "std %g2, [%fp-32]\n"
        "ldd [%fp-32], %g4\n");
    EXPECT_EQ(s.intRegs[4], 17);
    EXPECT_EQ(s.intRegs[5], 99);
}

TEST(Executor, SethiBuildsHighBits)
{
    ExecState s = run("sethi 0x3f, %g1\n");
    EXPECT_EQ(s.intRegs[1], 0x3f << 10);
}

TEST(Executor, CallClobbersDeterministically)
{
    ExecState a = run("call f\n", 5);
    ExecState b = run("call f\n", 5);
    EXPECT_EQ(a.intRegs[8], b.intRegs[8]);
    EXPECT_EQ(a.intRegs[15], 0); // %o7 = call's program index
}

TEST(Executor, SymbolAddressesDisjointFromStack)
{
    // Stores to a static symbol and a stack slot must not collide.
    ExecState s = run(
        "mov 1, %g1\n"
        "mov 2, %g2\n"
        "st %g1, [counter]\n"
        "st %g2, [%fp-4]\n"
        "ld [counter], %g3\n"
        "ld [%fp-4], %g4\n");
    EXPECT_EQ(s.intRegs[3], 1);
    EXPECT_EQ(s.intRegs[4], 2);
}

TEST(Executor, DistinctSymbolsDistinctAddresses)
{
    ExecState s = run(
        "mov 1, %g1\n"
        "mov 2, %g2\n"
        "st %g1, [alpha]\n"
        "st %g2, [beta]\n"
        "ld [alpha], %g3\n");
    EXPECT_EQ(s.intRegs[3], 1);
}

TEST(Executor, LdxStxRoundTrip64Bits)
{
    // stx/ldx preserve full 64-bit values (the spill path relies on
    // this; a 32-bit st would truncate the executor's wide values).
    ExecState s = run(
        "sethi 0x12345, %g1\n"
        "sll %g1, 30, %g2\n"   // push bits past 32
        "add %g2, 77, %g2\n"
        "stx %g2, [%fp-48]\n"
        "ldx [%fp-48], %g3\n");
    EXPECT_EQ(s.intRegs[3], s.intRegs[2]);
    EXPECT_GT(static_cast<std::uint64_t>(s.intRegs[2]), 0xffffffffULL);
}

TEST(Executor, StTruncatesTo32Bits)
{
    ExecState s = run(
        "sethi 0x12345, %g1\n"
        "sll %g1, 30, %g2\n"
        "st %g2, [%fp-48]\n"
        "ld [%fp-48], %g3\n");
    EXPECT_EQ(s.intRegs[3],
              static_cast<std::int64_t>(
                  static_cast<std::uint32_t>(s.intRegs[2])));
}

TEST(Executor, SmulSetsY)
{
    ExecState s = run(
        "mov 10, %g1\n"
        "mov 20, %g2\n"
        "smul %g1, %g2, %g3\n");
    EXPECT_EQ(s.intRegs[3], 200);
}

TEST(Executor, FpConversions)
{
    // fitod/fdtos/fstoi round-trip an integer through double and
    // single precision (integer bits enter the FP file via memory).
    ExecState t = run(
        "mov 9, %g1\n"
        "st %g1, [%fp-8]\n"
        "ld [%fp-8], %f3\n"   // raw int bits into %f3
        "fitod %f3, %f4\n"    // -> 9.0 (double in %f4:%f5)
        "fdtos %f4, %f6\n"    // -> 9.0f
        "fstoi %f6, %f7\n"    // -> raw int 9
        "st %f7, [%fp-16]\n"
        "ld [%fp-16], %g5\n");
    EXPECT_EQ(t.intRegs[5], 9);
}

TEST(Executor, FpNegAbsMove)
{
    ExecState s = run(
        "mov 5, %g1\n"
        "st %g1, [%fp-8]\n"
        "ld [%fp-8], %f2\n"
        "fitos %f2, %f3\n"    // 5.0f
        "fnegs %f3, %f4\n"    // -5.0f
        "fabss %f4, %f5\n"    // 5.0f
        "fmovs %f5, %f6\n"
        "fcmps %f3, %f6\n");
    EXPECT_EQ(s.fcc, 0);
}

TEST(Executor, SdivByZeroIsDefined)
{
    ExecState s = run(
        "mov 10, %g1\n"
        "mov 0, %g2\n"
        "sdiv %g1, %g2, %g3\n");
    EXPECT_EQ(s.intRegs[3], 10); // divisor forced to 1
}

} // namespace
} // namespace sched91
