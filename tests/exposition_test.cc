/**
 * @file
 * Prometheus text exposition (obs/exposition.hh): metric-name
 * mangling, label escaping, `# TYPE` metadata, kind-aware counter vs
 * gauge export, and cumulative histogram bucket series — pinned by a
 * golden document so any format drift is a conscious choice.
 */

#include <gtest/gtest.h>

#include <string>

#include "obs/counters.hh"
#include "obs/exposition.hh"
#include "obs/histogram.hh"

using namespace sched91;

TEST(Exposition, MetricNamesAreManglesIntoOneNamespace)
{
    EXPECT_EQ(obs::promMetricName("svc.request_ns"),
              "sched91_svc_request_ns");
    EXPECT_EQ(obs::promMetricName("dag.arcs"), "sched91_dag_arcs");
    // Colons and underscores are legal and survive; anything else
    // collapses to '_'.
    EXPECT_EQ(obs::promMetricName("a:b_c"), "sched91_a:b_c");
    EXPECT_EQ(obs::promMetricName("odd name-1%"),
              "sched91_odd_name_1_");
    EXPECT_EQ(obs::promMetricName(""), "sched91_");
}

TEST(Exposition, LabelValuesEscapeOnlyWhatTheFormatDefines)
{
    EXPECT_EQ(obs::promEscapeLabel("mips-like"), "mips-like");
    EXPECT_EQ(obs::promEscapeLabel("a\"b"), "a\\\"b");
    EXPECT_EQ(obs::promEscapeLabel("a\\b"), "a\\\\b");
    EXPECT_EQ(obs::promEscapeLabel("a\nb"), "a\\nb");
    // Other control characters pass through untouched — the format
    // only defines the three escapes above.
    EXPECT_EQ(obs::promEscapeLabel("a\tb"), "a\tb");
}

TEST(Exposition, CounterKindSelectsCounterVersusGauge)
{
    obs::CounterRegistry registry;
    registry.add("svc.requests", obs::CounterKind::Sum);
    registry.add("pool.max_live", obs::CounterKind::Max);

    obs::CounterSet set;
    set.set("svc.requests", 5);
    set.set("pool.max_live", 9);

    obs::PromDoc doc;
    doc.counters = &set;
    doc.registry = &registry;
    std::string text = obs::prometheusExposition(doc);

    EXPECT_NE(text.find("# TYPE sched91_pool_max_live gauge\n"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE sched91_svc_requests counter\n"),
              std::string::npos);
    EXPECT_NE(text.find("sched91_pool_max_live 9\n"),
              std::string::npos);
    EXPECT_NE(text.find("sched91_svc_requests 5\n"),
              std::string::npos);

    // Without a registry every counter defaults to Prometheus
    // counter.
    doc.registry = nullptr;
    text = obs::prometheusExposition(doc);
    EXPECT_NE(text.find("# TYPE sched91_pool_max_live counter\n"),
              std::string::npos);
}

TEST(Exposition, HistogramBucketsAreCumulativeAndClosed)
{
    obs::HistogramSet hists;
    obs::Histogram &h = hists.get("lat.ns");
    h.record(1);   // bucket hi = 1
    h.record(3);   // bucket hi = 3
    h.record(100); // bucket hi = 127
    h.record(100);

    obs::PromDoc doc;
    doc.histograms = &hists;
    const std::string text = obs::prometheusExposition(doc);

    const std::string expected =
        "# TYPE sched91_lat_ns histogram\n"
        "sched91_lat_ns_bucket{le=\"1\"} 1\n"
        "sched91_lat_ns_bucket{le=\"3\"} 2\n"
        "sched91_lat_ns_bucket{le=\"127\"} 4\n"
        "sched91_lat_ns_bucket{le=\"+Inf\"} 4\n"
        "sched91_lat_ns_sum 204\n"
        "sched91_lat_ns_count 4\n";
    EXPECT_EQ(text, expected);
}

TEST(Exposition, GoldenDocumentWithLabels)
{
    obs::CounterRegistry registry;
    registry.add("svc.requests_ok", obs::CounterKind::Sum);

    obs::CounterSet set;
    set.set("svc.requests_ok", 3);

    obs::HistogramSet hists;
    hists.get("svc.queue_wait_ns").record(7); // bucket hi = 7

    obs::PromDoc doc;
    doc.counters = &set;
    doc.registry = &registry;
    doc.histograms = &hists;
    doc.gauges.push_back({"svc.queue_depth", 2.0});
    doc.gauges.push_back({"svc.uptime_seconds", 1.5});
    doc.labels.emplace_back("machine", "mips\"8\"");

    // One golden string covering every family type, label escaping,
    // sample ordering (counters, gauges, histograms), and the integer
    // vs float value formatting rule.
    const std::string expected =
        "# TYPE sched91_svc_requests_ok counter\n"
        "sched91_svc_requests_ok{machine=\"mips\\\"8\\\"\"} 3\n"
        "# TYPE sched91_svc_queue_depth gauge\n"
        "sched91_svc_queue_depth{machine=\"mips\\\"8\\\"\"} 2\n"
        "# TYPE sched91_svc_uptime_seconds gauge\n"
        "sched91_svc_uptime_seconds{machine=\"mips\\\"8\\\"\"} 1.5\n"
        "# TYPE sched91_svc_queue_wait_ns histogram\n"
        "sched91_svc_queue_wait_ns_bucket{machine=\"mips\\\"8\\\"\","
        "le=\"7\"} 1\n"
        "sched91_svc_queue_wait_ns_bucket{machine=\"mips\\\"8\\\"\","
        "le=\"+Inf\"} 1\n"
        "sched91_svc_queue_wait_ns_sum{machine=\"mips\\\"8\\\"\"} 7\n"
        "sched91_svc_queue_wait_ns_count{machine=\"mips\\\"8\\\"\"} "
        "1\n";
    EXPECT_EQ(obs::prometheusExposition(doc), expected);
}

TEST(Exposition, EmptyDocumentRendersEmpty)
{
    obs::PromDoc doc;
    EXPECT_EQ(obs::prometheusExposition(doc), "");
}
