/**
 * @file
 * End-to-end reproduction of the paper's Figure 1 argument
 * (conclusion 3): removing transitive arcs mis-computes timing
 * heuristics and can produce measurably worse schedules, while the
 * table-building methods "retain this kind of arc".
 */

#include <gtest/gtest.h>

#include "core/pipeline.hh"
#include "dag/builder.hh"
#include "dag/n2_forward.hh"
#include "dag/table_backward.hh"
#include "dag/table_forward.hh"
#include "heuristics/dynamic.hh"
#include "heuristics/static_passes.hh"
#include "ir/basic_block.hh"
#include "ir/parser.hh"
#include "machine/presets.hh"
#include "sched/pipeline_sim.hh"
#include "workload/kernels.hh"

namespace sched91
{
namespace
{

Dag
buildFigure1(BuilderKind kind, Program &prog)
{
    prog = figure1Program();
    auto blocks = partitionBlocks(prog);
    Dag dag = makeBuilder(kind)->build(BlockView(prog, blocks[0]),
                                       figure1Machine(), BuildOptions{});
    runAllStaticPasses(dag);
    return dag;
}

TEST(Figure1, TableComputesCorrectTimingHeuristics)
{
    Program prog;
    Dag dag = buildFigure1(BuilderKind::TableForward, prog);
    // "sum of arc weights from node 1 to 3" — the retained transitive
    // arc makes the divide's delay-to-leaf the full 20 cycles.
    EXPECT_EQ(dag.ann().maxDelayToLeaf[0], 20);
    // Node-latency EST ([12]) is conservative through the WAR path:
    // EST(2) = EST(1) + lat(1) = 20 + 4.
    EXPECT_EQ(dag.ann().earliestStart[2], 24);
}

TEST(Figure1, LandskovMiscomputesTimingHeuristics)
{
    Program prog;
    Dag dag = buildFigure1(BuilderKind::N2Landskov, prog);
    // Without the transitive arc the WAR-then-RAW path (1 + 4) is all
    // that remains: the divide's delay-to-leaf collapses from 20 to 5.
    EXPECT_EQ(dag.ann().maxDelayToLeaf[0], 5);
}

TEST(Figure1, EarliestExecutionTimeWrongWithoutTransitiveArc)
{
    // Dynamic heuristic: after scheduling the divide at cycle 0, node
    // 3's earliest execution time must be 20, not 5.
    MachineModel machine = figure1Machine();

    auto eet_after_schedule = [&machine](BuilderKind kind) {
        Program prog = figure1Program();
        auto blocks = partitionBlocks(prog);
        Dag dag = makeBuilder(kind)->build(BlockView(prog, blocks[0]),
                                           machine, BuildOptions{});
        initDynamicState(dag);
        onScheduledForward(dag, 0, 0);
        onScheduledForward(dag, 1, 1);
        return dag.ann().earliestExecTime[2];
    };

    EXPECT_EQ(eet_after_schedule(BuilderKind::TableForward), 20);
    EXPECT_EQ(eet_after_schedule(BuilderKind::N2Landskov), 5);
}

TEST(Figure1, PrunedDagMisleadsSchedulerOnRealCode)
{
    // On a kernel with a long divide chain, schedules built from the
    // timing-blind Landskov DAG must never beat (and typically trail)
    // those built from the table DAG when both are measured against
    // the true machine timing.
    MachineModel machine = sparcstation2();
    Program prog = kernelProgram("tomcatv");
    auto blocks = partitionBlocks(prog);
    BlockView block(prog, blocks[0]);

    PipelineOptions table_opts;
    table_opts.builder = BuilderKind::TableForward;
    table_opts.algorithm = AlgorithmKind::Krishnamurthy;
    auto table_result = scheduleBlock(block, machine, table_opts);

    PipelineOptions pruned_opts = table_opts;
    pruned_opts.builder = BuilderKind::N2Landskov;
    auto pruned_result = scheduleBlock(block, machine, pruned_opts);

    Dag gt = TableForwardBuilder().build(block, machine, BuildOptions{});
    int table_cycles =
        simulateSchedule(gt, table_result.sched.order, machine).cycles;
    int pruned_cycles =
        simulateSchedule(gt, pruned_result.sched.order, machine).cycles;
    EXPECT_LE(table_cycles, pruned_cycles);
}

TEST(Figure1, BackwardTableRetainsArcEvenWithPrevention)
{
    // "The table building methods discussed above will retain this
    // kind of arc": in the backward table build, definitions are
    // processed before uses, so the 20-cycle RAW arc 1->3 is inserted
    // before the WAR arc 1->2 completes the bypass path — reach-map
    // prevention never sees it as transitive.
    Program prog = figure1Program();
    auto blocks = partitionBlocks(prog);
    BuildOptions opts;
    opts.preventTransitive = true;
    Dag dag = TableBackwardBuilder().build(BlockView(prog, blocks[0]),
                                           figure1Machine(), opts);
    EXPECT_EQ(dag.numArcs(), 3u);
    runAllStaticPasses(dag);
    EXPECT_EQ(dag.ann().maxDelayToLeaf[0], 20);
}

TEST(Figure1, PreventionOnN2BackwardLosesArc)
{
    // A compare-against-all backward scan with reach-map prevention
    // (the Section 2 pseudocode) does suppress the arc: when node 1 is
    // compared against its successors in ascending order, the WAR arc
    // to node 2 lands first and makes node 3 reachable.
    Program prog = figure1Program();
    auto blocks = partitionBlocks(prog);
    BuildOptions opts;
    opts.preventTransitive = true;
    Dag dag = N2BackwardBuilder().build(BlockView(prog, blocks[0]),
                                        figure1Machine(), opts);
    EXPECT_EQ(dag.numArcs(), 2u);
    // One suppression per dependent register of the pair (f4 and f5).
    EXPECT_GE(dag.suppressedCount(), 1u);
}

} // namespace
} // namespace sched91
