/**
 * @file
 * Forensics-layer tests (docs/FORENSICS.md): the leveled logger's
 * threshold/sink/replay contract, the flight recorder's ring and
 * merged-dump determinism, the deterministic top-K outlier tracker's
 * ordering and merge algebra, and the pipeline-level guarantees —
 * outlier capture and decision traces byte-identical at every thread
 * count, with the traced schedule unchanged.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/pipeline.hh"
#include "machine/presets.hh"
#include "obs/counters.hh"
#include "obs/emitter.hh"
#include "obs/flight_recorder.hh"
#include "obs/json_parse.hh"
#include "obs/outliers.hh"
#include "support/log.hh"
#include "workload/generator.hh"
#include "workload/kernels.hh"

namespace sched91
{
namespace
{

namespace flight = obs::flight;

// ---------------------------------------------------------------------
// Leveled logger
// ---------------------------------------------------------------------

/** Restores threshold + sink and leaves the layer quiet. */
class LogStateGuard
{
  public:
    LogStateGuard() : saved_(log::threshold()) {}
    ~LogStateGuard()
    {
        log::setThreshold(saved_);
        log::setSink(nullptr);
    }

  private:
    log::Level saved_;
};

/** Run @p body with the sink redirected to a temp file; returns what
 * it wrote. */
template <typename Fn>
std::string
captureSink(Fn &&body)
{
    std::FILE *f = std::tmpfile();
    EXPECT_NE(f, nullptr);
    log::setSink(f);
    body();
    log::setSink(nullptr);
    std::fflush(f);
    std::rewind(f);
    std::string out;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        out.append(buf, n);
    std::fclose(f);
    return out;
}

TEST(Log, LevelNamesAndParse)
{
    EXPECT_EQ(log::levelName(log::Level::Error), "error");
    EXPECT_EQ(log::levelName(log::Level::Debug), "debug");
    EXPECT_EQ(log::parseLevel("warn"), log::Level::Warn);
    EXPECT_EQ(log::parseLevel("warning"), log::Level::Warn);
    EXPECT_EQ(log::parseLevel("info"), log::Level::Info);
    EXPECT_THROW(log::parseLevel("loud"), FatalError);
}

TEST(Log, ThresholdGatesDirectWrites)
{
    LogStateGuard guard;
    log::setThreshold(log::Level::Warn);
    std::string out = captureSink([] {
        log::error("e1");
        log::warn("w1");
        log::info("i1");  // above threshold: dropped
        log::debug("d1"); // above threshold: dropped
    });
    EXPECT_EQ(out, "e1\nw1\n");

    log::setThreshold(log::Level::Debug);
    out = captureSink([] {
        log::info("i2");
        log::debug("d2");
    });
    EXPECT_EQ(out, "i2\nd2\n");
}

TEST(Log, BufferedReplayIsBlockOrdered)
{
    LogStateGuard guard;
    log::setThreshold(log::Level::Info);

    // Two lanes, interleaved blocks (0,2 vs 1,3) — replay must come
    // out in block order regardless of which lane held which block.
    log::LogBuffer lane_a, lane_b;
    {
        log::ScopedLogBuffer scope(&lane_a);
        log::info("pre"); // blockKey 0: before any block
        lane_a.setBlock(0);
        log::info("b0.first");
        log::info("b0.second");
        lane_a.setBlock(2);
        log::info("b2");
    }
    {
        log::ScopedLogBuffer scope(&lane_b);
        lane_b.setBlock(1);
        log::info("b1");
        lane_b.setBlock(3);
        log::info("b3");
    }
    std::string out = captureSink([&] {
        log::replay({&lane_a, &lane_b});
    });
    EXPECT_EQ(out, "pre\nb0.first\nb0.second\nb1\nb2\nb3\n");

    std::string swapped = captureSink([&] {
        log::replay({&lane_b, &lane_a});
    });
    EXPECT_EQ(swapped, out) << "replay order is lane-independent";
}

TEST(Log, BufferStillRespectsThreshold)
{
    LogStateGuard guard;
    log::setThreshold(log::Level::Warn);
    log::LogBuffer buf;
    {
        log::ScopedLogBuffer scope(&buf);
        log::warn("kept");
        log::debug("dropped at the call site");
    }
    ASSERT_EQ(buf.records().size(), 1u);
    EXPECT_EQ(buf.records()[0].text, "kept");
}

// ---------------------------------------------------------------------
// Flight recorder
// ---------------------------------------------------------------------

/** Enables the recorder for the test body, then disables and resets. */
class FlightGuard
{
  public:
    FlightGuard()
    {
        flight::setEnabled(true);
        flight::beginRun();
    }
    ~FlightGuard()
    {
        flight::setEnabled(false);
        flight::beginRun();
    }
};

TEST(FlightRecorder, RingKeepsNewestEvents)
{
    flight::Recorder rec;
    rec.reset();
    rec.setBlock(7);
    for (int i = 0; i < 300; ++i)
        rec.record(flight::EventKind::PhaseEnd, "t", "",
                   static_cast<std::uint64_t>(i));
    EXPECT_EQ(rec.total(), 300u);
    ASSERT_EQ(rec.kept(), flight::kRingCapacity);
    // Oldest kept is event #44 (300 - 256), newest is #299.
    EXPECT_EQ(rec.keptAt(0).a, 44u);
    EXPECT_EQ(rec.keptAt(0).seq, 44u);
    EXPECT_EQ(rec.keptAt(flight::kRingCapacity - 1).a, 299u);
    EXPECT_EQ(rec.keptAt(0).blockKey, 8u) << "block 7 keys as 8";
}

TEST(FlightRecorder, TagAndDetailAreSanitizedForRawEmission)
{
    flight::Recorder rec;
    rec.reset();
    rec.record(flight::EventKind::Diag, "a\"b\\c",
               std::string("x\"y\\z\x01\n") + "w");
    ASSERT_EQ(rec.kept(), 1u);
    const flight::Event &ev = rec.keptAt(0);
    // The dump emits these inside JSON strings with no escaping pass,
    // so quotes, backslashes, and control bytes must already be gone.
    for (const char *p = ev.tag; *p; ++p)
        EXPECT_TRUE(*p >= 0x20 && *p != '"' && *p != '\\')
            << "tag byte " << int(*p);
    for (const char *p = ev.detail; *p; ++p)
        EXPECT_TRUE(*p >= 0x20 && *p != '"' && *p != '\\')
            << "detail byte " << int(*p);
    EXPECT_EQ(std::string(ev.tag), "a_b_c");
}

TEST(FlightRecorder, DisabledRecordsNothing)
{
    flight::setEnabled(false);
    flight::beginRun();
    flight::Recorder *rec = flight::claim();
    ASSERT_NE(rec, nullptr);
    flight::ScopedRecorder scope(rec);
    flight::record(flight::EventKind::RunBegin, "run");
    EXPECT_EQ(rec->total(), 0u);
    flight::beginRun();
}

/** Record the same logical run split across @p lanes recorders (the
 * main recorder keeps run begin/end; blocks round-robin over lanes,
 * each lane's blocks ascending — the pipeline's invariant). */
std::string
dumpSyntheticRun(int lanes, int blocks, int eventsPerBlock)
{
    flight::beginRun();
    flight::Recorder *main_rec = flight::claim();
    std::vector<flight::Recorder *> lane_recs;
    for (int l = 0; l < lanes; ++l)
        lane_recs.push_back(flight::claim());

    {
        flight::ScopedRecorder scope(main_rec);
        flight::record(flight::EventKind::RunBegin, "run", "",
                       static_cast<std::uint64_t>(blocks));
    }
    for (int l = 0; l < lanes; ++l) {
        flight::ScopedRecorder scope(lane_recs[static_cast<std::size_t>(l)]);
        for (int b = l; b < blocks; b += lanes) {
            flight::setBlock(static_cast<std::uint64_t>(b));
            for (int e = 0; e < eventsPerBlock; ++e)
                flight::record(flight::EventKind::PhaseEnd, "phase",
                               "detail", static_cast<std::uint64_t>(b),
                               static_cast<std::uint64_t>(e));
        }
    }
    {
        flight::ScopedRecorder scope(main_rec);
        flight::setPostRun();
        flight::record(flight::EventKind::RunEnd, "run");
    }
    flight::setGauge(flight::Gauge::BlocksTotal,
                     static_cast<std::uint64_t>(blocks));
    flight::setGauge(flight::Gauge::BlocksDone,
                     static_cast<std::uint64_t>(blocks));

    flight::DumpInfo info;
    info.crashed = true;
    info.reason = "test";
    info.zeroTimes = true;
    return flight::dumpJson(info);
}

TEST(FlightRecorder, DumpIsLaneCountInvariant)
{
    FlightGuard guard;
    // 10 blocks x 4 events: everything fits in one ring.
    std::string one = dumpSyntheticRun(1, 10, 4);
    std::string four = dumpSyntheticRun(4, 10, 4);
    EXPECT_EQ(one, four);

    // 20 blocks x 40 events = 800 > kRingCapacity: the single ring
    // evicts, the split rings keep everything; the merged newest-256
    // tail must still be identical (an evicted event can never be in
    // the global tail).
    std::string one_full = dumpSyntheticRun(1, 20, 40);
    std::string three_full = dumpSyntheticRun(3, 20, 40);
    EXPECT_EQ(one_full, three_full);
    EXPECT_NE(one, one_full);
}

TEST(FlightRecorder, DumpParsesAndCarriesGaugesAndTail)
{
    FlightGuard guard;
    std::string doc = dumpSyntheticRun(2, 20, 40);

    obs::JsonValue v = obs::parseJson(doc);
    EXPECT_EQ(v.numberOr("sched91_flight", 0), 1);
    EXPECT_TRUE(v.at("crashed").boolean());
    EXPECT_EQ(v.at("reason").str(), "test");
    // 800 block events + run begin/end were recorded in total...
    EXPECT_EQ(v.numberOr("events_total", 0), 802);
    // ...but the dump tail is capped at one ring's worth.
    const obs::JsonValue::Array &events = v.at("events").array();
    ASSERT_EQ(events.size(), flight::kRingCapacity);
    // The tail is (block, seq)-sorted and ends with the post-run
    // RunEnd event (block -2 in the document encoding).
    double prev_block = -3, prev_seq = -1;
    for (const obs::JsonValue &ev : events) {
        double blk = ev.numberOr("block", -99);
        double seq = ev.numberOr("seq", -1);
        if (blk == prev_block)
            EXPECT_GT(seq, prev_seq);
        else if (blk != -2) // -2 (post-run) sorts after every block
            EXPECT_GT(blk, prev_block);
        prev_block = blk;
        prev_seq = seq;
        EXPECT_EQ(ev.numberOr("ns", -1), 0) << "zeroTimes zeroes ns";
    }
    EXPECT_EQ(events.back().at("kind").str(), "run_end");
    EXPECT_EQ(v.at("memory").numberOr("blocks_total", 0), 20);
    EXPECT_EQ(v.at("memory").numberOr("blocks_done", 0), 20);
}

TEST(FlightRecorder, DumpTruncatesWholeEventsOnSmallBuffers)
{
    FlightGuard guard;
    std::string full = dumpSyntheticRun(1, 4, 4);
    // Any budget must still yield a NUL-terminated prefix no longer
    // than the cap; generous budgets yield the full document.
    char buf[256];
    flight::DumpInfo info;
    info.crashed = true;
    info.reason = "test";
    info.zeroTimes = true;
    std::size_t n = flight::dumpJsonTo(buf, sizeof(buf), info);
    EXPECT_LE(n, sizeof(buf));
    EXPECT_EQ(std::strlen(buf), n == sizeof(buf) ? n - 1 : n);
}

// ---------------------------------------------------------------------
// Outlier tracker
// ---------------------------------------------------------------------

obs::OutlierRecord
rec(std::size_t block, std::uint64_t score)
{
    obs::OutlierRecord r;
    r.block = block;
    r.score = score;
    return r;
}

TEST(OutlierTracker, KeepsTopKScoreDescBlockAsc)
{
    obs::OutlierTracker t(3);
    t.insert(rec(5, 10));
    t.insert(rec(1, 30));
    t.insert(rec(9, 20));
    t.insert(rec(2, 20)); // ties 20: lower block outranks
    t.insert(rec(7, 5));  // below the cut once full

    ASSERT_EQ(t.size(), 3u);
    EXPECT_EQ(t.ranked()[0].block, 1u);
    EXPECT_EQ(t.ranked()[1].block, 2u);
    EXPECT_EQ(t.ranked()[2].block, 9u);

    EXPECT_FALSE(t.admits(10, 5)) << "score below the kept minimum";
    EXPECT_TRUE(t.admits(25, 5));
    EXPECT_TRUE(t.admits(20, 0)) << "tie admitted for a lower block";
    EXPECT_FALSE(t.admits(20, 42)) << "tie rejected for a higher block";

    std::vector<obs::OutlierRecord> by_block = t.byBlock();
    EXPECT_EQ(by_block[0].block, 1u);
    EXPECT_EQ(by_block[1].block, 2u);
    EXPECT_EQ(by_block[2].block, 9u);
}

TEST(OutlierTracker, LaneMergeEqualsGlobalTracker)
{
    // 12 blocks dealt round-robin to 3 lanes vs. inserted into one
    // global tracker: the merge must keep exactly the global top-K.
    const std::uint64_t scores[12] = {7, 93, 12, 55, 55, 3,
                                      88, 21, 55, 40, 2, 67};
    obs::OutlierTracker global(4);
    obs::OutlierTracker lanes[3] = {obs::OutlierTracker(4),
                                    obs::OutlierTracker(4),
                                    obs::OutlierTracker(4)};
    for (std::size_t b = 0; b < 12; ++b) {
        global.insert(rec(b, scores[b]));
        lanes[b % 3].insert(rec(b, scores[b]));
    }
    obs::OutlierTracker merged(4);
    for (const obs::OutlierTracker &lane : lanes)
        merged.merge(lane);

    ASSERT_EQ(merged.size(), global.size());
    for (std::size_t i = 0; i < global.size(); ++i) {
        EXPECT_EQ(merged.ranked()[i].block, global.ranked()[i].block);
        EXPECT_EQ(merged.ranked()[i].score, global.ranked()[i].score);
    }
    EXPECT_EQ(merged.ranked()[0].score, 93u);
}

// ---------------------------------------------------------------------
// Pipeline integration: capture + explain determinism
// ---------------------------------------------------------------------

/** Enables counting for the body and restores the disabled default. */
class ObsGuard
{
  public:
    ObsGuard() { obs::setEnabled(true); }
    ~ObsGuard() { obs::setEnabled(false); }
};

ProgramResult
runCapture(unsigned threads, int k)
{
    Program prog = cachedProgram("linpack");
    PipelineOptions opts;
    opts.threads = threads;
    opts.captureOutliers = k;
    return runPipeline(prog, sparcstation2(), opts);
}

TEST(PipelineForensics, OutlierCaptureIsThreadCountInvariant)
{
    ObsGuard guard;
    ProgramResult one = runCapture(1, 4);
    ProgramResult four = runCapture(4, 4);

    ASSERT_EQ(one.outliers.size(), 4u);
    ASSERT_EQ(four.outliers.size(), one.outliers.size());

    obs::RunMeta meta;
    meta.command = "test";
    obs::EmitOptions emit;
    emit.zeroTimes = true; // wall-clock seconds may differ; bytes must not
    for (std::size_t i = 0; i < one.outliers.size(); ++i) {
        EXPECT_EQ(obs::outlierBundleJson(one.outliers[i], meta, emit),
                  obs::outlierBundleJson(four.outliers[i], meta, emit));
    }
    EXPECT_EQ(obs::renderOutliers(one.outliers),
              obs::renderOutliers(four.outliers));

    // Captured records carry enough forensics to be useful.
    for (const obs::OutlierRecord &r : one.outliers) {
        EXPECT_GT(r.score, 0u);
        EXPECT_GT(r.size, 0u);
        EXPECT_FALSE(r.source.empty());
        EXPECT_FALSE(r.counters.empty());
    }
}

TEST(PipelineForensics, DecisionTraceMatchesScheduleAndIsDeterministic)
{
    Program prog = kernelProgram("daxpy");
    PipelineOptions plain;
    plain.evaluate = true;
    ProgramResult base = runPipeline(prog, sparcstation2(), plain);

    PipelineOptions explain = plain;
    explain.explainBlock = 0;
    ProgramResult traced = runPipeline(prog, sparcstation2(), explain);
    ASSERT_FALSE(traced.decisions.empty());
    const DecisionTrace &trace = traced.decisions;

    // Tracing must not change what gets scheduled.
    EXPECT_EQ(traced.cyclesScheduled, base.cyclesScheduled);

    EXPECT_EQ(trace.block, 0);
    EXPECT_FALSE(trace.algorithm.empty());
    ASSERT_FALSE(trace.insts.empty());
    const DecisionStats &stats = trace.stats;
    ASSERT_EQ(stats.log.size(),
              static_cast<std::size_t>(stats.totalPicks));
    EXPECT_EQ(trace.insts.size(), stats.log.size())
        << "one pick per instruction in the block";
    const std::int32_t num_ranks =
        static_cast<std::int32_t>(trace.rankNames.size());
    for (std::size_t i = 0; i < stats.log.size(); ++i) {
        const DecisionRecord &r = stats.log[i];
        EXPECT_EQ(r.pick, static_cast<std::uint32_t>(i));
        EXPECT_GE(r.readySize, 1u);
        EXPECT_LT(r.node, trace.insts.size());
        EXPECT_GE(r.decidedRank, DecisionStats::kDecidedTrivial);
        EXPECT_LT(r.decidedRank, num_ranks);
        if (r.readySize == 1)
            EXPECT_EQ(r.decidedRank, DecisionStats::kDecidedTrivial);
    }

    // Same trace at another thread count, rendered byte-identically.
    explain.threads = 4;
    ProgramResult threaded = runPipeline(prog, sparcstation2(), explain);
    ASSERT_FALSE(threaded.decisions.empty());
    EXPECT_EQ(obs::renderDecisionTrace(threaded.decisions),
              obs::renderDecisionTrace(trace));
}

TEST(PipelineForensics, ExplainBlockOutOfRangeYieldsEmptyTrace)
{
    Program prog = kernelProgram("daxpy");
    PipelineOptions opts;
    opts.explainBlock = 9999;
    ProgramResult r = runPipeline(prog, sparcstation2(), opts);
    EXPECT_TRUE(r.decisions.empty());
}

} // namespace
} // namespace sched91
