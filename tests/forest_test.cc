/**
 * @file
 * DAG forest tests (paper Section 2: "A basic block may result in a
 * collection of one or more DAGs, called a forest").
 */

#include <gtest/gtest.h>

#include "dag/dag_stats.hh"
#include "dag/table_forward.hh"
#include "ir/parser.hh"
#include "machine/presets.hh"

namespace sched91
{
namespace
{

Dag
build(const char *text, bool anchor = false)
{
    static Program prog; // keep the BlockView's referent alive
    prog = parseAssembly(text);
    auto blocks = partitionBlocks(prog);
    BuildOptions opts;
    opts.anchorBranch = anchor;
    return TableForwardBuilder().build(BlockView(prog, blocks.at(0)),
                                       sparcstation2(), opts);
}

TEST(Forest, IndependentChainsAreSeparateTrees)
{
    Dag dag = build(
        "ld [%o0], %g1\n"
        "add %g1, 1, %g2\n"
        "ld [%o1], %g3\n"
        "add %g3, 1, %g4\n");
    EXPECT_EQ(dag.countForestTrees(), 2u);
}

TEST(Forest, FullyConnectedBlockIsOneTree)
{
    Dag dag = build(
        "ld [%o0], %g1\n"
        "add %g1, 1, %g2\n"
        "st %g2, [%o0]\n");
    EXPECT_EQ(dag.countForestTrees(), 1u);
}

TEST(Forest, IsolatedNodesCountAsTrees)
{
    Dag dag = build(
        "add %g1, 1, %g2\n"
        "add %g3, 1, %g4\n"
        "add %g5, 1, %g6\n");
    EXPECT_EQ(dag.countForestTrees(), 3u);
}

TEST(Forest, BranchAnchorJoinsTheForest)
{
    const char *text =
        "add %g1, 1, %g2\n"
        "add %g3, 1, %g4\n"
        "cmp %g5, 0\n"
        "bne out\n";
    Dag unanchored = build(text, /*anchor=*/false);
    EXPECT_EQ(unanchored.countForestTrees(), 3u);
    Dag anchored = build(text, /*anchor=*/true);
    EXPECT_EQ(anchored.countForestTrees(), 1u);
}

TEST(Forest, StatsAccumulateTrees)
{
    Dag dag = build(
        "add %g1, 1, %g2\n"
        "add %g3, 1, %g4\n");
    DagStructure stats;
    stats.accumulate(dag);
    EXPECT_DOUBLE_EQ(stats.treesPerBlock.avg(), 2.0);
}

} // namespace
} // namespace sched91
