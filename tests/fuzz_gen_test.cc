/**
 * @file
 * Random program generator tests (fuzz/program_gen.hh): determinism,
 * parameter clamping, and parseability of the clean output.
 */

#include <gtest/gtest.h>

#include <array>
#include <string>

#include "fuzz/program_gen.hh"
#include "ir/basic_block.hh"
#include "ir/parser.hh"
#include "support/diagnostics.hh"

namespace sched91
{
namespace
{

TEST(ProgramGen, SameSeedIsByteIdentical)
{
    fuzz::GenParams p;
    p.seed = 0xfeedULL;
    p.numBlocks = 4;
    p.corruption = 0.2;
    EXPECT_EQ(fuzz::generateSource(p), fuzz::generateSource(p));
}

TEST(ProgramGen, DifferentSeedsDiffer)
{
    fuzz::GenParams a, b;
    a.seed = 1;
    b.seed = 2;
    EXPECT_NE(fuzz::generateSource(a), fuzz::generateSource(b));
}

TEST(ProgramGen, SanitizeClampsEveryKnob)
{
    fuzz::GenParams p;
    p.numBlocks = -5;
    p.maxBlockSize = 100000;
    p.fpMix = 7.0;
    p.memMix = -1.0;
    p.storeBias = 2.0;
    p.branchProb = -0.5;
    p.intRegPool = 0;
    p.fpRegPool = 999;
    p.memExprPool = -3;
    p.symbolMix = 1e9;
    p.bigImmMix = -2.0;
    p.corruption = 3.0;
    fuzz::GenParams s = fuzz::sanitizeParams(p);
    EXPECT_EQ(s.numBlocks, 1);
    EXPECT_EQ(s.maxBlockSize, 256);
    EXPECT_EQ(s.fpMix, 1.0);
    EXPECT_EQ(s.memMix, 0.0);
    EXPECT_EQ(s.storeBias, 1.0);
    EXPECT_EQ(s.branchProb, 0.0);
    EXPECT_EQ(s.intRegPool, 1);
    EXPECT_EQ(s.memExprPool, 1);
    EXPECT_EQ(s.symbolMix, 1.0);
    EXPECT_EQ(s.bigImmMix, 0.0);
    EXPECT_EQ(s.corruption, 1.0);
}

TEST(ProgramGen, UncorruptedOutputParsesClean)
{
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        fuzz::GenParams p;
        p.seed = seed;
        p.numBlocks = 3;
        p.corruption = 0.0;
        p.bigImmMix = 0.0;
        std::string src = fuzz::generateSource(p);
        DiagnosticEngine diags;
        Program prog = parseAssembly(src, diags, "<gen>");
        EXPECT_EQ(diags.errorCount(), 0u)
            << "seed " << seed << ":\n"
            << diags.render() << src;
        EXPECT_GT(prog.size(), 0u);
    }
}

TEST(ProgramGen, CorruptedOutputStaysRecoverable)
{
    // Corruption produces diagnostics, never a lenient-parse throw.
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        fuzz::GenParams p;
        p.seed = seed;
        p.numBlocks = 3;
        p.corruption = 0.5;
        std::string src = fuzz::generateSource(p);
        DiagnosticEngine::Options dopts;
        dopts.maxErrors = 0;
        DiagnosticEngine diags(dopts);
        EXPECT_NO_THROW(parseAssembly(src, diags, "<gen>"))
            << "seed " << seed;
    }
}

TEST(ProgramGen, BigImmMixTriggersWarnings)
{
    fuzz::GenParams p;
    p.seed = 7;
    p.numBlocks = 4;
    p.maxBlockSize = 64;
    p.memMix = 0.0;
    p.fpMix = 0.0;
    p.bigImmMix = 1.0;
    std::string src = fuzz::generateSource(p);
    DiagnosticEngine diags;
    parseAssembly(src, diags, "<gen>");
    EXPECT_EQ(diags.errorCount(), 0u) << diags.render();
    EXPECT_GT(diags.warningCount(), 0u) << src;
}

TEST(ProgramGen, ParamsFromBytesIsDeterministicAndClamped)
{
    std::array<std::uint8_t, 24> bytes{};
    for (std::size_t i = 0; i < bytes.size(); ++i)
        bytes[i] = static_cast<std::uint8_t>(0xa0 + 5 * i);

    fuzz::GenParams a = fuzz::paramsFromBytes(bytes.data(), bytes.size());
    fuzz::GenParams b = fuzz::paramsFromBytes(bytes.data(), bytes.size());
    EXPECT_EQ(a.seed, b.seed);
    EXPECT_EQ(fuzz::generateSource(a), fuzz::generateSource(b));

    EXPECT_GE(a.numBlocks, 1);
    EXPECT_LE(a.numBlocks, 16);
    EXPECT_GE(a.maxBlockSize, 1);
    EXPECT_LE(a.maxBlockSize, 256);
    EXPECT_GE(a.corruption, 0.0);
    EXPECT_LE(a.corruption, 1.0);

    // Short and empty inputs are fine too.
    EXPECT_NO_THROW(fuzz::paramsFromBytes(nullptr, 0));
    EXPECT_NO_THROW(fuzz::paramsFromBytes(bytes.data(), 3));
}

} // namespace
} // namespace sched91
