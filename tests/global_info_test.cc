/**
 * @file
 * Cross-block inherited-latency tests (paper Section 2 / future work:
 * "operation latencies inherited from immediately preceding blocks").
 */

#include <gtest/gtest.h>

#include "core/pipeline.hh"
#include "dag/table_forward.hh"
#include "ir/parser.hh"
#include "machine/presets.hh"
#include "heuristics/dynamic.hh"
#include "sched/global_info.hh"
#include "sched/list_scheduler.hh"
#include "sched/pipeline_sim.hh"

namespace sched91
{
namespace
{

struct TwoBlocks
{
    Program prog;
    std::vector<BasicBlock> blocks;
    MachineModel machine = sparcstation2();

    explicit TwoBlocks(const char *text) : prog(parseAssembly(text))
    {
        blocks = partitionBlocks(prog);
    }

    BlockView view(std::size_t i) { return BlockView(prog, blocks[i]); }
};

TEST(GlobalInfo, OutgoingLatencyOfTrailingDivide)
{
    // Block 0 ends with a divide: its destination settles 19 cycles
    // into the next block.
    TwoBlocks t(
        "add %g1, 1, %g2\n"
        "fdivd %f0, %f2, %f4\n"
        "next:\n"
        "faddd %f4, %f6, %f8\n");
    PipelineOptions opts;
    auto b0 = scheduleBlock(t.view(0), t.machine, opts);

    InheritedLatencies out = computeOutgoingLatencies(
        b0.dag, b0.sched, t.machine);
    EXPECT_TRUE(out.any());
    // The divide issues last (cycle 1): settles at 21; next issue slot
    // is 2; carried latency = 19.
    EXPECT_EQ(out.ready[Resource::fpReg(4).slot()], 19);
    EXPECT_EQ(out.ready[Resource::intReg(2).slot()], 0); // settled
}

TEST(GlobalInfo, AppliedFloorsRaiseEet)
{
    TwoBlocks t(
        "fdivd %f0, %f2, %f4\n"
        "next:\n"
        "faddd %f4, %f6, %f8\n"
        "add %g1, 1, %g2\n");
    PipelineOptions opts;
    auto b0 = scheduleBlock(t.view(0), t.machine, opts);
    InheritedLatencies out =
        computeOutgoingLatencies(b0.dag, b0.sched, t.machine);

    Dag dag1 = TableForwardBuilder().build(t.view(1), t.machine,
                                           BuildOptions{});
    applyInheritedLatencies(dag1, out);
    EXPECT_GT(dag1.ann().inheritedEet[0], 0);  // uses %f4
    EXPECT_EQ(dag1.ann().inheritedEet[1], 0);  // independent

    initDynamicState(dag1);
    EXPECT_EQ(dag1.ann().earliestExecTime[0],
              dag1.ann().inheritedEet[0]);
}

TEST(GlobalInfo, AwareSchedulerHidesCarriedLatency)
{
    // Block 1 starts with a consumer of block 0's trailing divide plus
    // independent work.  A latency-aware scheduler defers the consumer;
    // a local scheduler (original order) eats the stall.
    TwoBlocks t(
        "fdivd %f0, %f2, %f4\n"
        "next:\n"
        "faddd %f4, %f6, %f8\n"
        "ld [%o0+0], %l0\n"
        "add %l0, 1, %l1\n"
        "st %l1, [%o1+0]\n"
        "ld [%o0+4], %l2\n"
        "add %l2, 1, %l3\n"
        "st %l3, [%o1+4]\n");
    PipelineOptions opts;
    auto b0 = scheduleBlock(t.view(0), t.machine, opts);
    InheritedLatencies carried =
        computeOutgoingLatencies(b0.dag, b0.sched, t.machine);
    ASSERT_TRUE(carried.any());

    // Local scheduling: ignore the carried latency.
    PipelineOptions kopts;
    kopts.algorithm = AlgorithmKind::Krishnamurthy;
    auto local = scheduleBlock(t.view(1), t.machine, kopts);

    // Global-aware: same algorithm, but with inherited floors.
    Dag aware_dag = TableForwardBuilder().build(t.view(1), t.machine,
                                                BuildOptions{});
    runAllStaticPasses(aware_dag);
    applyInheritedLatencies(aware_dag, carried);
    ListScheduler scheduler(
        algorithmSpec(AlgorithmKind::Krishnamurthy).config, t.machine);
    Schedule aware = scheduler.run(aware_dag);

    // Measure both under the true carried-latency timing.
    Dag gt = TableForwardBuilder().build(t.view(1), t.machine,
                                         BuildOptions{});
    std::vector<int> ready = inheritedReadyTimes(gt, carried);
    int local_cycles =
        simulateSchedule(gt, local.sched.order, t.machine, &ready)
            .cycles;
    int aware_cycles =
        simulateSchedule(gt, aware.order, t.machine, &ready).cycles;
    EXPECT_LE(aware_cycles, local_cycles);

    // And the aware schedule cannot be worse than original order.
    int naive_cycles =
        simulateSchedule(gt, originalOrderSchedule(gt).order, t.machine,
                         &ready)
            .cycles;
    EXPECT_LT(aware_cycles, naive_cycles);
}

TEST(GlobalInfo, FixupRespectsInheritedFloors)
{
    // Regression: the postpass fixup and the final timing pass must
    // treat inherited floors like dependence arcs — Krishnamurthy's
    // fixup once pulled a carried-latency consumer back into the
    // stall it was deferred past.
    TwoBlocks t(
        "fdivd %f0, %f2, %f4\n"
        "next:\n"
        "faddd %f4, %f6, %f8\n"
        "ld [%o0], %l0\n"
        "add %l0, 1, %l1\n"
        "st %l1, [%o1]\n");
    PipelineOptions opts;
    auto b0 = scheduleBlock(t.view(0), t.machine, opts);
    InheritedLatencies carried =
        computeOutgoingLatencies(b0.dag, b0.sched, t.machine);

    Dag dag = TableForwardBuilder().build(t.view(1), t.machine,
                                          BuildOptions{});
    runAllStaticPasses(dag);
    applyInheritedLatencies(dag, carried);
    // Krishnamurthy includes the postpass fixup.
    ListScheduler scheduler(
        algorithmSpec(AlgorithmKind::Krishnamurthy).config, t.machine);
    Schedule sched = scheduler.run(dag);

    // The %f4 consumer (node 0) must be scheduled last, at its floor.
    EXPECT_EQ(sched.order.back(), 0u);
    EXPECT_GE(sched.issueCycle.back(),
              dag.ann().inheritedEet[0]);
}

TEST(GlobalInfo, NoCarriedLatencyIsNeutral)
{
    TwoBlocks t(
        "add %g1, 1, %g2\n"
        "next:\n"
        "add %g2, 1, %g3\n");
    PipelineOptions opts;
    auto b0 = scheduleBlock(t.view(0), t.machine, opts);
    InheritedLatencies out =
        computeOutgoingLatencies(b0.dag, b0.sched, t.machine);
    EXPECT_FALSE(out.any());
}

} // namespace
} // namespace sched91
