/**
 * @file
 * Heuristic tests: Table 1 metadata completeness, the static
 * forward/backward passes (both the level-list and reverse-walk
 * implementations — conclusion 4 says they must agree), slack
 * invariants, #descendants popcounts, dynamic uncovering heuristics,
 * and register pressure.
 */

#include <gtest/gtest.h>

#include "dag/builder.hh"
#include "dag/table_backward.hh"
#include "dag/table_forward.hh"
#include "heuristics/dynamic.hh"
#include "heuristics/heuristic.hh"
#include "heuristics/register_pressure.hh"
#include "heuristics/static_passes.hh"
#include "ir/basic_block.hh"
#include "ir/parser.hh"
#include "machine/presets.hh"
#include "workload/kernels.hh"

namespace sched91
{
namespace
{

Dag
buildKernelDag(const std::string &kernel, Program &prog,
               BuilderKind kind = BuilderKind::TableForward)
{
    prog = kernelProgram(kernel);
    auto blocks = partitionBlocks(prog);
    return makeBuilder(kind)->build(BlockView(prog, blocks.at(0)),
                                    sparcstation2(), BuildOptions{});
}

TEST(Table1, TwentySixHeuristics)
{
    EXPECT_EQ(allHeuristics().size(), 26u);
}

TEST(Table1, CategoryCounts)
{
    // Table 1 rows per category: 4 stall, 2 class, 7 critical path,
    // 5 uncovering, 4 structural, 4 register usage.
    std::map<HeuristicCategory, int> counts;
    for (const auto &h : allHeuristics())
        ++counts[h.category];
    EXPECT_EQ(counts[HeuristicCategory::StallBehavior], 4);
    EXPECT_EQ(counts[HeuristicCategory::InstructionClass], 2);
    EXPECT_EQ(counts[HeuristicCategory::CriticalPath], 7);
    EXPECT_EQ(counts[HeuristicCategory::Uncovering], 5);
    EXPECT_EQ(counts[HeuristicCategory::Structural], 4);
    EXPECT_EQ(counts[HeuristicCategory::RegisterUsage], 4);
}

TEST(Table1, PassLegend)
{
    EXPECT_EQ(heuristicInfo(Heuristic::MaxPathToLeaf).pass,
              CalcPass::Backward);
    EXPECT_EQ(heuristicInfo(Heuristic::MaxPathFromRoot).pass,
              CalcPass::Forward);
    EXPECT_EQ(heuristicInfo(Heuristic::Slack).pass,
              CalcPass::ForwardBackward);
    EXPECT_EQ(heuristicInfo(Heuristic::NumChildren).pass, CalcPass::AddArc);
    EXPECT_EQ(heuristicInfo(Heuristic::EarliestExecutionTime).pass,
              CalcPass::Visitation);
}

TEST(Table1, TransitiveSensitivityMarks)
{
    // The ** entries of Table 1.
    for (Heuristic h : {Heuristic::EarliestExecutionTime,
                        Heuristic::InterlockWithChild,
                        Heuristic::EarliestStartTime,
                        Heuristic::LatestStartTime, Heuristic::Slack,
                        Heuristic::NumChildren, Heuristic::DelaysToChildren,
                        Heuristic::NumParents,
                        Heuristic::DelaysFromParents}) {
        EXPECT_TRUE(heuristicInfo(h).transitiveSensitive)
            << heuristicInfo(h).name;
    }
    EXPECT_FALSE(heuristicInfo(Heuristic::MaxPathToLeaf).transitiveSensitive);
}

TEST(StaticPasses, HandBuiltDiamond)
{
    // 0 -> 1 -> 3, 0 -> 2 -> 3 with different delays.
    Program prog = parseAssembly(
        "ld [%o0], %g1\n"      // 0: latency 2
        "add %g1, 1, %g2\n"    // 1
        "smul %g1, %g1, %g3\n" // 2: latency 5
        "add %g2, %g3, %g4\n");// 3
    auto blocks = partitionBlocks(prog);
    Dag dag = TableForwardBuilder().build(BlockView(prog, blocks[0]),
                                          sparcstation2(), BuildOptions{});
    runAllStaticPasses(dag);

    EXPECT_EQ(dag.ann().maxPathToLeaf[0], 2);
    EXPECT_EQ(dag.ann().maxPathToLeaf[3], 0);
    EXPECT_EQ(dag.ann().maxPathFromRoot[0], 0);
    EXPECT_EQ(dag.ann().maxPathFromRoot[3], 2);

    // Delays: 0->1 RAW 2, 0->2 RAW 2, 1->3 RAW 1, 2->3 RAW 5.
    EXPECT_EQ(dag.ann().maxDelayToLeaf[0], 7);
    EXPECT_EQ(dag.ann().maxDelayFromRoot[3], 7);

    // EST uses node latencies: EST(3) = EST(2) + lat(2) = 2 + 5.
    EXPECT_EQ(dag.ann().earliestStart[0], 0);
    EXPECT_EQ(dag.ann().earliestStart[2], 2);
    EXPECT_EQ(dag.ann().earliestStart[3], 7);
}

TEST(StaticPasses, SlackInvariants)
{
    Program prog;
    Dag dag = buildKernelDag("tomcatv", prog);
    runAllStaticPasses(dag);

    bool found_zero = false;
    const NodeAnnotations &ann = dag.ann();
    for (std::uint32_t i = 0; i < dag.size(); ++i) {
        EXPECT_GE(ann.slack[i], 0);
        EXPECT_EQ(ann.slack[i],
                  ann.latestStart[i] - ann.earliestStart[i]);
        if (ann.slack[i] == 0)
            found_zero = true;
    }
    // Some node lies on the critical path.
    EXPECT_TRUE(found_zero);
}

TEST(StaticPasses, EstNeverBelowArcDelayPath)
{
    // EST is latency-based while maxDelayFromRoot is arc-based; for a
    // RAW-only chain they agree.
    Program prog = parseAssembly(
        "ld [%o0], %g1\n"
        "add %g1, 1, %g2\n"
        "add %g2, 1, %g3\n");
    auto blocks = partitionBlocks(prog);
    Dag dag = TableForwardBuilder().build(BlockView(prog, blocks[0]),
                                          sparcstation2(), BuildOptions{});
    runAllStaticPasses(dag);
    EXPECT_EQ(dag.ann().earliestStart[2],
              dag.ann().maxDelayFromRoot[2]);
}

TEST(StaticPasses, LevelListsMatchReverseWalk)
{
    for (const char *kernel : {"daxpy", "livermore1", "tomcatv"}) {
        for (BuilderKind kind :
             {BuilderKind::TableForward, BuilderKind::TableBackward,
              BuilderKind::N2Forward}) {
            Program prog;
            Dag a = buildKernelDag(kernel, prog, kind);
            Program prog2;
            Dag b = buildKernelDag(kernel, prog2, kind);
            runAllStaticPasses(a, PassImpl::ReverseWalk, true);
            runAllStaticPasses(b, PassImpl::LevelLists, true);
            const NodeAnnotations &x = a.ann();
            const NodeAnnotations &y = b.ann();
            for (std::uint32_t i = 0; i < a.size(); ++i) {
                EXPECT_EQ(x.maxPathToLeaf[i], y.maxPathToLeaf[i]);
                EXPECT_EQ(x.maxDelayToLeaf[i], y.maxDelayToLeaf[i]);
                EXPECT_EQ(x.maxPathFromRoot[i], y.maxPathFromRoot[i]);
                EXPECT_EQ(x.maxDelayFromRoot[i], y.maxDelayFromRoot[i]);
                EXPECT_EQ(x.earliestStart[i], y.earliestStart[i]);
                EXPECT_EQ(x.latestStart[i], y.latestStart[i]);
                EXPECT_EQ(x.numDescendants[i], y.numDescendants[i]);
            }
        }
    }
}

TEST(StaticPasses, DescendantsPopcount)
{
    Program prog = parseAssembly(
        "ld [%o0], %g1\n"
        "add %g1, 1, %g2\n"
        "add %g1, 2, %g3\n"
        "add %g2, %g3, %g4\n");
    auto blocks = partitionBlocks(prog);
    Dag dag = TableForwardBuilder().build(BlockView(prog, blocks[0]),
                                          sparcstation2(), BuildOptions{});
    runAllStaticPasses(dag, PassImpl::ReverseWalk, true);
    // Node 0 reaches 1,2,3; the diamond must not double count node 3.
    EXPECT_EQ(dag.ann().numDescendants[0], 3);
    EXPECT_EQ(dag.ann().numDescendants[3], 0);
    // sum of exec times of {1,2,3} = 1+1+1.
    EXPECT_EQ(dag.ann().sumExecOfDescendants[0], 3);
}

TEST(StaticPasses, DescendantsFromMaintainedMaps)
{
    Program prog;
    Dag dag = buildKernelDag("daxpy", prog, BuilderKind::TableForward);
    runAllStaticPasses(dag, PassImpl::ReverseWalk, true);

    Program prog2 = kernelProgram("daxpy");
    auto blocks = partitionBlocks(prog2);
    BuildOptions opts;
    opts.maintainReachMaps = true;
    Dag bwd = TableBackwardBuilder().build(BlockView(prog2, blocks[0]),
                                           sparcstation2(), opts);
    runAllStaticPasses(bwd, PassImpl::ReverseWalk, true);

    for (std::uint32_t i = 0; i < dag.size(); ++i)
        EXPECT_EQ(dag.ann().numDescendants[i],
                  bwd.ann().numDescendants[i])
            << i;
}

TEST(Dynamic, UncoveringCounts)
{
    Program prog = parseAssembly(
        "ld [%o0], %g1\n"      // 0
        "ld [%o1], %g2\n"      // 1
        "add %g1, 1, %g3\n"    // 2: single parent (0), delay 2
        "add %g1, %g2, %g4\n");// 3: two parents
    auto blocks = partitionBlocks(prog);
    Dag dag = TableForwardBuilder().build(BlockView(prog, blocks[0]),
                                          sparcstation2(), BuildOptions{});
    initDynamicState(dag);

    EXPECT_EQ(numSingleParentChildren(dag, 0), 1); // node 2
    EXPECT_EQ(numUncoveredChildren(dag, 0), 0);    // delay 2 > 1
    EXPECT_EQ(sumDelaysToSingleParentChildren(dag, 0), 2);

    // After node 1 is scheduled, node 3's only unscheduled parent is 0.
    onScheduledForward(dag, 1, 0);
    EXPECT_EQ(numSingleParentChildren(dag, 0), 2);
}

TEST(Dynamic, EarliestExecTimeUpdates)
{
    Program prog = parseAssembly(
        "ld [%o0], %g1\n"
        "add %g1, 1, %g2\n");
    auto blocks = partitionBlocks(prog);
    Dag dag = TableForwardBuilder().build(BlockView(prog, blocks[0]),
                                          sparcstation2(), BuildOptions{});
    initDynamicState(dag);
    onScheduledForward(dag, 0, 3);
    EXPECT_EQ(dag.ann().earliestExecTime[1], 5); // 3 + load latency 2
    EXPECT_EQ(dag.ann().unscheduledParents[1], 0);
}

TEST(Dynamic, InterlockWithPrevious)
{
    Program prog = parseAssembly(
        "ld [%o0], %g1\n"
        "add %g1, 1, %g2\n"
        "add %g3, 1, %g4\n");
    auto blocks = partitionBlocks(prog);
    Dag dag = TableForwardBuilder().build(BlockView(prog, blocks[0]),
                                          sparcstation2(), BuildOptions{});
    initDynamicState(dag);
    EXPECT_TRUE(interlocksWithPrevious(dag, 1, 0));  // RAW delay 2
    EXPECT_FALSE(interlocksWithPrevious(dag, 2, 0)); // independent
    EXPECT_FALSE(interlocksWithPrevious(dag, 1, -1));
}

TEST(Dynamic, BirthingBoostsRawParents)
{
    Program prog = parseAssembly(
        "ld [%o0], %g1\n"
        "add %g1, 1, %g2\n");
    auto blocks = partitionBlocks(prog);
    Dag dag = TableForwardBuilder().build(BlockView(prog, blocks[0]),
                                          sparcstation2(), BuildOptions{});
    initDynamicState(dag);
    onScheduledBackward(dag, 1, /*birthing=*/true);
    EXPECT_GT(dag.ann().priorityBoost[0], 0.0);
}

TEST(RegisterPressure, BornAndKilled)
{
    Program prog = parseAssembly(
        "ld [%o0], %g1\n"      // births g1
        "add %g1, 1, %g2\n"    // births g2
        "add %g1, %g2, %g3\n");// kills g1, g2; births g3
    auto blocks = partitionBlocks(prog);
    Dag dag = TableForwardBuilder().build(BlockView(prog, blocks[0]),
                                          sparcstation2(), BuildOptions{});
    computeRegisterPressure(dag);
    EXPECT_EQ(dag.ann().regsBorn[0], 1);
    EXPECT_EQ(dag.ann().regsKilled[2], 2);
    EXPECT_EQ(dag.ann().regsBorn[2], 1);
    EXPECT_EQ(dag.ann().liveness[2], 1);
    EXPECT_EQ(dag.ann().regsKilled[1], 0); // g1 still used later
}

TEST(RegisterPressure, MaxLiveRegisters)
{
    Program prog = parseAssembly(
        "ld [%o0], %g1\n"
        "ld [%o0+4], %g2\n"
        "add %g1, %g2, %g3\n"
        "st %g3, [%o1]\n");
    auto blocks = partitionBlocks(prog);
    Dag dag = TableForwardBuilder().build(BlockView(prog, blocks[0]),
                                          sparcstation2(), BuildOptions{});
    std::vector<std::uint32_t> order{0, 1, 2, 3};
    // %o0 and %o1 are live-in; g1+g2 overlap, then g3.
    int live = maxLiveRegisters(dag, order);
    EXPECT_GE(live, 4); // o0, g1, g2 and o1 at least
}

TEST(RegisterPressure, ScheduleDependent)
{
    // Interleaving producers and consumers lowers pressure vs
    // hoisting all loads first.
    Program prog = parseAssembly(
        "ld [%o0], %g1\n"
        "st %g1, [%o1]\n"
        "ld [%o0+4], %g2\n"
        "st %g2, [%o1+4]\n");
    auto blocks = partitionBlocks(prog);
    Dag dag = TableForwardBuilder().build(BlockView(prog, blocks[0]),
                                          sparcstation2(), BuildOptions{});
    int seq = maxLiveRegisters(dag, {0, 1, 2, 3});
    int hoisted = maxLiveRegisters(dag, {0, 2, 1, 3});
    EXPECT_LE(seq, hoisted);
}

TEST(StaticValue, ReadsAnnotations)
{
    Program prog;
    Dag dag = buildKernelDag("daxpy", prog);
    runAllStaticPasses(dag, PassImpl::ReverseWalk, true);
    EXPECT_EQ(staticValue(dag, 0, Heuristic::ExecutionTime),
              dag.ann().execTime[0]);
    EXPECT_EQ(staticValue(dag, 0, Heuristic::NumChildren),
              dag.numChildren(0));
    EXPECT_EQ(staticValue(dag, 0, Heuristic::MaxDelayToLeaf),
              dag.ann().maxDelayToLeaf[0]);
    EXPECT_EQ(staticValueMax(dag, 0, Heuristic::DelaysToChildren),
              dag.ann().maxDelayToChild[0]);
}

} // namespace
} // namespace sched91
