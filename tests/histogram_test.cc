/**
 * @file
 * Histogram layer tests (obs/histogram.hh): log2 bucket geometry,
 * pinned percentile values, the associative/commutative merge the
 * per-worker shard design depends on, HistogramSet name ordering,
 * and the `_ns` duration-naming convention.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "obs/histogram.hh"

namespace sched91::obs
{
namespace
{

// --- Bucket geometry -----------------------------------------------

TEST(Histogram, BucketGeometry)
{
    // Bucket index == bit width: 0 -> 0, [2^(i-1), 2^i - 1] -> i.
    EXPECT_EQ(Histogram::bucketOf(0), 0u);
    EXPECT_EQ(Histogram::bucketOf(1), 1u);
    EXPECT_EQ(Histogram::bucketOf(2), 2u);
    EXPECT_EQ(Histogram::bucketOf(3), 2u);
    EXPECT_EQ(Histogram::bucketOf(4), 3u);
    EXPECT_EQ(Histogram::bucketOf(~std::uint64_t{0}), 64u);

    EXPECT_EQ(Histogram::bucketLo(0), 0u);
    EXPECT_EQ(Histogram::bucketHi(0), 0u);
    for (std::size_t i = 1; i < Histogram::kNumBuckets; ++i) {
        // Every value in [lo, hi] maps back to bucket i, and the
        // buckets tile the range with no gap.
        EXPECT_EQ(Histogram::bucketOf(Histogram::bucketLo(i)), i);
        EXPECT_EQ(Histogram::bucketOf(Histogram::bucketHi(i)), i);
        EXPECT_EQ(Histogram::bucketLo(i),
                  Histogram::bucketHi(i - 1) + 1);
    }
    EXPECT_EQ(Histogram::bucketHi(64), ~std::uint64_t{0});
}

TEST(Histogram, EmptyIsAllZero)
{
    Histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.sum(), 0u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 0u);
    EXPECT_EQ(h.mean(), 0.0);
    EXPECT_EQ(h.percentile(50), 0u);
    EXPECT_EQ(h.percentile(100), 0u);
}

TEST(Histogram, RecordBasicStats)
{
    Histogram h;
    for (std::uint64_t v : {5u, 0u, 20u, 5u})
        h.record(v);
    EXPECT_EQ(h.count(), 4u);
    EXPECT_EQ(h.sum(), 30u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 20u);
    EXPECT_DOUBLE_EQ(h.mean(), 7.5);
    EXPECT_EQ(h.bucketCount(Histogram::bucketOf(0)), 1u);
    EXPECT_EQ(h.bucketCount(Histogram::bucketOf(5)), 2u);
    EXPECT_EQ(h.bucketCount(Histogram::bucketOf(20)), 1u);
}

// --- Pinned percentiles --------------------------------------------

TEST(Histogram, PercentileSingleValue)
{
    Histogram h;
    h.record(7);
    // One sample: every percentile is that sample (bucket hi == 7
    // happens to be exact here, and the max clamp covers the rest).
    EXPECT_EQ(h.percentile(0), 7u);
    EXPECT_EQ(h.percentile(50), 7u);
    EXPECT_EQ(h.percentile(90), 7u);
    EXPECT_EQ(h.percentile(99), 7u);
    EXPECT_EQ(h.percentile(100), 7u);
}

TEST(Histogram, PercentilePinnedPowersOfTwo)
{
    Histogram h;
    for (std::uint64_t v : {1u, 2u, 4u, 8u})
        h.record(v);
    // p50: rank ceil(0.5*4) = 2 -> second sample's bucket is
    // [2,3] -> reported as its inclusive upper bound 3.
    EXPECT_EQ(h.percentile(50), 3u);
    // p75: rank 3 -> bucket [4,7] -> 7.
    EXPECT_EQ(h.percentile(75), 7u);
    // p90/p99: rank 4 -> bucket [8,15], clamped to the observed max.
    EXPECT_EQ(h.percentile(90), 8u);
    EXPECT_EQ(h.percentile(99), 8u);
    EXPECT_EQ(h.percentile(0), 1u) << "p0 is the minimum";
    EXPECT_EQ(h.percentile(100), 8u) << "p100 is the exact maximum";
}

TEST(Histogram, PercentileSkewedTail)
{
    // 1000 fast events and one huge outlier: p50/p99 must not be
    // dragged up by the tail, p100 must report it exactly.
    Histogram h;
    for (int i = 0; i < 1000; ++i)
        h.record(1);
    h.record(1000000);
    EXPECT_EQ(h.percentile(50), 1u);
    EXPECT_EQ(h.percentile(99), 1u); // rank 991 of 1001 is still a 1
    EXPECT_EQ(h.percentile(100), 1000000u);
    EXPECT_EQ(h.max(), 1000000u);
}

TEST(Histogram, PercentileNeverOverstatesMax)
{
    // A lone value just above a power of two: the bucket's upper
    // bound (1023) exceeds the sample, so the clamp must kick in.
    Histogram h;
    h.record(513);
    EXPECT_EQ(h.percentile(50), 513u);
    EXPECT_EQ(h.percentile(99), 513u);
}

// --- Merge algebra -------------------------------------------------

Histogram
fromValues(const std::vector<std::uint64_t> &values)
{
    Histogram h;
    for (std::uint64_t v : values)
        h.record(v);
    return h;
}

TEST(Histogram, MergeEqualsSingleStream)
{
    // Merging per-worker shards must equal recording the whole
    // stream into one histogram, regardless of the split.
    std::vector<std::uint64_t> all{0, 1, 3, 9, 100, 4096, 9, 77};
    Histogram whole = fromValues(all);

    Histogram a = fromValues({0, 1, 3});
    Histogram b = fromValues({9, 100});
    Histogram c = fromValues({4096, 9, 77});
    a.merge(b);
    a.merge(c);
    EXPECT_EQ(a, whole);
}

TEST(Histogram, MergeIsAssociativeAndCommutative)
{
    Histogram a = fromValues({1, 2, 3});
    Histogram b = fromValues({10, 20});
    Histogram c = fromValues({0, 500});

    Histogram ab_c = a;
    ab_c.merge(b);
    ab_c.merge(c);

    Histogram bc = b;
    bc.merge(c);
    Histogram a_bc = a;
    a_bc.merge(bc);
    EXPECT_EQ(ab_c, a_bc) << "merge is associative";

    Histogram ba = b;
    ba.merge(a);
    Histogram ab = a;
    ab.merge(b);
    EXPECT_EQ(ab, ba) << "merge is commutative";
}

TEST(Histogram, MergeEmptyIsIdentity)
{
    Histogram a = fromValues({4, 5});
    Histogram empty;
    Histogram merged = a;
    merged.merge(empty);
    EXPECT_EQ(merged, a);

    // Empty-into-nonempty must not poison min with the empty's 0.
    Histogram onto;
    onto.merge(a);
    EXPECT_EQ(onto, a);
    EXPECT_EQ(onto.min(), 4u);
}

// --- HistogramSet --------------------------------------------------

TEST(HistogramSet, GetCreatesAndKeepsNameOrder)
{
    HistogramSet set;
    set.record("z.last", 1);
    set.record("a.first", 2);
    set.record("m.mid", 3);
    set.record("a.first", 4);

    ASSERT_EQ(set.size(), 3u);
    EXPECT_EQ(set.items()[0].first, "a.first");
    EXPECT_EQ(set.items()[1].first, "m.mid");
    EXPECT_EQ(set.items()[2].first, "z.last");
    EXPECT_EQ(set.items()[0].second.count(), 2u);

    ASSERT_NE(set.find("m.mid"), nullptr);
    EXPECT_EQ(set.find("m.mid")->sum(), 3u);
    EXPECT_EQ(set.find("absent"), nullptr);
}

TEST(HistogramSet, MergeByName)
{
    HistogramSet a, b;
    a.record("shared", 1);
    a.record("only_a", 2);
    b.record("shared", 3);
    b.record("only_b", 4);

    a.merge(b);
    ASSERT_EQ(a.size(), 3u);
    EXPECT_EQ(a.find("shared")->count(), 2u);
    EXPECT_EQ(a.find("shared")->sum(), 4u);
    EXPECT_EQ(a.find("only_a")->count(), 1u);
    EXPECT_EQ(a.find("only_b")->count(), 1u);
}

// --- Conventions and rendering -------------------------------------

TEST(Histogram, TimeHistogramNaming)
{
    EXPECT_TRUE(isTimeHistogram("lat.build_ns"));
    EXPECT_TRUE(isTimeHistogram("x_ns"));
    EXPECT_FALSE(isTimeHistogram("block.insts"));
    EXPECT_FALSE(isTimeHistogram("ns"));
    EXPECT_FALSE(isTimeHistogram("_nsx"));
}

TEST(Histogram, SecondsToNs)
{
    EXPECT_EQ(secondsToNs(0.0), 0u);
    EXPECT_EQ(secondsToNs(-1.0), 0u);
    EXPECT_EQ(secondsToNs(1.5), 1500000000u);
    EXPECT_EQ(secondsToNs(2e-9), 2u);
}

TEST(Histogram, RenderTable)
{
    HistogramSet set;
    for (std::uint64_t v : {1u, 2u, 4u, 8u})
        set.record("lat.demo_ns", v);
    std::string table = renderHistograms(set);
    EXPECT_NE(table.find("lat.demo_ns"), std::string::npos);
    EXPECT_NE(table.find("count"), std::string::npos);
    EXPECT_NE(table.find("p99"), std::string::npos);
    EXPECT_NE(table.find("4"), std::string::npos); // the count column
}

TEST(Histogram, RenderTableEmptyHistogramPrintsZeros)
{
    // A named-but-never-recorded histogram (a run where every block
    // skipped a phase, say) must render as plain zeros, not NaN or
    // garbage from percentile math over an empty distribution.
    HistogramSet set;
    set.get("lat.never_ns");
    std::string table = renderHistograms(set);
    EXPECT_NE(table.find("lat.never_ns"), std::string::npos);
    EXPECT_EQ(table.find("nan"), std::string::npos);
    EXPECT_EQ(table.find("inf"), std::string::npos);
    EXPECT_EQ(table.find("-"), std::string::npos);

    // Exactly one data row, and its six columns are all "0".
    std::size_t header_end = table.find('\n');
    ASSERT_NE(header_end, std::string::npos);
    std::string row = table.substr(header_end + 1);
    ASSERT_FALSE(row.empty());
    std::istringstream is(row);
    std::string name, cell;
    is >> name;
    EXPECT_EQ(name, "lat.never_ns");
    int cells = 0;
    while (is >> cell) {
        EXPECT_EQ(cell, "0");
        ++cells;
    }
    EXPECT_EQ(cells, 6);
}

} // namespace
} // namespace sched91::obs
