/**
 * @file
 * Cross-cutting integration tests: machine models x windows x
 * policies x schedulers over synthetic programs, exercising the
 * combinations individual unit tests do not reach.
 */

#include <gtest/gtest.h>

#include "core/pipeline.hh"
#include "dag/table_forward.hh"
#include "ir/parser.hh"
#include "machine/presets.hh"
#include "sim/executor.hh"
#include "workload/generator.hh"

namespace sched91
{
namespace
{

WorkloadProfile
smallProfile(const char *base, std::uint64_t seed)
{
    WorkloadProfile p = profileByName(base);
    p.seed = seed;
    p.numBlocks = 8;
    p.totalInsts = 200;
    p.maxBlock = 50;
    p.secondBlock = 0;
    return p;
}

TEST(Integration, AllMachinePresetsPreserveSemantics)
{
    Program prog = generateProgram(smallProfile("lloops", 3));
    auto blocks = partitionBlocks(prog);
    for (const MachineModel &machine : allPresets()) {
        for (const auto &bb : blocks) {
            BlockView block(prog, bb);
            PipelineOptions opts;
            opts.algorithm = AlgorithmKind::Warren;
            opts.builder = BuilderKind::N2Forward;
            auto result = scheduleBlock(block, machine, opts);
            std::vector<std::uint32_t> identity(block.size());
            for (std::uint32_t i = 0; i < identity.size(); ++i)
                identity[i] = i;
            EXPECT_EQ(runBlock(block, identity, 19),
                      runBlock(block, result.sched.order, 19))
                << machine.name;
        }
    }
}

TEST(Integration, WindowedBlocksPreserveSemantics)
{
    // Windows split the giant block mid-stream; every window is its
    // own scheduling unit and must independently preserve semantics.
    WorkloadProfile p = smallProfile("lloops", 5);
    p.maxBlock = 120;
    p.totalInsts = 300;
    Program prog = generateProgram(p);
    PartitionOptions popts;
    popts.window = 24;
    auto blocks = partitionBlocks(prog, popts);
    MachineModel machine = sparcstation2();

    for (const auto &bb : blocks) {
        BlockView block(prog, bb);
        PipelineOptions opts;
        opts.algorithm = AlgorithmKind::Krishnamurthy;
        auto result = scheduleBlock(block, machine, opts);
        std::vector<std::uint32_t> identity(block.size());
        for (std::uint32_t i = 0; i < identity.size(); ++i)
            identity[i] = i;
        EXPECT_EQ(runBlock(block, identity, 23),
                  runBlock(block, result.sched.order, 23));
    }
}

TEST(Integration, WindowNeverChangesTotalCoverage)
{
    Program prog = generateProgram(smallProfile("dfa", 7));
    std::size_t total = prog.size();
    for (int window : {0, 5, 16, 1000}) {
        PartitionOptions popts;
        popts.window = window;
        Program copy = prog;
        auto blocks = partitionBlocks(copy, popts);
        std::size_t covered = 0;
        for (const auto &bb : blocks)
            covered += bb.size();
        EXPECT_EQ(covered, total) << "window " << window;
    }
}

TEST(Integration, EvaluateModeConsistentAcrossPolicies)
{
    // Stronger disambiguation can only help (fewer constraints):
    // scheduled cycles must be monotonically non-increasing along the
    // policy ladder for a timing-driven scheduler.
    Program base = generateProgram(smallProfile("linpack", 11));
    long long prev = -1;
    for (AliasPolicy policy :
         {AliasPolicy::SerializeAll, AliasPolicy::BaseOffset,
          AliasPolicy::SymbolicExpr}) {
        Program prog = base;
        PipelineOptions opts;
        opts.algorithm = AlgorithmKind::Krishnamurthy;
        opts.build.memPolicy = policy;
        opts.evaluate = true;
        ProgramResult r = runPipeline(prog, sparcstation2(), opts);
        if (prev >= 0) {
            // Allow small heuristic noise (tie-breaking shifts).
            EXPECT_LE(r.cyclesScheduled, prev * 102 / 100)
                << aliasPolicyName(policy);
        }
        prev = r.cyclesScheduled;
    }
}

TEST(Integration, SupercalarNeverSlowerThanSingleIssue)
{
    Program prog = generateProgram(smallProfile("lloops", 13));
    auto blocks = partitionBlocks(prog);
    MachineModel single = sparcstation2();
    MachineModel dual = superscalar2();

    long long c1 = 0, c2 = 0;
    for (const auto &bb : blocks) {
        BlockView block(prog, bb);
        PipelineOptions opts;
        opts.algorithm = AlgorithmKind::Warren;
        opts.builder = BuilderKind::N2Forward;
        auto r1 = scheduleBlock(block, single, opts);
        c1 += simulateSchedule(r1.dag, r1.sched.order, single).cycles;
        auto r2 = scheduleBlock(block, dual, opts);
        c2 += simulateSchedule(r2.dag, r2.sched.order, dual).cycles;
    }
    EXPECT_LE(c2, c1);
}

TEST(Integration, LdxStxRoundTripThroughParser)
{
    Program prog = parseAssembly(
        "stx %g1, [%fp-128]\n"
        "ldx [%fp-128], %g2\n");
    EXPECT_EQ(prog[0].op(), Opcode::Stx);
    EXPECT_EQ(prog[1].op(), Opcode::Ldx);
    EXPECT_EQ(prog[0].mem()->width, 8);
    Program back = parseAssembly(prog.toString());
    EXPECT_EQ(back[0].op(), Opcode::Stx);
    EXPECT_EQ(back[1].mem()->exprKey(), prog[1].mem()->exprKey());
}

} // namespace
} // namespace sched91
