/**
 * @file
 * Unit tests for the IR layer: resources, operands, instructions, the
 * assembly parser, and programs.
 */

#include <gtest/gtest.h>

#include "ir/instruction.hh"
#include "ir/operand.hh"
#include "ir/parser.hh"
#include "support/logging.hh"
#include "ir/program.hh"
#include "ir/resource.hh"

namespace sched91
{
namespace
{

TEST(Resource, ParseBanks)
{
    EXPECT_EQ(parseRegister("%g3"), Resource::intReg(3));
    EXPECT_EQ(parseRegister("%o2"), Resource::intReg(10));
    EXPECT_EQ(parseRegister("%l7"), Resource::intReg(23));
    EXPECT_EQ(parseRegister("%i0"), Resource::intReg(24));
    EXPECT_EQ(parseRegister("%f12"), Resource::fpReg(12));
    EXPECT_EQ(parseRegister("%sp"), Resource::intReg(14));
    EXPECT_EQ(parseRegister("%fp"), Resource::intReg(30));
    EXPECT_EQ(parseRegister("%y"), Resource::y());
}

TEST(Resource, RejectBadNames)
{
    EXPECT_FALSE(parseRegister("g1").valid());
    EXPECT_FALSE(parseRegister("%q1").valid());
    EXPECT_FALSE(parseRegister("%g9").valid());
    EXPECT_FALSE(parseRegister("%f32").valid());
    EXPECT_FALSE(parseRegister("%").valid());
}

TEST(Resource, SlotRoundTrip)
{
    for (int s = 0; s < Resource::kNumSlots; ++s) {
        Resource r = Resource::fromSlot(s);
        EXPECT_TRUE(r.valid());
        EXPECT_EQ(r.slot(), s);
    }
}

TEST(Resource, ZeroRegisterDetected)
{
    EXPECT_TRUE(Resource::intReg(0).isZeroReg());
    EXPECT_FALSE(Resource::intReg(1).isZeroReg());
    EXPECT_FALSE(Resource::fpReg(0).isZeroReg());
}

TEST(MemOperand, ParseBasePlusOffset)
{
    auto m = MemOperand::parse("[%o0+12]", 4);
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(m->base, 8);
    EXPECT_EQ(m->offset, 12);
    EXPECT_TRUE(m->symbol.empty());
}

TEST(MemOperand, ParseNegativeOffset)
{
    auto m = MemOperand::parse("[%fp-8]", 4);
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(m->base, 30);
    EXPECT_EQ(m->offset, -8);
}

TEST(MemOperand, ParseIndexed)
{
    auto m = MemOperand::parse("[%i1+%l0]", 4);
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(m->base, 25);
    EXPECT_EQ(m->index, 16);
}

TEST(MemOperand, ParseSymbol)
{
    auto m = MemOperand::parse("[counter+4]", 4);
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(m->symbol, "counter");
    EXPECT_EQ(m->offset, 4);
    EXPECT_EQ(m->storageClass(), StorageClass::Static);
}

TEST(MemOperand, StorageClasses)
{
    EXPECT_EQ(MemOperand::parse("[%fp-4]", 4)->storageClass(),
              StorageClass::Stack);
    EXPECT_EQ(MemOperand::parse("[%sp+64]", 4)->storageClass(),
              StorageClass::Stack);
    EXPECT_EQ(MemOperand::parse("[%g2+8]", 4)->storageClass(),
              StorageClass::Unknown);
}

TEST(MemOperand, RejectMalformed)
{
    EXPECT_FALSE(MemOperand::parse("%o0+4", 4).has_value());
    EXPECT_FALSE(MemOperand::parse("[]", 4).has_value());
}

TEST(MemExprTable, InternsByKey)
{
    MemExprTable table;
    auto a = MemOperand::parse("[%o0+4]", 4);
    auto b = MemOperand::parse("[%o0+4]", 4);
    auto c = MemOperand::parse("[%o0+8]", 4);
    EXPECT_EQ(table.intern(*a), table.intern(*b));
    EXPECT_NE(table.intern(*a), table.intern(*c));
    EXPECT_EQ(table.size(), 2u);
}

TEST(Immediate, Forms)
{
    EXPECT_EQ(parseImmediate("42").value(), 42);
    EXPECT_EQ(parseImmediate("-7").value(), -7);
    EXPECT_EQ(parseImmediate("0x10").value(), 16);
    EXPECT_FALSE(parseImmediate("%g1").has_value());
    EXPECT_TRUE(parseImmediate("%hi(sym)").has_value());
}

TEST(Parser, AluDefsAndUses)
{
    Program p = parseAssembly("add %g1, %g2, %g3\n");
    ASSERT_EQ(p.size(), 1u);
    const Instruction &i = p[0];
    EXPECT_EQ(i.op(), Opcode::Add);
    ASSERT_EQ(i.uses().size(), 2u);
    EXPECT_EQ(i.uses()[0], Resource::intReg(1));
    EXPECT_EQ(i.uses()[1], Resource::intReg(2));
    ASSERT_EQ(i.defs().size(), 1u);
    EXPECT_EQ(i.defs()[0], Resource::intReg(3));
}

TEST(Parser, ZeroRegisterCarriesNoDeps)
{
    Program p = parseAssembly("add %g0, %g2, %g0\n");
    EXPECT_EQ(p[0].uses().size(), 1u);
    EXPECT_TRUE(p[0].defs().empty());
}

TEST(Parser, ImmediateOperand)
{
    Program p = parseAssembly("add %g1, 8, %g3\n");
    EXPECT_TRUE(p[0].usesImm());
    EXPECT_EQ(p[0].imm(), 8);
    EXPECT_EQ(p[0].uses().size(), 1u);
}

TEST(Parser, CmpDefinesIcc)
{
    Program p = parseAssembly("cmp %g1, 5\n");
    EXPECT_TRUE(p[0].definesResource(Resource::icc()));
}

TEST(Parser, BranchUsesIcc)
{
    Program p = parseAssembly("cmp %g1, 5\nbne target\n");
    EXPECT_TRUE(p[1].usesResource(Resource::icc()));
    EXPECT_EQ(p[1].target(), "target");
}

TEST(Parser, AnnulledBranch)
{
    Program p = parseAssembly("be,a .L1\n");
    EXPECT_TRUE(p[0].annul());
    EXPECT_EQ(p[0].op(), Opcode::Be);
}

TEST(Parser, LoadIntoFpRegisterRemaps)
{
    Program p = parseAssembly("ld [%o0+4], %f2\nldd [%o0+8], %f4\n");
    EXPECT_EQ(p[0].op(), Opcode::Ldf);
    EXPECT_EQ(p[1].op(), Opcode::Lddf);
}

TEST(Parser, DoubleLoadDefinesPair)
{
    Program p = parseAssembly("lddf [%o0], %f4\n");
    ASSERT_EQ(p[0].defs().size(), 2u);
    EXPECT_EQ(p[0].defs()[0], Resource::fpReg(4));
    EXPECT_EQ(p[0].defs()[1], Resource::fpReg(5));
    EXPECT_EQ(p[0].defPairHalf(Resource::fpReg(5)), 1);
}

TEST(Parser, DoubleFpOpUsesPairs)
{
    Program p = parseAssembly("faddd %f0, %f2, %f4\n");
    const Instruction &i = p[0];
    EXPECT_TRUE(i.usesResource(Resource::fpReg(1)));
    EXPECT_TRUE(i.usesResource(Resource::fpReg(3)));
    EXPECT_TRUE(i.definesResource(Resource::fpReg(5)));
    // Both halves of the second operand sit at source position 1.
    EXPECT_EQ(i.usePosition(Resource::fpReg(2)), 1);
    EXPECT_EQ(i.usePosition(Resource::fpReg(3)), 1);
}

TEST(Parser, StoreUsesDataAndAddress)
{
    Program p = parseAssembly("st %l1, [%i0+4]\n");
    const Instruction &i = p[0];
    EXPECT_EQ(i.usePosition(Resource::intReg(17)), 0);
    EXPECT_EQ(i.usePosition(Resource::intReg(24)), 1);
    EXPECT_TRUE(i.isStore());
    EXPECT_TRUE(i.defs().empty());
}

TEST(Parser, CallDefsClobbers)
{
    Program p = parseAssembly("call printf\n");
    EXPECT_TRUE(p[0].definesResource(Resource::intReg(15))); // %o7
    EXPECT_TRUE(p[0].definesResource(Resource::callState()));
    EXPECT_EQ(p[0].target(), "printf");
}

TEST(Parser, CommentsAndDirectivesIgnored)
{
    Program p = parseAssembly(
        "! full line comment\n"
        ".align 8\n"
        "add %g1, %g2, %g3  ! trailing\n"
        "# hash comment\n");
    EXPECT_EQ(p.size(), 1u);
}

TEST(Parser, LabelsRecorded)
{
    Program p = parseAssembly("start:\nadd %g1, %g2, %g3\nba start\n");
    EXPECT_EQ(p.labelTarget("start"), 0);
    EXPECT_TRUE(p.hasLabelAt(0));
    EXPECT_FALSE(p.hasLabelAt(1));
}

TEST(Parser, UnknownMnemonicThrows)
{
    EXPECT_THROW(parseAssembly("bogus %g1, %g2\n"), FatalError);
}

TEST(Parser, WrongOperandCountThrows)
{
    EXPECT_THROW(parseAssembly("add %g1, %g2\n"), FatalError);
}

TEST(Parser, SmulTouchesY)
{
    Program p = parseAssembly("smul %g1, %g2, %g3\nsdiv %g3, %g1, %g4\n");
    EXPECT_TRUE(p[0].definesResource(Resource::y()));
    EXPECT_TRUE(p[1].usesResource(Resource::y()));
}

TEST(Program, MemExprInterning)
{
    Program p = parseAssembly(
        "ld [%o0+4], %g1\n"
        "ld [%o0+4], %g2\n"
        "ld [%o0+8], %g3\n");
    EXPECT_EQ(p[0].mem()->exprId, p[1].mem()->exprId);
    EXPECT_NE(p[0].mem()->exprId, p[2].mem()->exprId);
    EXPECT_EQ(p.memExprs().size(), 2u);
}

TEST(Instruction, EndsBlockClassification)
{
    Program p = parseAssembly(
        "bne x\ncall y\nsave %sp, -96, %sp\nadd %g1, %g2, %g3\n");
    EXPECT_TRUE(p[0].endsBlock());
    EXPECT_TRUE(p[1].endsBlock());
    EXPECT_TRUE(p[2].endsBlock());
    EXPECT_FALSE(p[3].endsBlock());
}

} // namespace
} // namespace sched91
