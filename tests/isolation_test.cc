/**
 * @file
 * Process-isolation tests (docs/ROBUSTNESS.md): a Supervisor driving
 * real sandbox-worker subprocesses of the CLI binary.  Covers the
 * clean dispatch path, worker death as a ladder rung (degraded answer
 * + quarantine + respawn), the watchdog SIGKILL on a spinning worker,
 * spawn failure (degraded answer, no quarantine), crash-forensics
 * harvest from the shared-memory ring, and tally determinism across
 * fresh pools under crash faults.
 *
 * Worker-side rlimit tests (RLIMIT_AS) are deliberately absent: the
 * address-space cap breaks sanitizer runtimes, so the flag stays 0
 * here and is exercised only by hand (see docs/ROBUSTNESS.md).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <dirent.h>
#include <unistd.h>

#include "fuzz/program_gen.hh"
#include "obs/json_parse.hh"
#include "service/engine.hh"
#include "service/protocol.hh"
#include "service/supervisor.hh"
#include "support/fault_inject.hh"

using namespace sched91;

namespace
{

const char kCli[] = SCHED91_CLI_PATH;

const char kSource[] = "add %g1, %g2, %g3\n"
                       "ld [%g3], %g4\n"
                       "add %g4, %g1, %g5\n"
                       "st %g5, [%g3]\n"
                       "add %g5, %g2, %g6\n";

service::RequestSpec
specFor(const std::string &source, const std::string &id = "t")
{
    service::RequestSpec spec;
    spec.id = id;
    spec.source = source;
    return spec;
}

/** Engine + Supervisor pair over the real CLI binary. */
struct Harness
{
    explicit Harness(service::SupervisorConfig config)
        : engine(config.engine), supervisor(std::move(config), engine)
    {
        supervisor.start();
    }

    static service::SupervisorConfig
    configWith(const std::string &faultSpec, int hangMs = 10'000)
    {
        service::SupervisorConfig config;
        config.workers = 1;
        config.workerExe = kCli;
        config.faultSpec = faultSpec;
        config.hangTimeoutMs = hangMs;
        return config;
    }

    obs::JsonValue
    process(const service::RequestSpec &spec, double remaining = 0.0)
    {
        return obs::parseJson(supervisor.process(0, spec, remaining));
    }

    service::Engine engine;
    service::Supervisor supervisor;
};

std::vector<std::string>
filesIn(const std::string &dir)
{
    std::vector<std::string> names;
    if (DIR *d = ::opendir(dir.c_str())) {
        while (dirent *e = ::readdir(d))
            if (e->d_name[0] != '.')
                names.emplace_back(e->d_name);
        ::closedir(d);
    }
    return names;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

} // namespace

TEST(Isolation, CleanRequestAnswersOkThroughTheWorker)
{
    Harness h{Harness::configWith("")};
    obs::JsonValue doc = h.process(specFor(kSource));
    EXPECT_EQ(doc.strOr("status", ""), "ok");
    EXPECT_EQ(doc.numberOr("blocks", -1), 1);
    EXPECT_EQ(doc.numberOr("insts", -1), 5);
    EXPECT_EQ(doc.numberOr("attempts", -1), 1);
    EXPECT_EQ(h.engine.counters().ok.load(), 1u);
    EXPECT_EQ(h.engine.counters().workerCrashes.load(), 0u);
}

TEST(Isolation, WorkerCrashIsItsOwnLadderRung)
{
    // Every block draws a SIGSEGV: the worker dies mid-attempt.  The
    // victim must come back degraded to original order, its payload
    // quarantined, and the pool respawned — in the parent, which
    // never sees the signal.
    Harness h{Harness::configWith("seed=3,crash-segv=1")};
    obs::JsonValue doc = h.process(specFor(kSource));
    EXPECT_EQ(doc.strOr("status", ""), "degraded");
    EXPECT_EQ(doc.numberOr("degraded_blocks", -1), 1);
    EXPECT_EQ(doc.numberOr("attempts", -1), 1);

    const service::SvcCounters &c = h.engine.counters();
    EXPECT_EQ(c.degraded.load(), 1u);
    EXPECT_EQ(c.workerCrashes.load(), 1u);
    EXPECT_EQ(c.workerRespawns.load(), 1u);
    EXPECT_EQ(c.quarantineAdds.load(), 1u);
    EXPECT_EQ(h.engine.quarantineSize(), 1u);

    // The same payload now short-circuits on the quarantine rung —
    // no worker is risked again.
    doc = h.process(specFor(kSource, "t2"));
    EXPECT_EQ(doc.strOr("status", ""), "degraded");
    EXPECT_TRUE(doc.at("quarantined").boolean());
    EXPECT_EQ(c.quarantineHits.load(), 1u);
    EXPECT_EQ(c.workerCrashes.load(), 1u); // unchanged
}

TEST(Isolation, WatchdogKillsASpinningWorker)
{
    // spin-forever wedges the worker in a busy loop; the watchdog
    // must SIGKILL it at the hang bound and the lane answers the
    // victim degraded.
    Harness h{Harness::configWith("seed=3,spin-forever=1", 400)};
    obs::JsonValue doc = h.process(specFor(kSource));
    EXPECT_EQ(doc.strOr("status", ""), "degraded");

    const service::SvcCounters &c = h.engine.counters();
    EXPECT_EQ(c.workerCrashes.load(), 1u);
    EXPECT_EQ(c.workerKills.load(), 1u);
    EXPECT_EQ(c.workerRespawns.load(), 1u);
}

TEST(Isolation, SpawnFailureDegradesWithoutQuarantine)
{
    service::SupervisorConfig config;
    config.workers = 1;
    config.workerExe = "/nonexistent/sched91-sandbox";
    config.spawnTimeoutMs = 2000;
    Harness h{std::move(config)};

    obs::JsonValue doc = h.process(specFor(kSource));
    EXPECT_EQ(doc.strOr("status", ""), "degraded");

    const service::SvcCounters &c = h.engine.counters();
    EXPECT_GT(c.workerSpawnFailures.load(), 0u);
    // An absent worker says nothing about the payload: no quarantine.
    EXPECT_EQ(h.engine.quarantineSize(), 0u);
    EXPECT_EQ(c.workerCrashes.load(), 0u);
}

TEST(Isolation, CrashForensicsAreHarvestedFromTheRing)
{
    char tmpl[] = "/tmp/sched91-isol-XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    std::string dir = tmpl;

    service::SupervisorConfig config = Harness::configWith(
        "seed=3,crash-segv=1");
    config.crashDir = dir;
    Harness h{std::move(config)};
    h.process(specFor(kSource));

    // The SIGSEGV'd worker left a flight-recorder ring in the shared
    // memfd; the supervisor dumps it plus a replayable bundle.
    std::string ringPath, bundlePath;
    for (const std::string &name : filesIn(dir)) {
        if (name.rfind("crash-ring-req", 0) == 0)
            ringPath = dir + "/" + name;
        else if (name.rfind("crash-req", 0) == 0)
            bundlePath = dir + "/" + name;
    }
    ASSERT_FALSE(ringPath.empty()) << "no ring dump in " << dir;
    ASSERT_FALSE(bundlePath.empty()) << "no crash bundle in " << dir;

    obs::JsonValue ring = obs::parseJson(slurp(ringPath));
    EXPECT_EQ(ring.numberOr("sched91_crash_ring", -1), 1);
    ASSERT_TRUE(ring.at("events").isArray());
    ASSERT_FALSE(ring.at("events").array().empty());
    // The last thing the worker recorded is the injected fault
    // itself: the ring survives the SIGSEGV.
    const obs::JsonValue &last = ring.at("events").array().back();
    EXPECT_EQ(last.strOr("tag", ""), "inject");
    EXPECT_EQ(last.strOr("detail", ""), "crash-segv");

    // The bundle replays through the explain machinery: it is an
    // ordinary outlier record with stage "crash" and the source
    // attached.
    obs::JsonValue bundle = obs::parseJson(slurp(bundlePath));
    EXPECT_EQ(bundle.numberOr("sched91_outlier", -1), 1);
    EXPECT_EQ(bundle.at("issue").strOr("stage", ""), "crash");
    EXPECT_FALSE(bundle.strOr("source", "").empty());

    std::remove(ringPath.c_str());
    std::remove(bundlePath.c_str());
    ::rmdir(dir.c_str());
}

TEST(Isolation, CrashTalliesAreDeterministicAcrossFreshPools)
{
    // Crash decisions are a pure function of (seed, block content):
    // the same corpus against a fresh pool must reproduce every tally
    // even though workers die and respawn along the way.
    auto runCorpus = [](std::vector<std::uint64_t> &tallies) {
        Harness h{Harness::configWith("seed=11,crash-segv=0.4")};
        for (int i = 0; i < 8; ++i) {
            fuzz::GenParams params;
            params.seed = 100 + static_cast<std::uint64_t>(i);
            params.numBlocks = 1 + i % 3;
            params.maxBlockSize = 12;
            h.process(specFor(fuzz::generateSource(params),
                              "d" + std::to_string(i)));
        }
        const service::SvcCounters &c = h.engine.counters();
        tallies = {c.ok.load(), c.degraded.load(),
                   c.workerCrashes.load(), c.quarantineAdds.load(),
                   c.workerRespawns.load()};
    };

    std::vector<std::uint64_t> first, second;
    runCorpus(first);
    runCorpus(second);
    EXPECT_EQ(first, second);
    // The fault rate actually bites: both outcomes occur.
    EXPECT_GT(first[2], 0u) << "no crash ever fired at rate 0.4";
    EXPECT_GT(first[0], 0u) << "every request crashed at rate 0.4";
}
