/**
 * @file
 * Layout-equivalence suite for the data-oriented DAG core.
 *
 * The CSR arc slabs, SoA annotation arrays, and BitMatrix reach maps
 * replaced a per-node AoS representation (linked adjacency vectors
 * inside a node struct) whose behaviour the schedulers depend on down
 * to iteration order.  This suite pins that contract over a seeded
 * program sweep, for every builder:
 *
 *  - CSR succ/pred spans enumerate arc ids in exactly the order the
 *    old per-node push_back produced (ascending arc id), and the
 *    companion to/delay/kind slabs mirror the Arc records;
 *  - degree counters, roots/leaves, level lists, numArcs, and the
 *    duplicate/suppressed tallies match a reference recomputation
 *    from the flat arc list;
 *  - reach maps match a brute-force transitive closure, and the
 *    descendant aggregates match popcounts over that closure;
 *  - all Table 1 heuristic values are identical whether the DAG was
 *    built single-threaded on the heap or inside a worker-context
 *    arena on a thread pool (the pipeline's N-thread configuration).
 */

#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include "dag/builder.hh"
#include "heuristics/heuristic.hh"
#include "heuristics/register_pressure.hh"
#include "heuristics/static_passes.hh"
#include "machine/presets.hh"
#include "support/thread_pool.hh"
#include "support/worker_context.hh"
#include "workload/generator.hh"

namespace sched91
{
namespace
{

WorkloadProfile
layoutProfile(std::uint64_t seed, bool fp)
{
    WorkloadProfile p = profileByName(fp ? "lloops" : "dfa");
    p.seed = seed;
    p.numBlocks = 10;
    p.totalInsts = 220;
    p.maxBlock = 44;
    p.secondBlock = 0;
    return p;
}

/** The old AoS adjacency, rebuilt from the flat arc list: addArc did
 * one push_back per endpoint, so per-node lists hold arc ids in
 * ascending order. */
struct RefAdjacency
{
    std::vector<std::vector<std::uint32_t>> succ;
    std::vector<std::vector<std::uint32_t>> pred;

    explicit RefAdjacency(const Dag &dag)
        : succ(dag.size()), pred(dag.size())
    {
        std::span<const Arc> arcs = dag.arcs();
        for (std::uint32_t a = 0; a < arcs.size(); ++a) {
            succ[arcs[a].from].push_back(a);
            pred[arcs[a].to].push_back(a);
        }
    }
};

std::vector<std::uint32_t>
vec(std::span<const std::uint32_t> s)
{
    return {s.begin(), s.end()};
}

/** Brute-force descendant closure (self included, matching the
 * maintained reach maps). */
std::vector<std::vector<bool>>
bruteDescendants(const Dag &dag, const RefAdjacency &ref)
{
    const std::uint32_t n = dag.size();
    std::vector<std::vector<bool>> desc(n, std::vector<bool>(n, false));
    for (std::uint32_t i = n; i-- > 0;) {
        desc[i][i] = true;
        for (std::uint32_t a : ref.succ[i]) {
            std::uint32_t c = dag.arc(a).to;
            for (std::uint32_t j = 0; j < n; ++j)
                if (desc[c][j])
                    desc[i][j] = true;
        }
    }
    return desc;
}

void
checkCsrAgainstReference(const Dag &dag)
{
    RefAdjacency ref(dag);
    ASSERT_EQ(dag.numArcs(), dag.arcs().size());

    for (std::uint32_t i = 0; i < dag.size(); ++i) {
        // Iteration order: ascending arc id, exactly the old per-node
        // insertion order.
        ASSERT_EQ(vec(dag.succs(i)), ref.succ[i]) << "node " << i;
        ASSERT_EQ(vec(dag.preds(i)), ref.pred[i]) << "node " << i;

        // Degrees count unique arcs.
        EXPECT_EQ(static_cast<std::size_t>(dag.numChildren(i)),
                  ref.succ[i].size());
        EXPECT_EQ(static_cast<std::size_t>(dag.numParents(i)),
                  ref.pred[i].size());

        // Companion slabs mirror the Arc records.
        std::span<const std::uint32_t> sto = dag.succTo(i);
        std::span<const std::int32_t> sdel = dag.succDelay(i);
        ASSERT_EQ(sto.size(), ref.succ[i].size());
        for (std::size_t k = 0; k < sto.size(); ++k) {
            const Arc &arc = dag.arc(ref.succ[i][k]);
            EXPECT_EQ(arc.from, i);
            EXPECT_EQ(sto[k], arc.to);
            EXPECT_EQ(sdel[k], arc.delay);
        }
        std::span<const std::uint32_t> pfrom = dag.predFrom(i);
        std::span<const std::int32_t> pdel = dag.predDelay(i);
        std::span<const DepKind> pkind = dag.predKind(i);
        ASSERT_EQ(pfrom.size(), ref.pred[i].size());
        for (std::size_t k = 0; k < pfrom.size(); ++k) {
            const Arc &arc = dag.arc(ref.pred[i][k]);
            EXPECT_EQ(arc.to, i);
            EXPECT_EQ(pfrom[k], arc.from);
            EXPECT_EQ(pdel[k], arc.delay);
            EXPECT_EQ(pkind[k], arc.kind);
        }
    }

    // Roots/leaves are the zero-degree nodes in ascending id order.
    std::vector<std::uint32_t> want_roots, want_leaves;
    for (std::uint32_t i = 0; i < dag.size(); ++i) {
        if (ref.pred[i].empty())
            want_roots.push_back(i);
        if (ref.succ[i].empty())
            want_leaves.push_back(i);
    }
    ArcIdxVec roots = dag.roots();
    ArcIdxVec leaves = dag.leaves();
    EXPECT_EQ(std::vector<std::uint32_t>(roots.begin(), roots.end()),
              want_roots);
    EXPECT_EQ(std::vector<std::uint32_t>(leaves.begin(), leaves.end()),
              want_leaves);

    // Level lists bucket nodes by level, ascending id within a level.
    const LevelLists &lists = dag.levelLists();
    std::vector<std::vector<std::uint32_t>> want_lists;
    for (std::uint32_t i = 0; i < dag.size(); ++i) {
        std::size_t l = static_cast<std::size_t>(dag.level(i));
        if (want_lists.size() <= l)
            want_lists.resize(l + 1);
        want_lists[l].push_back(i);
    }
    ASSERT_EQ(lists.size(), want_lists.size());
    for (std::size_t l = 0; l < want_lists.size(); ++l)
        EXPECT_EQ(vec(lists[l]), want_lists[l]) << "level " << l;
}

void
checkAnnotationsAgainstReference(const Dag &dag)
{
    // The phi sums/maxima accumulate the delay *at insertion time*; a
    // later duplicate that raises the stored arc delay deliberately
    // does not retro-adjust them (addArc contract, pinned by
    // Dag.DuplicateKeepsMaxDelay).  On a duplicate-free DAG the
    // recomputation from final arcs is exact; with duplicates the
    // final delays (pairwise maxima of inserted delays) bound the
    // accumulated values from above.
    const bool exact = dag.duplicateCount() == 0;
    RefAdjacency ref(dag);
    const NodeAnnotations &a = dag.ann();
    for (std::uint32_t i = 0; i < dag.size(); ++i) {
        int sum_to = 0, max_to = 0, sum_from = 0, max_from = 0;
        bool interlock = false;
        for (std::uint32_t id : ref.succ[i]) {
            sum_to += dag.arc(id).delay;
            max_to = std::max(max_to, dag.arc(id).delay);
            interlock = interlock || dag.arc(id).delay > 1;
        }
        for (std::uint32_t id : ref.pred[i]) {
            sum_from += dag.arc(id).delay;
            max_from = std::max(max_from, dag.arc(id).delay);
        }
        if (exact) {
            EXPECT_EQ(a.sumDelaysToChildren[i], sum_to) << "node " << i;
            EXPECT_EQ(a.maxDelayToChild[i], max_to) << "node " << i;
            EXPECT_EQ(a.sumDelaysFromParents[i], sum_from)
                << "node " << i;
            EXPECT_EQ(a.maxDelayFromParents[i], max_from)
                << "node " << i;
            EXPECT_EQ(a.interlockWithChild[i] != 0, interlock)
                << "node " << i;
        } else {
            EXPECT_LE(a.sumDelaysToChildren[i], sum_to) << "node " << i;
            EXPECT_LE(a.maxDelayToChild[i], max_to) << "node " << i;
            EXPECT_LE(a.sumDelaysFromParents[i], sum_from)
                << "node " << i;
            EXPECT_LE(a.maxDelayFromParents[i], max_from)
                << "node " << i;
            // Interlock implies some inserted delay > 1, and final
            // delays are maxima of inserted ones.
            if (a.interlockWithChild[i])
                EXPECT_GT(max_to, 1) << "node " << i;
            if (max_to <= 1)
                EXPECT_FALSE(a.interlockWithChild[i]) << "node " << i;
        }
    }
}

void
checkReachAgainstReference(const Dag &dag)
{
    RefAdjacency ref(dag);
    auto want = bruteDescendants(dag, ref);
    BitMatrix maps = dag.computeDescendantMaps();
    const NodeAnnotations &a = dag.ann();
    for (std::uint32_t i = 0; i < dag.size(); ++i) {
        std::size_t count = 0;
        long long exec_sum = 0;
        for (std::uint32_t j = 0; j < dag.size(); ++j) {
            EXPECT_EQ(maps.row(i).test(j), static_cast<bool>(want[i][j]))
                << i << " -> " << j;
            if (want[i][j]) {
                ++count;
                if (j != i)
                    exec_sum += a.execTime[j];
            }
        }
        EXPECT_EQ(maps.row(i).count(), count);
        // The backward pass fills the descendant aggregates by
        // popcount / iteration over exactly these rows.
        EXPECT_EQ(a.numDescendants[i], static_cast<int>(count) - 1);
        EXPECT_EQ(a.sumExecOfDescendants[i], exec_sum);
    }
}

/** Everything the schedulers can observe about one block's DAG. */
struct LayoutSnapshot
{
    std::vector<Arc> arcs;
    std::vector<std::vector<std::uint32_t>> succ;
    std::size_t duplicates = 0;
    std::size_t suppressed = 0;
    std::vector<std::vector<long long>> heur; ///< [node][heuristic]

    bool
    operator==(const LayoutSnapshot &o) const
    {
        if (succ != o.succ || duplicates != o.duplicates ||
            suppressed != o.suppressed || heur != o.heur ||
            arcs.size() != o.arcs.size())
            return false;
        for (std::size_t i = 0; i < arcs.size(); ++i)
            if (arcs[i].from != o.arcs[i].from ||
                arcs[i].to != o.arcs[i].to ||
                arcs[i].kind != o.arcs[i].kind ||
                arcs[i].delay != o.arcs[i].delay)
                return false;
        return true;
    }
};

LayoutSnapshot
snapshot(const Dag &dag)
{
    LayoutSnapshot s;
    s.arcs.assign(dag.arcs().begin(), dag.arcs().end());
    s.duplicates = dag.duplicateCount();
    s.suppressed = dag.suppressedCount();
    s.succ.resize(dag.size());
    s.heur.resize(dag.size());
    for (std::uint32_t i = 0; i < dag.size(); ++i) {
        s.succ[i] = vec(dag.succs(i));
        for (const HeuristicInfo &info : allHeuristics()) {
            s.heur[i].push_back(staticValue(dag, i, info.heuristic));
            s.heur[i].push_back(staticValueMax(dag, i, info.heuristic));
        }
    }
    return s;
}

struct BlockCase
{
    Program *prog;
    BasicBlock bb;
};

class LayoutSweep
    : public ::testing::TestWithParam<std::tuple<BuilderKind, bool>>
{
};

TEST_P(LayoutSweep, CsrAndAnnotationsMatchReference)
{
    auto [kind, fp] = GetParam();
    MachineModel machine = sparcstation2();
    for (std::uint64_t seed : {1u, 7u, 23u, 91u}) {
        Program prog = generateProgram(layoutProfile(seed, fp));
        auto blocks = partitionBlocks(prog);
        for (const auto &bb : blocks) {
            BlockView block(prog, bb);
            if (block.size() == 0)
                continue;
            Dag dag =
                makeBuilder(kind)->build(block, machine, BuildOptions{});
            runAllStaticPasses(dag, PassImpl::ReverseWalk, true);
            computeRegisterPressure(dag);
            checkCsrAgainstReference(dag);
            checkAnnotationsAgainstReference(dag);
            checkReachAgainstReference(dag);
        }
    }
}

TEST_P(LayoutSweep, HeapAndPooledArenaBuildsAgree)
{
    auto [kind, fp] = GetParam();
    MachineModel machine = sparcstation2();
    Program prog = generateProgram(layoutProfile(1991, fp));
    auto blocks = partitionBlocks(prog);

    // Reference pass: single thread, no worker context, plain heap.
    std::vector<LayoutSnapshot> want(blocks.size());
    for (std::size_t b = 0; b < blocks.size(); ++b) {
        BlockView block(prog, blocks[b]);
        if (block.size() == 0)
            continue;
        Dag dag =
            makeBuilder(kind)->build(block, machine, BuildOptions{});
        runAllStaticPasses(dag, PassImpl::ReverseWalk, true);
        computeRegisterPressure(dag);
        want[b] = snapshot(dag);
    }

    // Same blocks through the pipeline's N-thread configuration:
    // worker contexts with block-recycled arenas on a thread pool.
    const unsigned threads = 4;
    std::vector<WorkerContext> ctxs(threads);
    std::vector<LayoutSnapshot> got(blocks.size());
    ThreadPool pool(threads);
    pool.parallelFor(
        blocks.size(), 1,
        [&](unsigned w, std::size_t begin, std::size_t end) {
            WorkerContext::Scope scope(ctxs[w]);
            for (std::size_t b = begin; b < end; ++b) {
                ctxs[w].beginBlock();
                BlockView block(prog, blocks[b]);
                if (block.size() == 0)
                    continue;
                Dag dag = makeBuilder(kind)->build(block, machine,
                                                   BuildOptions{});
                runAllStaticPasses(dag, PassImpl::ReverseWalk, true);
                computeRegisterPressure(dag);
                got[b] = snapshot(dag);
                // The snapshot deep-copies out of the arena before
                // beginBlock() recycles it.
            }
        });

    for (std::size_t b = 0; b < blocks.size(); ++b)
        EXPECT_TRUE(want[b] == got[b]) << "block " << b;
}

INSTANTIATE_TEST_SUITE_P(
    AllBuilders, LayoutSweep,
    ::testing::Combine(::testing::ValuesIn(allBuilderKinds()),
                       ::testing::Bool()),
    [](const auto &info) {
        std::string name(builderKindName(std::get<0>(info.param)));
        for (char &c : name)
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return name + (std::get<1>(info.param) ? "_fp" : "_int");
    });

} // namespace
} // namespace sched91
