/**
 * @file
 * Unit tests of the generic list-scheduling engine itself: candidate
 * admission, the earliest-execution-time admission-vs-ranking
 * semantics, winnowing tie-breaks (original order at both ends),
 * alternate-type context, and the birthing priority adjustment.
 */

#include <gtest/gtest.h>

#include "dag/table_forward.hh"
#include "heuristics/static_passes.hh"
#include "ir/parser.hh"
#include "machine/presets.hh"
#include "sched/list_scheduler.hh"

namespace sched91
{
namespace
{

Dag
buildDag(Program &prog, const char *text)
{
    prog = parseAssembly(text);
    auto blocks = partitionBlocks(prog);
    Dag dag = TableForwardBuilder().build(BlockView(prog, blocks.at(0)),
                                          sparcstation2(),
                                          BuildOptions{});
    runAllStaticPasses(dag, PassImpl::ReverseWalk, true);
    return dag;
}

SchedulerConfig
bareConfig(bool forward = true)
{
    SchedulerConfig c;
    c.name = "bare";
    c.forward = forward;
    return c;
}

TEST(Engine, EmptyRankingFallsBackToOriginalOrder)
{
    Program prog;
    Dag dag = buildDag(prog,
                       "add %g1, 1, %g2\n"
                       "add %g3, 1, %g4\n"
                       "add %g5, 1, %g6\n");
    MachineModel machine = sparcstation2();
    Schedule s = ListScheduler(bareConfig(), machine).run(dag);
    EXPECT_EQ(s.order, (std::vector<std::uint32_t>{0, 1, 2}));
}

TEST(Engine, BackwardTieBreakIsOriginalOrderFromTheEnd)
{
    Program prog;
    Dag dag = buildDag(prog,
                       "add %g1, 1, %g2\n"
                       "add %g3, 1, %g4\n"
                       "add %g5, 1, %g6\n");
    MachineModel machine = sparcstation2();
    Schedule s = ListScheduler(bareConfig(false), machine).run(dag);
    // Backward filling picks the largest id first, so the reversed
    // result is again original order.
    EXPECT_EQ(s.order, (std::vector<std::uint32_t>{0, 1, 2}));
}

TEST(Engine, EetActsAsAdmissionNotRanking)
{
    // Load feeds a dependent add (EET 2); an independent add (EET 0)
    // and a *critical* independent chain head compete at time 1.  A
    // correct engine treats both EET<=time candidates as tied and
    // lets the next heuristic (here max delay to leaf) decide.
    Program prog;
    Dag dag = buildDag(prog,
                       "ld [%o0], %g1\n"    // 0
                       "add %g2, 1, %g3\n"  // 1: shallow independent
                       "smul %g4, %g4, %g5\n" // 2: deep chain head
                       "add %g5, 1, %g6\n"  // 3
                       "add %g1, 1, %g7\n");// 4: needs the load
    SchedulerConfig c = bareConfig();
    c.ranking = {
        {Heuristic::EarliestExecutionTime, false},
        {Heuristic::MaxDelayToLeaf, true},
    };
    MachineModel machine = sparcstation2();
    Schedule s = ListScheduler(c, machine).run(dag);
    // At time 0 all of {0,1,2} are ready; the load ties with the
    // multiply on EET, and the multiply's delay-to-leaf (5+...) must
    // beat the shallow add.
    EXPECT_EQ(s.order[1] == 2 || s.order[0] == 2, true);
    // The shallow independent add must not be scheduled before the
    // multiply chain head.
    auto pos = [&s](std::uint32_t n) {
        for (std::size_t i = 0; i < s.order.size(); ++i)
            if (s.order[i] == n)
                return i;
        return s.order.size();
    };
    EXPECT_LT(pos(2), pos(1));
}

TEST(Engine, AlternateTypePrefersDifferentGroup)
{
    Program prog;
    Dag dag = buildDag(prog,
                       "add %g1, 1, %g2\n"
                       "add %g3, 1, %g4\n"
                       "fadds %f0, %f1, %f2\n");
    SchedulerConfig c = bareConfig();
    c.ranking = {{Heuristic::AlternateType, true}};
    MachineModel machine = sparcstation2();
    Schedule s = ListScheduler(c, machine).run(dag);
    // After the first integer add, the FP add differs in group and
    // must come next.
    EXPECT_EQ(s.order[0], 0u);
    EXPECT_EQ(s.order[1], 2u);
    EXPECT_EQ(s.order[2], 1u);
}

TEST(Engine, BirthingBoostReordersBackwardPass)
{
    // Backward pass: scheduling the final consumer boosts its RAW
    // producer, pulling it ahead of an otherwise-tied node.
    Program prog;
    Dag dag = buildDag(prog,
                       "ld [%o0], %g1\n"    // 0: producer of g1
                       "add %g3, 1, %g4\n"  // 1: unrelated
                       "add %g1, 1, %g2\n");// 2: consumer
    SchedulerConfig c = bareConfig(false);
    c.ranking = {{Heuristic::BirthingInstruction, true}};
    c.birthing = true;
    MachineModel machine = sparcstation2();
    Schedule s = ListScheduler(c, machine).run(dag);
    // Filling from the end: node 2 goes last; its RAW parent (0) gets
    // boosted and is placed directly before it, leaving 1 first.
    EXPECT_EQ(s.order, (std::vector<std::uint32_t>{1, 0, 2}));
}

TEST(Engine, PostpassFixupRunsInsideRun)
{
    Program prog;
    Dag dag = buildDag(prog,
                       "ld [%o0], %g1\n"
                       "add %g1, 1, %g2\n"
                       "add %g3, 1, %g4\n");
    SchedulerConfig c = bareConfig();
    c.postpassFixup = true;
    MachineModel machine = sparcstation2();
    Schedule s = ListScheduler(c, machine).run(dag);
    // The bare forward pass emits original order; the fixup must pull
    // the independent add into the load delay slot.
    EXPECT_EQ(s.order, (std::vector<std::uint32_t>{0, 2, 1}));
}

TEST(Engine, IssueCyclesRespectArcDelays)
{
    Program prog;
    Dag dag = buildDag(prog,
                       "fdivd %f0, %f2, %f4\n"
                       "faddd %f4, %f6, %f8\n");
    MachineModel machine = sparcstation2();
    Schedule s = ListScheduler(bareConfig(), machine).run(dag);
    ASSERT_EQ(s.issueCycle.size(), 2u);
    EXPECT_EQ(s.issueCycle[0], 0);
    EXPECT_EQ(s.issueCycle[1], machine.latency(InstClass::FpDiv));
    EXPECT_EQ(s.makespan, machine.latency(InstClass::FpDiv) +
                              machine.latency(InstClass::FpAdd));
}

TEST(Engine, PhiMaxVariantSelectsMaxDelay)
{
    Program prog;
    Dag dag = buildDag(prog,
                       "ld [%o0], %g1\n"    // feeds two children
                       "add %g1, 1, %g2\n"
                       "st %g1, [%o1]\n");
    SchedulerConfig c = bareConfig();
    c.ranking = {{Heuristic::DelaysToChildren, true, /*phiMax=*/true}};
    MachineModel machine = sparcstation2();
    // Just exercises the phi=max evaluation path.
    Schedule s = ListScheduler(c, machine).run(dag);
    EXPECT_TRUE(isValidTopologicalOrder(dag, s.order));
}

} // namespace
} // namespace sched91
