/**
 * @file
 * Machine model tests: latencies, the dependence-delay rules of
 * Section 2 (WAR shortening, register-pair skew, asymmetric bypass,
 * store bypass, WAW write ordering), and function-unit occupancy.
 */

#include <gtest/gtest.h>

#include "ir/parser.hh"
#include "machine/function_unit.hh"
#include "machine/presets.hh"
#include "support/logging.hh"

namespace sched91
{
namespace
{

TEST(Machine, Figure1Latencies)
{
    MachineModel m = figure1Machine();
    EXPECT_EQ(m.latency(InstClass::FpDiv), 20); // DIVF
    EXPECT_EQ(m.latency(InstClass::FpAdd), 4);  // ADDF
    EXPECT_EQ(m.warDelay, 1);
}

TEST(Machine, RawDelayIsParentLatency)
{
    MachineModel m = sparcstation2();
    Program p = parseAssembly("fdivd %f0, %f2, %f4\nfaddd %f4, %f6, %f8\n");
    EXPECT_EQ(m.depDelay(p[0], p[1], DepKind::RAW, Resource::fpReg(4)), 20);
}

TEST(Machine, WarDelayIsShort)
{
    MachineModel m = sparcstation2();
    Program p = parseAssembly("fdivd %f0, %f2, %f4\nfaddd %f6, %f8, %f0\n");
    EXPECT_EQ(m.depDelay(p[0], p[1], DepKind::WAR, Resource::fpReg(0)), 1);
}

TEST(Machine, WawEnforcesWriteOrder)
{
    MachineModel m = sparcstation2();
    Program p = parseAssembly("fdivd %f0, %f2, %f4\nfmovs %f6, %f4\n");
    // 20-cycle producer followed by a 1-cycle producer of the same
    // register: the second write must wait 20 - 1 + 1 cycles.
    EXPECT_EQ(m.depDelay(p[0], p[1], DepKind::WAW, Resource::fpReg(4)), 20);
    // Reversed latencies clamp at 1.
    EXPECT_EQ(m.depDelay(p[1], p[0], DepKind::WAW, Resource::fpReg(4)), 1);
}

TEST(Machine, PairSkewDelaysOddHalf)
{
    MachineModel m = rs6000Like();
    ASSERT_TRUE(m.pairSkew);
    Program p = parseAssembly("lddf [%o0], %f4\nfadds %f5, %f6, %f8\n");
    int even = m.depDelay(p[0], p[1], DepKind::RAW, Resource::fpReg(4));
    int odd = m.depDelay(p[0], p[1], DepKind::RAW, Resource::fpReg(5));
    EXPECT_EQ(odd, even + 1);
}

TEST(Machine, AsymmetricBypassPenalizesSecondOperand)
{
    MachineModel m = rs6000Like();
    Program p = parseAssembly(
        "fmuls %f0, %f1, %f2\n"
        "fadds %f2, %f3, %f4\n"  // %f2 as first source
        "fadds %f3, %f2, %f5\n"); // %f2 as second source
    int first = m.depDelay(p[0], p[1], DepKind::RAW, Resource::fpReg(2));
    int second = m.depDelay(p[0], p[2], DepKind::RAW, Resource::fpReg(2));
    EXPECT_EQ(second, first + 1);
}

TEST(Machine, StoreBypassShortensRaw)
{
    MachineModel m = rs6000Like();
    ASSERT_GT(m.storeBypassSaving, 0);
    Program p = parseAssembly(
        "fmuld %f0, %f2, %f4\n"
        "faddd %f4, %f6, %f8\n"
        "stdf %f4, [%o0]\n");
    int to_arith = m.depDelay(p[0], p[1], DepKind::RAW, Resource::fpReg(4));
    int to_store = m.depDelay(p[0], p[2], DepKind::RAW, Resource::fpReg(4));
    EXPECT_LT(to_store, to_arith);
}

TEST(Machine, DelayNeverBelowOne)
{
    MachineModel m = sparcstation2();
    Program p = parseAssembly("add %g1, %g2, %g3\nadd %g3, %g4, %g5\n");
    EXPECT_GE(m.depDelay(p[0], p[1], DepKind::RAW, Resource::intReg(3)), 1);
    EXPECT_GE(m.depDelay(p[0], p[1], DepKind::CTRL, Resource()), 1);
}

TEST(Machine, FuMapping)
{
    MachineModel m = sparcstation2();
    EXPECT_EQ(m.fuFor(InstClass::FpDiv), FuKind::FpDivSqrt);
    EXPECT_EQ(m.fuFor(InstClass::FpSqrt), FuKind::FpDivSqrt);
    EXPECT_EQ(m.fuFor(InstClass::Load), FuKind::MemPort);
    EXPECT_EQ(m.fuFor(InstClass::IntAlu), FuKind::IntAlu);
}

TEST(Machine, NonPipelinedUnitsBusyFullLatency)
{
    MachineModel m = sparcstation2();
    EXPECT_EQ(m.fuBusyCycles(InstClass::FpDiv), m.latency(InstClass::FpDiv));
    EXPECT_EQ(m.fuBusyCycles(InstClass::FpAdd), 1); // pipelined
}

TEST(FuState, OccupancyBlocksReuse)
{
    MachineModel m = sparcstation2();
    FuState fus(m);
    EXPECT_EQ(fus.earliestFree(FuKind::FpDivSqrt, 0), 0);
    fus.occupy(InstClass::FpDiv, 0);
    EXPECT_EQ(fus.earliestFree(FuKind::FpDivSqrt, 0), 20);
    EXPECT_EQ(fus.earliestFree(FuKind::FpAdd, 0), 0);
}

TEST(FuState, PooledUnits)
{
    MachineModel m = sparcstation2();
    m.fuDesc(FuKind::FpDivSqrt).count = 2;
    FuState fus(m);
    fus.occupy(InstClass::FpDiv, 0);
    EXPECT_EQ(fus.earliestFree(FuKind::FpDivSqrt, 0), 0); // second unit
    fus.occupy(InstClass::FpDiv, 0);
    EXPECT_EQ(fus.earliestFree(FuKind::FpDivSqrt, 0), 20);
}

TEST(FuState, ResetClears)
{
    MachineModel m = sparcstation2();
    FuState fus(m);
    fus.occupy(InstClass::FpDiv, 5);
    fus.reset();
    EXPECT_EQ(fus.earliestFree(FuKind::FpDivSqrt, 0), 0);
}

TEST(Presets, LookupByName)
{
    EXPECT_EQ(presetByName("sparcstation2").name, "sparcstation2");
    EXPECT_EQ(presetByName("rs6000like").asymmetricBypass, true);
    EXPECT_EQ(presetByName("superscalar2").issueWidth, 2);
    EXPECT_THROW(presetByName("cray"), FatalError);
}

} // namespace
} // namespace sched91
