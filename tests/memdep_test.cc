/**
 * @file
 * Memory disambiguation policy tests (paper Section 2): serialize-all,
 * base+offset, storage classes, and the expression-as-resource model
 * the paper's tooling used.
 */

#include <gtest/gtest.h>

#include "dag/memdep.hh"

namespace sched91
{
namespace
{

MemOperand
ref(const char *text, std::uint8_t width = 4, std::uint32_t base_gen = 0)
{
    auto m = MemOperand::parse(text, width);
    EXPECT_TRUE(m.has_value()) << text;
    m->baseGen = base_gen;
    return *m;
}

TEST(MemDep, SerializeAllIsMust)
{
    MemDisambiguator d(AliasPolicy::SerializeAll);
    EXPECT_EQ(d.alias(ref("[%o0+0]"), ref("[%g1+512]")),
              AliasResult::MustAlias);
}

TEST(MemDep, IdenticalExprIsMust)
{
    for (AliasPolicy policy :
         {AliasPolicy::BaseOffset, AliasPolicy::StorageClassed,
          AliasPolicy::SymbolicExpr}) {
        MemDisambiguator d(policy);
        EXPECT_EQ(d.alias(ref("[%o0+8]"), ref("[%o0+8]")),
                  AliasResult::MustAlias)
            << aliasPolicyName(policy);
    }
}

TEST(MemDep, SameBaseDisjointOffsetsNoAlias)
{
    MemDisambiguator d(AliasPolicy::BaseOffset);
    EXPECT_EQ(d.alias(ref("[%o0+0]"), ref("[%o0+8]")),
              AliasResult::NoAlias);
    // Overlapping ranges: [0,8) vs [4,8).
    EXPECT_EQ(d.alias(ref("[%o0+0]", 8), ref("[%o0+4]")),
              AliasResult::MayAlias);
}

TEST(MemDep, DifferentBasesMayAliasUnderBaseOffset)
{
    MemDisambiguator d(AliasPolicy::BaseOffset);
    EXPECT_EQ(d.alias(ref("[%o0+0]"), ref("[%o1+0]")),
              AliasResult::MayAlias);
}

TEST(MemDep, GenerationMismatchDowngradesToMay)
{
    MemDisambiguator d(AliasPolicy::BaseOffset);
    // Same base, disjoint offsets, but the base was redefined between
    // the two references.
    EXPECT_EQ(d.alias(ref("[%o0+0]", 4, 0), ref("[%o0+8]", 4, 1)),
              AliasResult::MayAlias);
    // Identical expression across a redefinition is not the same
    // location either.
    EXPECT_EQ(d.alias(ref("[%o0+0]", 4, 0), ref("[%o0+0]", 4, 1)),
              AliasResult::MayAlias);
}

TEST(MemDep, StorageClassesSeparateStackFromStatic)
{
    MemDisambiguator d(AliasPolicy::StorageClassed);
    EXPECT_EQ(d.alias(ref("[%fp-8]"), ref("[globl+0]")),
              AliasResult::NoAlias);
    EXPECT_EQ(d.alias(ref("[%fp-8]"), ref("[%g3+0]")),
              AliasResult::MayAlias); // unknown class stays conservative
}

TEST(MemDep, DistinctSymbolsNoAlias)
{
    MemDisambiguator d(AliasPolicy::BaseOffset);
    EXPECT_EQ(d.alias(ref("[alpha+0]"), ref("[beta+0]")),
              AliasResult::NoAlias);
    EXPECT_EQ(d.alias(ref("[alpha+0]"), ref("[alpha+0]")),
              AliasResult::MustAlias);
}

TEST(MemDep, SymbolicExprTreatsExpressionsAsResources)
{
    MemDisambiguator d(AliasPolicy::SymbolicExpr);
    // Distinct stable expressions are independent resources.
    EXPECT_EQ(d.alias(ref("[%o0+0]"), ref("[%i2+0]")),
              AliasResult::NoAlias);
    EXPECT_EQ(d.alias(ref("[%fp-8]"), ref("[datum+0]")),
              AliasResult::NoAlias);
    // Same expression is still the same resource.
    EXPECT_EQ(d.alias(ref("[%o0+16]"), ref("[%o0+16]")),
              AliasResult::MustAlias);
    // Different bases are distinct expressions regardless of their
    // (per-register) generation stamps.
    EXPECT_EQ(d.alias(ref("[%o0+0]", 4, 0), ref("[%i2+0]", 4, 1)),
              AliasResult::NoAlias);
    // A redefined base makes same-shape references conservative.
    EXPECT_EQ(d.alias(ref("[%o0+0]", 4, 0), ref("[%o0+8]", 4, 1)),
              AliasResult::MayAlias);
}

TEST(MemDep, IndexedReferencesStayConservative)
{
    for (AliasPolicy policy :
         {AliasPolicy::BaseOffset, AliasPolicy::StorageClassed,
          AliasPolicy::SymbolicExpr}) {
        MemDisambiguator d(policy);
        EXPECT_EQ(d.alias(ref("[%o0+%l0]"), ref("[%o0+8]")),
                  AliasResult::MayAlias)
            << aliasPolicyName(policy);
    }
}

} // namespace
} // namespace sched91
