/**
 * @file
 * Observability-layer tests: counter registry semantics (register,
 * increment, reset, merge, duplicate rejection), ScopedPhase nesting
 * into the global phase tree, zero-cost-when-disabled behavior, the
 * JSON/JSONL emitters round-tripped through a minimal parser, and the
 * builder counter asymmetry (pairwise compares vs table probes) the
 * instrumentation exists to expose.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <variant>
#include <vector>

#include "core/pipeline.hh"
#include "machine/presets.hh"
#include "obs/counters.hh"
#include "obs/emitter.hh"
#include "obs/events.hh"
#include "obs/flight_recorder.hh"
#include "obs/json.hh"
#include "obs/json_parse.hh"
#include "obs/phase.hh"
#include "obs/trace.hh"
#include "support/logging.hh"
#include "workload/kernels.hh"

namespace sched91
{
namespace
{

/**
 * Minimal recursive-descent JSON reader, just enough to round-trip
 * the emitters' output: objects, arrays, strings (common escapes),
 * numbers (as doubles), booleans, null.
 */
struct JsonValue
{
    using Object = std::map<std::string, JsonValue>;
    using Array = std::vector<JsonValue>;

    std::variant<std::nullptr_t, bool, double, std::string, Array, Object>
        v;

    bool isObject() const { return std::holds_alternative<Object>(v); }
    const Object &object() const { return std::get<Object>(v); }
    const Array &array() const { return std::get<Array>(v); }
    double number() const { return std::get<double>(v); }
    const std::string &str() const { return std::get<std::string>(v); }

    bool has(const std::string &k) const
    {
        return isObject() && object().count(k) > 0;
    }
    const JsonValue &at(const std::string &k) const
    {
        return object().at(k);
    }
};

class JsonParser
{
  public:
    explicit JsonParser(std::string_view text) : text_(text) {}

    JsonValue parse()
    {
        JsonValue v = parseValue();
        skipWs();
        EXPECT_EQ(pos_, text_.size()) << "trailing garbage";
        return v;
    }

  private:
    void skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    char peek()
    {
        skipWs();
        EXPECT_LT(pos_, text_.size()) << "unexpected end of JSON";
        return pos_ < text_.size() ? text_[pos_] : '\0';
    }

    void expect(char c)
    {
        EXPECT_EQ(peek(), c);
        ++pos_;
    }

    JsonValue parseValue()
    {
        switch (peek()) {
          case '{': return parseObject();
          case '[': return parseArray();
          case '"': return JsonValue{parseString()};
          case 't': pos_ += 4; return JsonValue{true};
          case 'f': pos_ += 5; return JsonValue{false};
          case 'n': pos_ += 4; return JsonValue{nullptr};
          default: return parseNumber();
        }
    }

    JsonValue parseObject()
    {
        expect('{');
        JsonValue::Object obj;
        if (peek() != '}') {
            while (true) {
                std::string key = parseString();
                expect(':');
                obj.emplace(std::move(key), parseValue());
                if (peek() != ',')
                    break;
                ++pos_;
            }
        }
        expect('}');
        return JsonValue{std::move(obj)};
    }

    JsonValue parseArray()
    {
        expect('[');
        JsonValue::Array arr;
        if (peek() != ']') {
            while (true) {
                arr.push_back(parseValue());
                if (peek() != ',')
                    break;
                ++pos_;
            }
        }
        expect(']');
        return JsonValue{std::move(arr)};
    }

    std::string parseString()
    {
        expect('"');
        std::string out;
        while (pos_ < text_.size() && text_[pos_] != '"') {
            char c = text_[pos_++];
            if (c == '\\' && pos_ < text_.size()) {
                char e = text_[pos_++];
                switch (e) {
                  case 'n': out += '\n'; break;
                  case 't': out += '\t'; break;
                  case 'r': out += '\r'; break;
                  case 'b': out += '\b'; break;
                  case 'f': out += '\f'; break;
                  case 'u':
                    // The emitters only produce \u00xx escapes.
                    out += static_cast<char>(
                        std::stoi(std::string(text_.substr(pos_, 4)),
                                  nullptr, 16));
                    pos_ += 4;
                    break;
                  default: out += e;
                }
            } else {
                out += c;
            }
        }
        expect('"');
        return out;
    }

    JsonValue parseNumber()
    {
        skipWs();
        std::size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '-' || text_[pos_] == '+' ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E'))
            ++pos_;
        return JsonValue{
            std::stod(std::string(text_.substr(start, pos_ - start)))};
    }

    std::string_view text_;
    std::size_t pos_ = 0;
};

/** RAII reset of the process-wide observability state around a test. */
class ObsStateGuard
{
  public:
    ObsStateGuard()
    {
        obs::setEnabled(false);
        obs::CounterRegistry::global().resetAll();
        obs::PhaseProfiler::global().clear();
    }
    ~ObsStateGuard()
    {
        obs::setEnabled(false);
        obs::CounterRegistry::global().resetAll();
        obs::PhaseProfiler::global().clear();
    }
};

// ---------------------------------------------------------------------
// CounterRegistry / CounterSet
// ---------------------------------------------------------------------

TEST(CounterRegistry, RegisterIncrementReset)
{
    obs::CounterRegistry reg;
    std::size_t a = reg.add("x.a");
    std::size_t b = reg.add("x.b");
    EXPECT_NE(a, b);
    EXPECT_EQ(reg.size(), 2u);
    EXPECT_EQ(reg.find("x.a"), a);
    EXPECT_EQ(reg.find("nope"), obs::CounterRegistry::npos);

    reg.increment(a);
    reg.increment(a, 4);
    reg.increment(b, 2);
    EXPECT_EQ(reg.value(a), 5u);
    EXPECT_EQ(reg.valueByName("x.b"), 2u);
    EXPECT_EQ(reg.valueByName("missing"), 0u);

    reg.recordMax(b, 10);
    reg.recordMax(b, 7); // lower: no effect
    EXPECT_EQ(reg.value(b), 10u);

    reg.resetAll();
    EXPECT_EQ(reg.value(a), 0u);
    EXPECT_EQ(reg.value(b), 0u);
    EXPECT_EQ(reg.size(), 2u) << "reset keeps registrations";
}

TEST(CounterRegistry, DuplicateNameRejected)
{
    obs::CounterRegistry reg;
    reg.add("dup");
    EXPECT_THROW(reg.add("dup"), PanicError);
    EXPECT_EQ(reg.getOrAdd("dup"), reg.find("dup"))
        << "getOrAdd is the idempotent binding";
}

TEST(CounterRegistry, SnapshotAndDelta)
{
    obs::CounterRegistry reg;
    std::size_t a = reg.add("a");
    reg.increment(a, 3);
    obs::CounterSet before = reg.snapshot();

    reg.increment(a, 4);
    std::size_t b = reg.add("b"); // registered after the snapshot
    reg.increment(b, 9);

    obs::CounterSet delta = reg.deltaSince(before);
    EXPECT_EQ(delta.value("a"), 4u);
    EXPECT_EQ(delta.value("b"), 9u) << "new names count from zero";
}

TEST(CounterSet, MergeAndNonzero)
{
    obs::CounterSet x, y;
    x.set("a", 1);
    x.set("b", 0);
    y.set("a", 2);
    y.set("c", 3);
    x.merge(y);
    EXPECT_EQ(x.value("a"), 3u);
    EXPECT_EQ(x.value("b"), 0u);
    EXPECT_EQ(x.value("c"), 3u);

    obs::CounterSet nz = x.nonzero();
    EXPECT_TRUE(nz.contains("a"));
    EXPECT_FALSE(nz.contains("b"));
    EXPECT_EQ(nz.size(), 2u);
}

TEST(Counter, HandleCountsOnlyWhenEnabled)
{
    ObsStateGuard guard;
    obs::CounterRegistry reg;
    obs::Counter c(reg, "h");

    c.inc(5); // disabled: must not count
    EXPECT_EQ(reg.valueByName("h"), 0u);

    obs::setEnabled(true);
    c.inc(5);
    c.max(3); // below current value? no: 5 > 3 keeps 5
    EXPECT_EQ(reg.valueByName("h"), 5u);
    c.max(8);
    EXPECT_EQ(reg.valueByName("h"), 8u);
}

// ---------------------------------------------------------------------
// ScopedPhase / PhaseProfiler
// ---------------------------------------------------------------------

TEST(ScopedPhase, BuildsNestedTree)
{
    ObsStateGuard guard;
    obs::setEnabled(true);
    obs::CounterRegistry &reg = obs::CounterRegistry::global();
    std::size_t id = reg.getOrAdd("test.phase_events");

    {
        obs::ScopedPhase outer("outer");
        reg.increment(id, 1);
        {
            obs::ScopedPhase inner("inner");
            reg.increment(id, 2);
        }
        {
            obs::ScopedPhase inner("inner"); // re-entry accumulates
            reg.increment(id, 3);
        }
    }

    const obs::PhaseStats &root = obs::PhaseProfiler::global().root();
    const obs::PhaseStats *outer = root.child("outer");
    ASSERT_NE(outer, nullptr);
    EXPECT_EQ(outer->entries, 1u);
    EXPECT_GE(outer->seconds, 0.0);
    EXPECT_EQ(outer->counters.value("test.phase_events"), 6u)
        << "parent deltas are inclusive of children";

    const obs::PhaseStats *inner = outer->child("inner");
    ASSERT_NE(inner, nullptr);
    EXPECT_EQ(inner->entries, 2u);
    EXPECT_EQ(inner->counters.value("test.phase_events"), 5u);
    EXPECT_EQ(root.child("inner"), nullptr)
        << "inner nests under outer, not the root";
}

TEST(ScopedPhase, StopIsIdempotentAndDisabledPhasesStayOffTree)
{
    ObsStateGuard guard;

    // Disabled: timing still works, tree untouched.
    obs::ScopedPhase p("ghost");
    double t1 = p.stop();
    EXPECT_EQ(p.stop(), t1) << "stop() is idempotent";
    EXPECT_GE(t1, 0.0);
    EXPECT_EQ(obs::PhaseProfiler::global().root().child("ghost"),
              nullptr);
}

// ---------------------------------------------------------------------
// JSON writer / emitters
// ---------------------------------------------------------------------

TEST(JsonWriter, EscapesAndNesting)
{
    obs::JsonWriter w;
    w.beginObject()
        .key("s").value("a\"b\\c\nd")
        .key("n").value(std::uint64_t{42})
        .key("d").value(1.5)
        .key("t").value(true)
        .key("xs").beginArray().value(1).value(2).endArray()
        .endObject();
    std::string text = w.take();

    JsonValue v = JsonParser(text).parse();
    EXPECT_EQ(v.at("s").str(), "a\"b\\c\nd");
    EXPECT_EQ(v.at("n").number(), 42.0);
    EXPECT_EQ(v.at("d").number(), 1.5);
    EXPECT_EQ(v.at("xs").array().size(), 2u);
}

TEST(JsonWriter, NumberFormats)
{
    // Pinned textual forms: integers must print as integers (no
    // double rounding past 2^53), doubles locale-independently via
    // %.9g, non-finite values as null.
    obs::JsonWriter w;
    w.beginObject()
        .key("u64max").value(~std::uint64_t{0})
        .key("i64min").value(std::int64_t{-9223372036854775807LL - 1})
        .key("tenth").value(0.1)
        .key("big").value(1e300)
        .key("negzero").value(-0.0)
        .key("nan").value(std::nan(""))
        .key("inf").value(std::numeric_limits<double>::infinity())
        .endObject();
    std::string text = w.take();

    EXPECT_NE(text.find("\"u64max\":18446744073709551615"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("\"i64min\":-9223372036854775808"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("\"tenth\":0.1"), std::string::npos) << text;
    EXPECT_NE(text.find("\"big\":1e+300"), std::string::npos) << text;
    EXPECT_NE(text.find("\"nan\":null"), std::string::npos) << text;
    EXPECT_NE(text.find("\"inf\":null"), std::string::npos) << text;
}

TEST(JsonWriter, ControlCharacterEscapes)
{
    // The named short escapes plus the \u00xx fallback for the rest
    // of the C0 range; DEL and non-ASCII bytes pass through.
    EXPECT_EQ(obs::jsonEscape("a\"b"), "a\\\"b");
    EXPECT_EQ(obs::jsonEscape("a\\b"), "a\\\\b");
    EXPECT_EQ(obs::jsonEscape("\b\f\n\r\t"), "\\b\\f\\n\\r\\t");
    EXPECT_EQ(obs::jsonEscape(std::string_view("\x01\x1f", 2)),
              "\\u0001\\u001f");
    EXPECT_EQ(obs::jsonEscape("\x7f"), "\x7f");

    obs::JsonWriter w;
    w.beginObject().key("k\n").value("v\x02").endObject();
    JsonValue v = JsonParser(w.take()).parse();
    EXPECT_EQ(v.at("k\n").str(), std::string("v\x02"));
}

TEST(JsonWriter, EmptyContainersAndNesting)
{
    obs::JsonWriter w;
    w.beginObject()
        .key("eo").beginObject().endObject()
        .key("ea").beginArray().endArray()
        .key("aa").beginArray()
        .beginArray().value(1).endArray()
        .beginArray().endArray()
        .endArray()
        .endObject();
    std::string text = w.take();
    EXPECT_EQ(text, "{\"eo\":{},\"ea\":[],\"aa\":[[1],[]]}");
}

TEST(Emitter, ProgramResultJsonRoundTrips)
{
    ObsStateGuard guard;
    obs::setEnabled(true);

    Program prog = kernelProgram("daxpy");
    PipelineOptions opts;
    opts.evaluate = true;
    ProgramResult r = runPipeline(prog, sparcstation2(), opts);

    obs::RunMeta meta;
    meta.command = "test";
    meta.input = "daxpy";
    meta.builder = "table-fwd";
    meta.algorithm = "simple-forward";
    meta.machine = "sparcstation2";

    std::string text = obs::programResultJson(
        r, meta, r.counters, &obs::PhaseProfiler::global().root());
    JsonValue v = JsonParser(text).parse();

    EXPECT_EQ(v.at("meta").at("input").str(), "daxpy");
    EXPECT_EQ(v.at("blocks").number(),
              static_cast<double>(r.numBlocks));
    EXPECT_GE(v.at("phases").at("build_seconds").number(), 0.0);
    EXPECT_GT(v.at("dag").at("total_arcs").number(), 0.0);
    EXPECT_GT(v.at("cycles").at("original").number(), 0.0);
    EXPECT_GT(v.at("counters").at("dag.arcs_added").number(), 0.0);

    // Phase tree: build/heur/sched children with entries per block.
    ASSERT_TRUE(v.has("phase_tree"));
    bool saw_build = false;
    for (const JsonValue &c : v.at("phase_tree").array()) {
        if (c.at("name").str() == "build") {
            saw_build = true;
            EXPECT_EQ(c.at("entries").number(),
                      static_cast<double>(r.numBlocks));
        }
    }
    EXPECT_TRUE(saw_build);
}

TEST(Emitter, HistogramAndMemorySectionsRoundTrip)
{
    ObsStateGuard guard;
    obs::setEnabled(true);

    Program prog = kernelProgram("daxpy");
    PipelineOptions opts;
    ProgramResult r = runPipeline(prog, sparcstation2(), opts);

    obs::RunMeta meta;
    meta.command = "test";
    std::string text = obs::programResultJson(r, meta, r.counters,
                                              nullptr);
    JsonValue v = JsonParser(text).parse();

    // Deterministic size histogram: one sample per block, bucket
    // counts summing to the total, percentiles within [min, max].
    ASSERT_TRUE(v.at("histograms").has("block.insts"));
    const JsonValue &bi = v.at("histograms").at("block.insts");
    EXPECT_EQ(bi.at("count").number(),
              static_cast<double>(r.numBlocks));
    double bucket_total = 0.0;
    for (const JsonValue &b : bi.at("buckets").array()) {
        EXPECT_LE(b.at("lo").number(), b.at("hi").number());
        bucket_total += b.at("count").number();
    }
    EXPECT_EQ(bucket_total, bi.at("count").number());
    EXPECT_LE(bi.at("min").number(), bi.at("p50").number());
    EXPECT_LE(bi.at("p50").number(), bi.at("p99").number());
    EXPECT_LE(bi.at("p99").number(), bi.at("max").number());

    // Duration histograms follow the _ns convention and see one
    // event per block too.
    ASSERT_TRUE(v.at("histograms").has("lat.build_ns"));
    EXPECT_EQ(v.at("histograms").at("lat.build_ns").at("count").number(),
              static_cast<double>(r.numBlocks));

    // Memory telemetry: the deterministic gauges must be real.
    const JsonValue &m = v.at("memory");
    EXPECT_GT(m.at("arena_bytes_allocated").number(), 0.0);
    EXPECT_GE(m.at("arena_high_water_bytes").number(),
              m.at("arena_bytes_allocated").number() /
                  static_cast<double>(r.numBlocks));
    EXPECT_GT(m.at("dag_arcs").number(), 0.0);
    // dag_arc_bytes is dag_arcs * sizeof(Arc): an exact multiple,
    // strictly larger than the arc count.
    EXPECT_GT(m.at("dag_arc_bytes").number(), m.at("dag_arcs").number());
    EXPECT_EQ(std::fmod(m.at("dag_arc_bytes").number(),
                        m.at("dag_arcs").number()),
              0.0);

    // zeroTimes: duration histogram values and environmental memory
    // gauges go to zero, but deterministic counts survive.
    obs::EmitOptions zt;
    zt.zeroTimes = true;
    JsonValue z = JsonParser(
                      obs::programResultJson(r, meta, r.counters,
                                             nullptr, zt))
                      .parse();
    const JsonValue &zlat = z.at("histograms").at("lat.build_ns");
    EXPECT_EQ(zlat.at("count").number(),
              static_cast<double>(r.numBlocks));
    EXPECT_EQ(zlat.at("sum").number(), 0.0);
    EXPECT_EQ(zlat.at("p99").number(), 0.0);
    EXPECT_TRUE(zlat.at("buckets").array().empty());
    EXPECT_EQ(z.at("histograms").at("block.insts").at("sum").number(),
              bi.at("sum").number())
        << "size histograms are deterministic, not zeroed";
    EXPECT_EQ(z.at("memory").at("peak_rss_bytes").number(), 0.0);
    EXPECT_EQ(z.at("memory").at("arena_reserved_bytes").number(), 0.0);
    EXPECT_EQ(z.at("memory").at("arena_bytes_allocated").number(),
              m.at("arena_bytes_allocated").number());
}

TEST(Trace, JsonlLinesParse)
{
    ObsStateGuard guard;
    obs::setEnabled(true);

    std::ostringstream out;
    obs::JsonlTraceSink sink(out);

    Program prog = kernelProgram("daxpy");
    PipelineOptions opts;
    opts.trace = &sink;
    ProgramResult r = runPipeline(prog, sparcstation2(), opts);

    // One event per block per phase (build/heur/sched/verify; no
    // evaluate).
    EXPECT_EQ(sink.eventsWritten(), r.numBlocks * 4);

    std::istringstream in(out.str());
    std::string line;
    std::size_t lines = 0;
    std::uint64_t arcs = 0;
    while (std::getline(in, line)) {
        ++lines;
        JsonValue v = JsonParser(line).parse();
        EXPECT_TRUE(v.has("block"));
        EXPECT_TRUE(v.has("phase"));
        EXPECT_GE(v.at("seconds").number(), 0.0);
        if (v.at("phase").str() == "build" &&
            v.at("counters").has("dag.arcs_added"))
            arcs += static_cast<std::uint64_t>(
                v.at("counters").at("dag.arcs_added").number());
    }
    EXPECT_EQ(lines, sink.eventsWritten());
    EXPECT_EQ(arcs, r.counters.value("dag.arcs_added"))
        << "per-block build deltas sum to the run total";
}

TEST(Emitter, RenderCountersTable)
{
    obs::CounterSet cs;
    cs.set("a.long_name", 12);
    cs.set("b", 0); // dropped: zero
    cs.set("c", 7);
    std::string table = obs::renderCounters(cs);
    EXPECT_NE(table.find("a.long_name"), std::string::npos);
    EXPECT_NE(table.find("12"), std::string::npos);
    EXPECT_EQ(table.find("b "), std::string::npos);
}

// ---------------------------------------------------------------------
// Pipeline integration: the asymmetry the counters exist to expose
// ---------------------------------------------------------------------

TEST(ObsPipeline, BuilderCounterAsymmetry)
{
    ObsStateGuard guard;
    obs::setEnabled(true);
    obs::CounterRegistry &reg = obs::CounterRegistry::global();

    Program prog1 = kernelProgram("daxpy");
    PipelineOptions n2;
    n2.builder = BuilderKind::N2Forward;
    obs::CounterSet before = reg.snapshot();
    runPipeline(prog1, sparcstation2(), n2);
    obs::CounterSet n2_delta = reg.deltaSince(before);

    Program prog2 = kernelProgram("daxpy");
    PipelineOptions table;
    table.builder = BuilderKind::TableForward;
    before = reg.snapshot();
    runPipeline(prog2, sparcstation2(), table);
    obs::CounterSet table_delta = reg.deltaSince(before);

    // The n**2 builder does pairwise comparisons and never probes a
    // definition table; the table builder is the exact opposite.
    EXPECT_GT(n2_delta.value("dag.pairwise_compares"), 0u);
    EXPECT_EQ(n2_delta.value("dag.table_probes"), 0u);
    EXPECT_GT(table_delta.value("dag.table_probes"), 0u);
    EXPECT_EQ(table_delta.value("dag.pairwise_compares"), 0u);

    // Both reach the same dependence structure.
    EXPECT_GT(n2_delta.value("dag.arcs_added"), 0u);
    EXPECT_GT(table_delta.value("dag.arcs_added"), 0u);
}

TEST(ObsPipeline, DisabledRunCountsNothing)
{
    ObsStateGuard guard; // leaves counting disabled
    obs::CounterRegistry &reg = obs::CounterRegistry::global();
    obs::CounterSet before = reg.snapshot();

    Program prog = kernelProgram("daxpy");
    PipelineOptions opts;
    ProgramResult r = runPipeline(prog, sparcstation2(), opts);

    EXPECT_TRUE(reg.deltaSince(before).nonzero().empty());
    EXPECT_TRUE(r.counters.empty());
    EXPECT_GE(r.totalSeconds(), 0.0) << "timing still works";
}

// ---------------------------------------------------------------------
// Forensic documents round-trip through the real reader (json_parse)
// ---------------------------------------------------------------------

TEST(Emitter, DecisionsSectionRoundTrips)
{
    ObsStateGuard guard;
    obs::setEnabled(true);

    Program prog = kernelProgram("daxpy");
    PipelineOptions opts;
    opts.explainBlock = 0;
    ProgramResult r = runPipeline(prog, sparcstation2(), opts);
    ASSERT_FALSE(r.decisions.empty());

    obs::RunMeta meta;
    meta.command = "profile";
    meta.policy = "base-offset";
    obs::EmitOptions emit;
    emit.zeroTimes = true;
    std::string json = obs::programResultJson(r, meta, r.counters,
                                              nullptr, emit);

    obs::JsonValue doc = obs::parseJson(json);
    EXPECT_EQ(doc.at("meta").strOr("policy", ""), "base-offset");
    ASSERT_TRUE(doc.has("decisions"));
    const obs::JsonValue &dec = doc.at("decisions");
    EXPECT_EQ(dec.numberOr("block", -1), 0);
    EXPECT_EQ(dec.at("algorithm").str(), r.decisions.algorithm);
    EXPECT_EQ(dec.numberOr("total_picks", -1),
              static_cast<double>(r.decisions.stats.totalPicks));
    const obs::JsonValue::Array &ranks = dec.at("ranks").array();
    ASSERT_EQ(ranks.size(), r.decisions.rankNames.size());
    const obs::JsonValue::Array &log = dec.at("log").array();
    ASSERT_EQ(log.size(), r.decisions.stats.log.size());
    for (std::size_t i = 0; i < log.size(); ++i) {
        EXPECT_EQ(log[i].numberOr("pick", -1),
                  static_cast<double>(i));
        EXPECT_GE(log[i].numberOr("ready", 0), 1.0);
        EXPECT_FALSE(log[i].at("decided_by").str().empty());
        EXPECT_FALSE(log[i].at("inst").str().empty());
    }
}

TEST(FlightDump, CrashDocumentRoundTrips)
{
    namespace flight = obs::flight;
    flight::setEnabled(true);
    flight::beginRun();
    {
        flight::Recorder *rec = flight::claim();
        ASSERT_NE(rec, nullptr);
        flight::ScopedRecorder scope(rec);
        flight::record(flight::EventKind::RunBegin, "run", "", 2, 10);
        flight::setBlock(0);
        flight::record(flight::EventKind::BlockBegin, "block",
                       "kernel \"daxpy\"\\n", 5);
        flight::record(flight::EventKind::PhaseEnd, "build", "", 5, 7);
        flight::record(flight::EventKind::BlockEnd, "block");
        flight::setPostRun();
        flight::record(flight::EventKind::RunEnd, "run");
    }
    flight::setGauge(flight::Gauge::BlocksTotal, 2);
    flight::DumpInfo info;
    info.crashed = true;
    info.signal = 6;
    info.reason = "test crash";
    info.zeroTimes = true;
    std::string doc = flight::dumpJson(info);
    flight::setEnabled(false);
    flight::beginRun();

    obs::JsonValue v = obs::parseJson(doc);
    EXPECT_EQ(v.numberOr("sched91_flight", 0), 1);
    EXPECT_TRUE(v.at("crashed").boolean());
    EXPECT_EQ(v.numberOr("signal", 0), 6);
    EXPECT_EQ(v.at("reason").str(), "test crash");
    EXPECT_EQ(v.numberOr("events_total", 0), 5);
    const obs::JsonValue::Array &events = v.at("events").array();
    ASSERT_EQ(events.size(), 5u);
    EXPECT_EQ(events[0].at("kind").str(), "run_begin");
    EXPECT_EQ(events[0].numberOr("block", 0), -1);
    EXPECT_EQ(events[1].at("kind").str(), "block_begin");
    EXPECT_EQ(events[1].numberOr("block", -9), 0);
    // The quote and backslash were sanitized at record time, so the
    // document needed no escaping to stay well-formed JSON.
    EXPECT_EQ(events[1].at("detail").str().find('"'), std::string::npos);
    EXPECT_EQ(events[4].numberOr("block", 0), -2);
    EXPECT_EQ(v.at("memory").numberOr("blocks_total", 0), 2);
}

} // namespace
} // namespace sched91
