/**
 * @file
 * Determinism tests for the block-parallel pipeline: the contract is
 * that schedules, structural statistics, event counters, trace events,
 * and the serialized run document are byte-identical at every thread
 * count.  Covered for heap-eligible static rankings and for dynamic
 * rankings that keep the scan, with and without observability.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/pipeline.hh"
#include "machine/presets.hh"
#include "obs/emitter.hh"
#include "obs/phase.hh"
#include "obs/trace.hh"
#include "workload/generator.hh"

namespace sched91
{
namespace
{

Program
testProgram()
{
    WorkloadProfile p = profileByName("linpack");
    p.numBlocks = 40;
    p.totalInsts = 900;
    p.maxBlock = 90;
    return generateProgram(p);
}

struct RunArtifacts
{
    ProgramResult result;
    std::vector<Schedule> schedules;
    std::string statsJson; ///< zero-times document
    std::string trace;     ///< zero-times JSONL
};

/** One obs-enabled pipeline run at @p threads, all outputs captured. */
RunArtifacts
runAt(unsigned threads, AlgorithmKind algorithm, bool evaluate)
{
    Program prog = testProgram();
    std::ostringstream trace_out;
    obs::JsonlTraceSink sink(trace_out, /*zero_times=*/true);

    PipelineOptions opts;
    opts.algorithm = algorithm;
    opts.evaluate = evaluate;
    opts.threads = threads;
    opts.trace = &sink;

    RunArtifacts a;
    opts.schedules = &a.schedules;

    obs::setEnabled(true);
    obs::PhaseProfiler::global().clear();
    a.result = runPipeline(prog, sparcstation2(), opts);
    obs::EmitOptions emit;
    emit.zeroTimes = true;
    a.statsJson = obs::programResultJson(
        a.result, obs::RunMeta{}, a.result.counters,
        &obs::PhaseProfiler::global().root(), emit);
    obs::setEnabled(false);

    a.trace = trace_out.str();
    return a;
}

void
expectSchedulesEqual(const RunArtifacts &a, const RunArtifacts &b)
{
    ASSERT_EQ(a.schedules.size(), b.schedules.size());
    for (std::size_t i = 0; i < a.schedules.size(); ++i) {
        EXPECT_EQ(a.schedules[i].order, b.schedules[i].order)
            << "block " << i;
        EXPECT_EQ(a.schedules[i].issueCycle, b.schedules[i].issueCycle)
            << "block " << i;
        EXPECT_EQ(a.schedules[i].makespan, b.schedules[i].makespan)
            << "block " << i;
    }
}

void
expectIdenticalRuns(AlgorithmKind algorithm)
{
    RunArtifacts serial = runAt(1, algorithm, /*evaluate=*/true);
    RunArtifacts parallel = runAt(8, algorithm, /*evaluate=*/true);

    expectSchedulesEqual(serial, parallel);
    EXPECT_EQ(serial.result.cyclesOriginal, parallel.result.cyclesOriginal);
    EXPECT_EQ(serial.result.cyclesScheduled,
              parallel.result.cyclesScheduled);
    EXPECT_TRUE(serial.result.counters == parallel.result.counters);
    EXPECT_EQ(serial.statsJson, parallel.statsJson);
    EXPECT_EQ(serial.trace, parallel.trace);
}

TEST(ParallelPipeline, DeterministicStaticRankingSimpleForward)
{
    // Static ranking -> exercises the d-ary heap scheduling path.
    expectIdenticalRuns(AlgorithmKind::SimpleForward);
}

TEST(ParallelPipeline, DeterministicStaticRankingShiehPapachristou)
{
    expectIdenticalRuns(AlgorithmKind::ShiehPapachristou);
}

TEST(ParallelPipeline, DeterministicDynamicRankingWarren)
{
    // Dynamic ranking -> exercises the scan path under the pool.
    expectIdenticalRuns(AlgorithmKind::Warren);
}

TEST(ParallelPipeline, DeterministicDynamicRankingTiemann)
{
    // Backward pass with birthing adjustments.
    expectIdenticalRuns(AlgorithmKind::Tiemann);
}

TEST(ParallelPipeline, DeterministicWithObservabilityDisabled)
{
    // The obs-off fast path skips shards entirely but must still
    // produce identical schedules and statistics.
    auto run = [](unsigned threads) {
        Program prog = testProgram();
        PipelineOptions opts;
        opts.algorithm = AlgorithmKind::Krishnamurthy;
        opts.evaluate = true;
        opts.threads = threads;
        RunArtifacts a;
        opts.schedules = &a.schedules;
        a.result = runPipeline(prog, sparcstation2(), opts);
        return a;
    };
    RunArtifacts serial = run(1);
    RunArtifacts parallel = run(8);
    expectSchedulesEqual(serial, parallel);
    EXPECT_EQ(serial.result.cyclesScheduled,
              parallel.result.cyclesScheduled);
    EXPECT_EQ(serial.result.dagStats.totalArcs,
              parallel.result.dagStats.totalArcs);
}

TEST(ParallelPipeline, ThreadCountZeroPicksHardwareConcurrency)
{
    Program prog = testProgram();
    PipelineOptions opts;
    opts.threads = 0; // hardware concurrency — must simply work
    ProgramResult r = runPipeline(prog, sparcstation2(), opts);
    EXPECT_EQ(r.numBlocks, 40u);
    EXPECT_EQ(r.dagStats.totalNodes, 900u);
}

TEST(ParallelPipeline, MoreThreadsThanBlocks)
{
    WorkloadProfile p = profileByName("grep");
    p.numBlocks = 2;
    p.totalInsts = 40;
    p.maxBlock = 30;
    Program prog = generateProgram(p);
    PipelineOptions opts;
    opts.threads = 64; // clamped to the block count internally
    ProgramResult r = runPipeline(prog, sparcstation2(), opts);
    EXPECT_EQ(r.numBlocks, 2u);
}

TEST(ParallelPipeline, SchedulesOutputIndexedByBlock)
{
    Program prog = testProgram();
    auto blocks = partitionBlocks(prog);
    PipelineOptions opts;
    opts.threads = 4;
    std::vector<Schedule> schedules;
    opts.schedules = &schedules;
    runPipeline(prog, sparcstation2(), opts);
    ASSERT_EQ(schedules.size(), blocks.size());
    for (std::size_t b = 0; b < blocks.size(); ++b)
        EXPECT_EQ(schedules[b].order.size(), blocks[b].size())
            << "block " << b;
}

TEST(ParallelPipeline, TraceEventsArriveInBlockOrder)
{
    Program prog = testProgram();
    std::ostringstream out;
    obs::JsonlTraceSink sink(out, /*zero_times=*/true);
    PipelineOptions opts;
    opts.threads = 8;
    opts.trace = &sink;
    obs::setEnabled(true);
    runPipeline(prog, sparcstation2(), opts);
    obs::setEnabled(false);

    // Every block id must appear, in nondecreasing order.
    std::istringstream in(out.str());
    std::string line;
    long last = -1;
    std::size_t lines = 0;
    while (std::getline(in, line)) {
        auto pos = line.find("\"block\":");
        ASSERT_NE(pos, std::string::npos) << line;
        long block = std::stol(line.substr(pos + 8));
        EXPECT_GE(block, last);
        last = block;
        ++lines;
    }
    EXPECT_EQ(lines, 40u * 4u); // build/heur/sched/verify per block
}

} // namespace
} // namespace sched91
