/**
 * @file
 * Table 1 pass-legend contract: heuristics marked 'a' must be fully
 * determined by DAG construction; 'f' heuristics must be produced by
 * the forward pass and remain stable through the backward pass; 'b'
 * heuristics by the backward pass.  This pins the implementation to
 * the paper's calculation-time classification.
 */

#include <gtest/gtest.h>

#include <map>

#include "dag/table_forward.hh"
#include "heuristics/heuristic.hh"
#include "heuristics/register_pressure.hh"
#include "heuristics/static_passes.hh"
#include "ir/basic_block.hh"
#include "machine/presets.hh"
#include "workload/kernels.hh"

namespace sched91
{
namespace
{

using Snapshot = std::map<Heuristic, std::vector<long long>>;

Snapshot
snapshot(const Dag &dag)
{
    Snapshot snap;
    for (const HeuristicInfo &info : allHeuristics()) {
        std::vector<long long> values;
        for (std::uint32_t i = 0; i < dag.size(); ++i)
            values.push_back(staticValue(dag, i, info.heuristic));
        snap[info.heuristic] = std::move(values);
    }
    return snap;
}

TEST(PassContract, Table1CalculationTimes)
{
    Program prog = kernelProgram("tomcatv");
    auto blocks = partitionBlocks(prog);
    Dag dag = TableForwardBuilder().build(BlockView(prog, blocks.at(0)),
                                          sparcstation2(),
                                          BuildOptions{});
    computeRegisterPressure(dag); // block-scan register heuristics

    Snapshot after_build = snapshot(dag);
    runForwardPass(dag);
    Snapshot after_fwd = snapshot(dag);
    runBackwardPass(dag, PassImpl::ReverseWalk,
                    /*compute_descendants=*/true);
    computeSlack(dag);
    Snapshot after_all = snapshot(dag);

    for (const HeuristicInfo &info : allHeuristics()) {
        switch (info.pass) {
          case CalcPass::AddArc:
            // Fully determined at construction: later passes must not
            // disturb it.
            EXPECT_EQ(after_build[info.heuristic],
                      after_all[info.heuristic])
                << info.name;
            break;
          case CalcPass::Forward:
            // Set by the forward pass, stable afterwards.
            EXPECT_EQ(after_fwd[info.heuristic],
                      after_all[info.heuristic])
                << info.name;
            EXPECT_NE(after_build[info.heuristic],
                      after_fwd[info.heuristic])
                << info.name << " should change in the forward pass";
            break;
          case CalcPass::Backward:
            EXPECT_NE(after_fwd[info.heuristic],
                      after_all[info.heuristic])
                << info.name << " should change in the backward pass";
            break;
          case CalcPass::ForwardBackward:
            // Slack needs both; it only becomes meaningful at the end.
            break;
          case CalcPass::Visitation:
            // Dynamic: static passes must leave the slots untouched.
            EXPECT_EQ(after_build[info.heuristic],
                      after_all[info.heuristic])
                << info.name;
            break;
        }
    }
}

TEST(PassContract, SlackRequiresBothPasses)
{
    Program prog = kernelProgram("daxpy");
    auto blocks = partitionBlocks(prog);
    Dag dag = TableForwardBuilder().build(BlockView(prog, blocks.at(0)),
                                          sparcstation2(),
                                          BuildOptions{});
    runForwardPass(dag);
    runBackwardPass(dag);
    computeSlack(dag);
    bool nonzero = false;
    for (std::uint32_t i = 0; i < dag.size(); ++i)
        if (dag.ann().slack[i] != 0)
            nonzero = true;
    EXPECT_TRUE(nonzero) << "daxpy has off-critical-path nodes";
}

} // namespace
} // namespace sched91
