/**
 * @file
 * End-to-end pipeline tests: whole-program runs aggregate structural
 * statistics and phase timings; evaluate mode measures cycles; the
 * Section 6 three-pass structure works with every builder.
 */

#include <gtest/gtest.h>

#include "core/pipeline.hh"
#include "machine/presets.hh"
#include "workload/generator.hh"
#include "workload/kernels.hh"

namespace sched91
{
namespace
{

Program
smallProgram()
{
    WorkloadProfile p = profileByName("linpack");
    p.numBlocks = 30;
    p.totalInsts = 600;
    p.maxBlock = 80;
    return generateProgram(p);
}

TEST(Pipeline, AggregatesOverAllBlocks)
{
    Program prog = smallProgram();
    PipelineOptions opts;
    ProgramResult r = runPipeline(prog, sparcstation2(), opts);
    EXPECT_EQ(r.numBlocks, 30u);
    EXPECT_EQ(r.numInsts, 600u);
    EXPECT_EQ(r.dagStats.totalBlocks, 30u);
    EXPECT_EQ(r.dagStats.totalNodes, 600u);
    EXPECT_GT(r.dagStats.totalArcs, 0u);
    EXPECT_GE(r.totalSeconds(), 0.0);
}

TEST(Pipeline, EvaluateReportsCycles)
{
    Program prog = smallProgram();
    PipelineOptions opts;
    opts.algorithm = AlgorithmKind::Krishnamurthy;
    opts.evaluate = true;
    ProgramResult r = runPipeline(prog, sparcstation2(), opts);
    EXPECT_GT(r.cyclesOriginal, 0);
    EXPECT_GT(r.cyclesScheduled, 0);
    // Timing-driven forward scheduling should help overall.
    EXPECT_LE(r.cyclesScheduled, r.cyclesOriginal);
}

TEST(Pipeline, AllBuildersProduceSameScheduleQualityClass)
{
    // The three main construction algorithms feed the same scheduler;
    // schedule quality must be essentially the same (Section 6 pairs
    // each builder with the same simple forward pass).
    Program prog = smallProgram();
    long long cycles[3];
    int i = 0;
    for (BuilderKind kind :
         {BuilderKind::N2Forward, BuilderKind::TableForward,
          BuilderKind::TableBackward}) {
        Program copy = prog;
        PipelineOptions opts;
        opts.builder = kind;
        opts.evaluate = true;
        ProgramResult r = runPipeline(copy, sparcstation2(), opts);
        cycles[i++] = r.cyclesScheduled;
    }
    // Identical transitive closures and timing -> within 5% of each
    // other (tie-breaking on extra n**2 arcs can differ slightly).
    EXPECT_NEAR(static_cast<double>(cycles[0]),
                static_cast<double>(cycles[1]),
                0.05 * cycles[0] + 4);
    EXPECT_NEAR(static_cast<double>(cycles[1]),
                static_cast<double>(cycles[2]),
                0.05 * cycles[1] + 4);
}

TEST(Pipeline, WindowedRunsCoverAllInstructions)
{
    Program prog = smallProgram();
    PipelineOptions opts;
    opts.partition.window = 16;
    ProgramResult r = runPipeline(prog, sparcstation2(), opts);
    EXPECT_EQ(r.numInsts, 600u);
    EXPECT_GT(r.numBlocks, 30u);
    EXPECT_LE(r.dagStats.childrenPerInst.max(), 16.0);
}

TEST(Pipeline, N2HasMoreArcsThanTableBuilders)
{
    Program prog = smallProgram();
    std::size_t arcs_n2 = 0, arcs_table = 0;
    {
        Program copy = prog;
        PipelineOptions opts;
        opts.builder = BuilderKind::N2Forward;
        arcs_n2 = runPipeline(copy, sparcstation2(), opts)
                      .dagStats.totalArcs;
    }
    {
        Program copy = prog;
        PipelineOptions opts;
        opts.builder = BuilderKind::TableForward;
        arcs_table = runPipeline(copy, sparcstation2(), opts)
                         .dagStats.totalArcs;
    }
    EXPECT_GT(arcs_n2, arcs_table);
}

TEST(Pipeline, ScheduleBlockMatchesPipelinePhases)
{
    Program prog = kernelProgram("daxpy");
    auto blocks = partitionBlocks(prog);
    PipelineOptions opts;
    opts.algorithm = AlgorithmKind::Warren;
    opts.builder = BuilderKind::N2Forward;
    auto result = scheduleBlock(BlockView(prog, blocks[0]),
                                sparcstation2(), opts);
    EXPECT_EQ(result.sched.order.size(), blocks[0].size());
    EXPECT_GT(result.sched.makespan, 0);
}

TEST(Pipeline, LandskovEvaluationUsesFreshGroundTruth)
{
    // Landskov DAGs drop timing, so evaluate mode must rebuild a
    // timing-complete ground truth rather than trusting them.
    Program prog = smallProgram();
    PipelineOptions opts;
    opts.builder = BuilderKind::N2Landskov;
    opts.evaluate = true;
    ProgramResult r = runPipeline(prog, sparcstation2(), opts);
    EXPECT_GT(r.cyclesOriginal, 0);
    EXPECT_GT(r.cyclesScheduled, 0);
}

} // namespace
} // namespace sched91
