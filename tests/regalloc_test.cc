/**
 * @file
 * Local register allocator tests: renaming correctness (verified by
 * executing the rewritten block and comparing every memory byte the
 * original block writes), spill accounting, pair alignment, and
 * integration with prepass scheduling.
 */

#include <gtest/gtest.h>

#include "core/pipeline.hh"
#include "ir/basic_block.hh"
#include "ir/parser.hh"
#include "machine/presets.hh"
#include "regalloc/local_allocator.hh"
#include "sim/executor.hh"
#include "workload/generator.hh"
#include "workload/kernels.hh"

namespace sched91
{
namespace
{

std::vector<std::uint32_t>
identityOrder(std::size_t n)
{
    std::vector<std::uint32_t> order(n);
    for (std::size_t i = 0; i < n; ++i)
        order[i] = static_cast<std::uint32_t>(i);
    return order;
}

/** Execute a raw instruction list from a seeded state. */
ExecState
runInsts(const std::vector<Instruction> &insts, std::uint64_t seed)
{
    Executor exec(seed);
    for (const Instruction &inst : insts)
        exec.execute(inst);
    return exec.state();
}

/** Every byte the original block writes must match in the rewritten
 * block's final memory (which may add spill-slot bytes). */
void
expectMemorySubset(const BlockView &block,
                   const std::vector<Instruction> &rewritten,
                   std::uint64_t seed)
{
    std::vector<Instruction> original;
    for (std::uint32_t i = 0; i < block.size(); ++i)
        original.push_back(block.inst(i));
    ExecState a = runInsts(original, seed);
    ExecState b = runInsts(rewritten, seed);
    for (const auto &[addr, byte] : a.memory) {
        auto it = b.memory.find(addr);
        ASSERT_NE(it, b.memory.end()) << "missing byte @" << addr;
        EXPECT_EQ(it->second, byte) << "byte @" << addr;
    }
}

BlockView
firstBlock(Program &prog, std::vector<BasicBlock> &blocks)
{
    blocks = partitionBlocks(prog);
    return BlockView(prog, blocks.at(0));
}

TEST(RegAlloc, NoPressureNoSpills)
{
    Program prog = parseAssembly(
        "ld [%i0], %l0\n"
        "add %l0, 1, %l1\n"
        "st %l1, [%i1]\n");
    std::vector<BasicBlock> blocks;
    BlockView block = firstBlock(prog, blocks);
    auto result = allocateBlock(block, identityOrder(block.size()));
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(result->overhead(), 0);
    EXPECT_EQ(result->insts.size(), block.size());
    expectMemorySubset(block, result->insts, 5);
}

TEST(RegAlloc, SpillsUnderPressureAndStaysCorrect)
{
    // Eight simultaneously live integer values, pool of three.
    Program prog = parseAssembly(
        "ld [%i0+0],  %l0\n"
        "ld [%i0+8],  %l1\n"
        "ld [%i0+16], %l2\n"
        "ld [%i0+24], %l3\n"
        "ld [%i0+32], %l4\n"
        "add %l0, %l1, %l5\n"
        "add %l2, %l3, %l6\n"
        "add %l5, %l6, %l7\n"
        "add %l7, %l4, %o0\n"
        "st %o0, [%i1]\n");
    std::vector<BasicBlock> blocks;
    BlockView block = firstBlock(prog, blocks);
    AllocatorOptions opts;
    opts.intPool = {8, 9, 10};
    auto result = allocateBlock(block, identityOrder(block.size()), opts);
    ASSERT_TRUE(result.has_value());
    EXPECT_GT(result->spillStores, 0);
    EXPECT_GT(result->spillLoads, 0);
    expectMemorySubset(block, result->insts, 17);
}

TEST(RegAlloc, FpPairsStayAligned)
{
    Program prog = parseAssembly(
        "lddf [%i0+0], %f16\n"
        "lddf [%i0+8], %f18\n"
        "lddf [%i0+16], %f20\n"
        "lddf [%i0+24], %f26\n"   // four doubles live at once
        "fmuld %f16, %f18, %f22\n"
        "faddd %f20, %f26, %f24\n"
        "fsubd %f22, %f24, %f16\n"
        "stdf %f16, [%i1]\n");
    std::vector<BasicBlock> blocks;
    BlockView block = firstBlock(prog, blocks);
    AllocatorOptions opts;
    opts.fpPool = {0, 4, 8}; // three pairs, four live values: must spill
    auto result = allocateBlock(block, identityOrder(block.size()), opts);
    ASSERT_TRUE(result.has_value());
    EXPECT_GT(result->spillStores, 0);
    for (const Instruction &inst : result->insts)
        for (std::size_t i = 0; i < inst.defs().size(); ++i)
            if (inst.defs()[i].kind() == Resource::Kind::FpReg &&
                inst.defPairHalves()[i] == 0 &&
                opcodeInfo(inst.op()).isDouble) {
                EXPECT_EQ(inst.defs()[i].index() % 2, 0)
                    << inst.toString();
            }
    expectMemorySubset(block, result->insts, 23);
}

TEST(RegAlloc, SameRegisterReadAndWrite)
{
    // add %l0, 1, %l0: the use and the def are different values and
    // may land in different physical registers.
    Program prog = parseAssembly(
        "ld [%i0], %l0\n"
        "add %l0, 1, %l0\n"
        "add %l0, 2, %l0\n"
        "st %l0, [%i1]\n");
    std::vector<BasicBlock> blocks;
    BlockView block = firstBlock(prog, blocks);
    auto result = allocateBlock(block, identityOrder(block.size()));
    ASSERT_TRUE(result.has_value());
    expectMemorySubset(block, result->insts, 29);
}

TEST(RegAlloc, LiveInValuesKeepTheirRegisters)
{
    Program prog = parseAssembly(
        "add %l0, %l1, %l2\n" // %l0, %l1 live in
        "st %l2, [%i1]\n");
    std::vector<BasicBlock> blocks;
    BlockView block = firstBlock(prog, blocks);
    AllocatorOptions opts;
    opts.intPool = {16, 17, 9}; // %l0/%l1 in the pool must be excluded
    auto result = allocateBlock(block, identityOrder(block.size()), opts);
    ASSERT_TRUE(result.has_value());
    expectMemorySubset(block, result->insts, 31);
}

TEST(RegAlloc, RejectsCallsAndIntPairs)
{
    Program call_prog = parseAssembly("call f\n");
    std::vector<BasicBlock> blocks;
    BlockView call_block = firstBlock(call_prog, blocks);
    EXPECT_FALSE(
        allocateBlock(call_block, identityOrder(call_block.size()))
            .has_value());

    Program pair_prog = parseAssembly("ldd [%i0], %l0\n");
    std::vector<BasicBlock> blocks2;
    BlockView pair_block = firstBlock(pair_prog, blocks2);
    EXPECT_FALSE(
        allocateBlock(pair_block, identityOrder(pair_block.size()))
            .has_value());
}

TEST(RegAlloc, FailsWhenPoolSmallerThanOneInstruction)
{
    Program prog = parseAssembly(
        "ld [%i0], %l0\n"
        "ld [%i0+8], %l1\n"
        "add %l0, %l1, %l2\n"
        "st %l2, [%i1]\n");
    std::vector<BasicBlock> blocks;
    BlockView block = firstBlock(prog, blocks);
    AllocatorOptions opts;
    opts.intPool = {8}; // add needs two sources + dest reuse
    EXPECT_FALSE(allocateBlock(block, identityOrder(block.size()), opts)
                     .has_value());
}

TEST(RegAlloc, WorksOnScheduledOrders)
{
    // Allocating a reordered (scheduled) block is the prepass flow.
    Program prog = kernelProgram("livermore1");
    std::vector<BasicBlock> blocks;
    BlockView block = firstBlock(prog, blocks);

    PipelineOptions popts;
    popts.algorithm = AlgorithmKind::Krishnamurthy;
    auto sched = scheduleBlock(block, sparcstation2(), popts);

    AllocatorOptions opts;
    opts.fpPool = {0, 2, 4, 6};
    opts.intPool = {8, 9, 10, 11};
    auto result = allocateBlock(block, sched.sched.order, opts);
    ASSERT_TRUE(result.has_value());

    // Execute the *scheduled then allocated* block against the
    // original program order: memory effects must match.
    std::vector<Instruction> original;
    for (std::uint32_t i = 0; i < block.size(); ++i)
        original.push_back(block.inst(i));
    ExecState a = runInsts(original, 37);
    ExecState b = runInsts(result->insts, 37);
    for (const auto &[addr, byte] : a.memory) {
        auto it = b.memory.find(addr);
        ASSERT_NE(it, b.memory.end());
        EXPECT_EQ(it->second, byte);
    }
}

TEST(RegAlloc, SyntheticBlocksUnderManyPressures)
{
    WorkloadProfile p = profileByName("lloops");
    p.numBlocks = 6;
    p.totalInsts = 150;
    p.maxBlock = 40;
    p.secondBlock = 0;
    p.callProb = 0.0;
    Program prog = generateProgram(p);
    auto blocks = partitionBlocks(prog);

    for (const auto &bb : blocks) {
        BlockView block(prog, bb);
        for (int pairs : {3, 5, 8}) {
            AllocatorOptions opts;
            opts.fpPool.clear();
            for (int i = 0; i < pairs; ++i)
                opts.fpPool.push_back(2 * i);
            opts.intPool = {8, 9, 10, 11, 12};
            auto result =
                allocateBlock(block, identityOrder(block.size()), opts);
            if (!result.has_value())
                continue; // pool too small for some instruction
            expectMemorySubset(block, result->insts, 41);
        }
    }
}

} // namespace
} // namespace sched91
