/**
 * @file
 * Per-block quality report tests.
 */

#include <gtest/gtest.h>

#include "machine/presets.hh"
#include "sched/report.hh"
#include "workload/generator.hh"
#include "workload/kernels.hh"

namespace sched91
{
namespace
{

TEST(Report, CoversEveryBlock)
{
    Program prog = kernelProgram("daxpy");
    PipelineOptions opts;
    opts.algorithm = AlgorithmKind::Krishnamurthy;
    ProgramReport report =
        reportProgram(prog, sparcstation2(), opts);
    Program copy = prog;
    EXPECT_EQ(report.blocks.size(), partitionBlocks(copy).size());

    long long orig = 0, sched = 0;
    for (const BlockReport &b : report.blocks) {
        orig += b.cyclesOriginal;
        sched += b.cyclesScheduled;
        EXPECT_GE(b.cyclesScheduled, b.criticalPath);
        EXPECT_GE(b.cyclesOriginal, b.criticalPath);
        EXPECT_GT(b.size, 0u);
    }
    EXPECT_EQ(orig, report.cyclesOriginal);
    EXPECT_EQ(sched, report.cyclesScheduled);
}

TEST(Report, WorstBlocksSortedByExcess)
{
    WorkloadProfile p = profileByName("lloops");
    p.numBlocks = 20;
    p.totalInsts = 400;
    p.maxBlock = 60;
    p.secondBlock = 0;
    Program prog = generateProgram(p);
    PipelineOptions opts;
    ProgramReport report =
        reportProgram(prog, sparcstation2(), opts);

    auto worst = report.worstBlocks(5);
    ASSERT_LE(worst.size(), 5u);
    for (std::size_t i = 1; i < worst.size(); ++i)
        EXPECT_GE(worst[i - 1].slackToBound(), worst[i].slackToBound());
}

TEST(Report, RenderContainsTotals)
{
    Program prog = kernelProgram("grep-scan");
    PipelineOptions opts;
    ProgramReport report =
        reportProgram(prog, sparcstation2(), opts);
    std::string text = report.render(3);
    EXPECT_NE(text.find("cycles"), std::string::npos);
    EXPECT_NE(text.find("excess"), std::string::npos);
}

} // namespace
} // namespace sched91
