/**
 * @file
 * Reservation-table scheduler tests (paper Section 1's refined
 * scheduling form): pattern matching, hole back-filling, dependence
 * floors, and end-to-end validity.
 */

#include <gtest/gtest.h>

#include "dag/table_forward.hh"
#include "heuristics/static_passes.hh"
#include "ir/parser.hh"
#include "machine/presets.hh"
#include "sched/pipeline_sim.hh"
#include "sched/reservation.hh"
#include "sim/executor.hh"
#include "workload/kernels.hh"

namespace sched91
{
namespace
{

TEST(ReservationTable, PatternsPerClass)
{
    MachineModel m = sparcstation2();
    auto load = reservationPattern(m, InstClass::Load);
    ASSERT_EQ(load.size(), 2u); // agen + mem port
    EXPECT_EQ(load[0].fu, FuKind::IntAlu);
    EXPECT_EQ(load[1].fu, FuKind::MemPort);

    auto div = reservationPattern(m, InstClass::FpDiv);
    ASSERT_EQ(div.size(), 1u);
    EXPECT_EQ(div[0].duration, m.latency(InstClass::FpDiv));
}

TEST(ReservationTable, FitAndPlace)
{
    MachineModel m = sparcstation2();
    ReservationTable table(m);
    auto div = reservationPattern(m, InstClass::FpDiv);

    EXPECT_TRUE(table.fits(div, 0));
    table.place(div, 0);
    EXPECT_FALSE(table.fits(div, 0));
    EXPECT_FALSE(table.fits(div, 5));
    EXPECT_EQ(table.earliestFit(div, 0), m.latency(InstClass::FpDiv));
}

TEST(ReservationTable, PooledUnitsShareCycles)
{
    MachineModel m = sparcstation2();
    m.fuDesc(FuKind::FpDivSqrt).count = 2;
    ReservationTable table(m);
    auto div = reservationPattern(m, InstClass::FpDiv);
    table.place(div, 0);
    EXPECT_TRUE(table.fits(div, 0)); // second divider
    table.place(div, 0);
    EXPECT_FALSE(table.fits(div, 0));
}

TEST(ReservationScheduler, ValidTopologicalOrders)
{
    MachineModel machine = sparcstation2();
    for (const std::string &kernel : kernelNames()) {
        Program prog = kernelProgram(kernel);
        auto blocks = partitionBlocks(prog);
        for (const auto &bb : blocks) {
            Dag dag = TableForwardBuilder().build(BlockView(prog, bb),
                                                  machine,
                                                  BuildOptions{});
            runAllStaticPasses(dag);
            ReservationResult r =
                scheduleWithReservationTable(dag, machine);
            EXPECT_TRUE(isValidTopologicalOrder(dag, r.sched.order))
                << kernel;
            EXPECT_GT(r.makespan, 0);
        }
    }
}

TEST(ReservationScheduler, RespectsDependenceFloors)
{
    Program prog = parseAssembly(
        "ld [%o0], %g1\n"
        "add %g1, 1, %g2\n");
    auto blocks = partitionBlocks(prog);
    MachineModel machine = sparcstation2();
    Dag dag = TableForwardBuilder().build(BlockView(prog, blocks[0]),
                                          machine, BuildOptions{});
    runAllStaticPasses(dag);
    ReservationResult r = scheduleWithReservationTable(dag, machine);
    EXPECT_GE(r.cycle[1], r.cycle[0] + machine.latency(InstClass::Load));
}

TEST(ReservationScheduler, BackFillsHoles)
{
    // A divide placed first blocks the divider for 20 cycles; later,
    // lower-priority ALU work must still land in cycles 1..19 rather
    // than after the divide.
    Program prog = parseAssembly(
        "fdivd %f0, %f2, %f4\n"
        "faddd %f4, %f6, %f8\n" // depends on the divide
        "add %g1, 1, %g2\n"     // independent fillers
        "add %g3, 1, %g4\n");
    auto blocks = partitionBlocks(prog);
    MachineModel machine = sparcstation2();
    Dag dag = TableForwardBuilder().build(BlockView(prog, blocks[0]),
                                          machine, BuildOptions{});
    runAllStaticPasses(dag);
    ReservationResult r = scheduleWithReservationTable(dag, machine);
    EXPECT_LT(r.cycle[2], 20);
    EXPECT_LT(r.cycle[3], 20);
    EXPECT_GE(r.cycle[1], 20);
}

TEST(ReservationScheduler, StructuralHazardSerializesDivides)
{
    Program prog = parseAssembly(
        "fdivd %f0, %f2, %f4\n"
        "fdivd %f6, %f8, %f10\n");
    auto blocks = partitionBlocks(prog);
    MachineModel machine = sparcstation2();
    Dag dag = TableForwardBuilder().build(BlockView(prog, blocks[0]),
                                          machine, BuildOptions{});
    runAllStaticPasses(dag);
    ReservationResult r = scheduleWithReservationTable(dag, machine);
    EXPECT_EQ(std::abs(r.cycle[0] - r.cycle[1]),
              machine.latency(InstClass::FpDiv));
}

TEST(ReservationScheduler, PreservesSemantics)
{
    MachineModel machine = sparcstation2();
    for (const std::string &kernel : kernelNames()) {
        Program prog = kernelProgram(kernel);
        auto blocks = partitionBlocks(prog);
        for (const auto &bb : blocks) {
            BlockView block(prog, bb);
            Dag dag = TableForwardBuilder().build(block, machine,
                                                  BuildOptions{});
            runAllStaticPasses(dag);
            ReservationResult r =
                scheduleWithReservationTable(dag, machine);
            std::vector<std::uint32_t> identity(block.size());
            for (std::uint32_t i = 0; i < identity.size(); ++i)
                identity[i] = i;
            EXPECT_EQ(runBlock(block, identity, 77),
                      runBlock(block, r.sched.order, 77))
                << kernel;
        }
    }
}

} // namespace
} // namespace sched91
