/**
 * @file
 * Fault-isolation tests: source-located diagnostics and lenient parse
 * recovery over the malformed corpus (tests/corpus/malformed/), the
 * independent schedule verifier (accept on real schedules, reject on
 * corrupted ones), and the pipeline's per-block containment ladder —
 * n**2 -> table builder fallback for oversized blocks, original-order
 * degradation on budget overrun.  See docs/ROBUSTNESS.md.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include "core/pipeline.hh"
#include "dag/table_forward.hh"
#include "heuristics/static_passes.hh"
#include "ir/parser.hh"
#include "machine/presets.hh"
#include "obs/counters.hh"
#include "obs/emitter.hh"
#include "sched/delay_slot.hh"
#include "sched/registry.hh"
#include "sched/reservation.hh"
#include "sched/verifier.hh"
#include "support/diagnostics.hh"
#include "support/logging.hh"
#include "workload/generator.hh"
#include "workload/profiles.hh"

namespace sched91
{
namespace
{

std::string
corpusPath(const std::string &name)
{
    return std::string(SCHED91_SOURCE_DIR "/tests/corpus/malformed/") +
           name;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in) << "cannot open " << path;
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
}

/** name, expected lenient error count, expected surviving insts. */
struct CorpusCase
{
    const char *name;
    std::size_t errors;
    std::size_t insts;
};

const CorpusCase kCorpus[] = {
    {"bad_mnemonic.s", 4, 5},      {"truncated_operands.s", 5, 5},
    {"garbage.s", 10, 1},          {"register_typos.s", 5, 5},
    {"bad_address.s", 7, 4},       {"oversized_block.s", 0, 601},
    {"suspicious.s", 0, 8},
};

// --- Diagnostics engine --------------------------------------------

TEST(Diagnostics, RendersGccStyleLocations)
{
    Diag d;
    d.severity = Severity::Error;
    d.file = "foo.s";
    d.line = 12;
    d.col = 7;
    d.message = "unknown mnemonic 'bogus'";
    EXPECT_EQ(d.render(), "foo.s:12:7: error: unknown mnemonic 'bogus'");

    d.col = 0; // whole-line diagnostic
    EXPECT_EQ(d.render(), "foo.s:12: error: unknown mnemonic 'bogus'");

    d.line = 0; // whole-file diagnostic
    EXPECT_EQ(d.render(), "foo.s: error: unknown mnemonic 'bogus'");

    d.severity = Severity::Warning;
    d.file.clear();
    EXPECT_EQ(d.render(), "<input>: warning: unknown mnemonic 'bogus'");
}

TEST(Diagnostics, LenientEngineCollects)
{
    DiagnosticEngine diags;
    diags.error("a.s", 1, 2, "first");
    diags.warning("a.s", 3, 0, "second");
    diags.error("a.s", 5, 1, "third");
    EXPECT_EQ(diags.errorCount(), 2u);
    EXPECT_EQ(diags.warningCount(), 1u);
    EXPECT_TRUE(diags.hasErrors());
    ASSERT_EQ(diags.diags().size(), 3u);
    EXPECT_EQ(diags.render(),
              "a.s:1:2: error: first\n"
              "a.s:3: warning: second\n"
              "a.s:5:1: error: third\n");
}

TEST(Diagnostics, StrictEngineThrowsOnFirstError)
{
    DiagnosticEngine::Options opts;
    opts.strict = true;
    DiagnosticEngine diags(opts);
    diags.warning("a.s", 1, 1, "warnings never throw");
    EXPECT_EQ(diags.warningCount(), 1u);
    try {
        diags.error("a.s", 2, 3, "boom");
        FAIL() << "strict error should have thrown";
    } catch (const FatalError &e) {
        EXPECT_STREQ(e.what(), "a.s:2:3: error: boom");
    }
}

TEST(Diagnostics, ErrorCapStopsTheFlood)
{
    DiagnosticEngine::Options opts;
    opts.maxErrors = 3;
    DiagnosticEngine diags(opts);
    diags.error("junk.bin", 1, 0, "e1");
    diags.error("junk.bin", 2, 0, "e2");
    diags.error("junk.bin", 3, 0, "e3");
    try {
        diags.error("junk.bin", 4, 0, "e4");
        FAIL() << "exceeding the cap should have thrown";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("too many errors"),
                  std::string::npos);
    }
}

// --- Lenient parsing over the malformed corpus ---------------------

TEST(MalformedCorpus, LenientParseRecoversEveryFile)
{
    for (const CorpusCase &c : kCorpus) {
        std::string text = readFile(corpusPath(c.name));
        DiagnosticEngine diags;
        Program prog = parseAssembly(text, diags, c.name);
        EXPECT_EQ(diags.errorCount(), c.errors) << c.name << ":\n"
                                                << diags.render();
        EXPECT_EQ(prog.size(), c.insts) << c.name;
        for (const Diag &d : diags.diags()) {
            EXPECT_EQ(d.file, c.name);
            EXPECT_GT(d.line, 0) << c.name;
        }
    }
}

TEST(MalformedCorpus, StrictOverloadThrowsOnEveryErrorFile)
{
    for (const CorpusCase &c : kCorpus) {
        std::string text = readFile(corpusPath(c.name));
        if (c.errors == 0) {
            EXPECT_NO_THROW(parseAssembly(text)) << c.name;
            continue;
        }
        EXPECT_THROW(parseAssembly(text), FatalError) << c.name;
    }
}

TEST(MalformedCorpus, SurvivorsStillSchedule)
{
    MachineModel machine = sparcstation2();
    for (const CorpusCase &c : kCorpus) {
        if (c.insts == 0)
            continue;
        std::string text = readFile(corpusPath(c.name));
        DiagnosticEngine diags;
        Program prog = parseAssembly(text, diags, c.name);
        stampMemGenerations(prog);
        PipelineOptions opts;
        ProgramResult r = runPipeline(prog, machine, opts);
        EXPECT_EQ(r.numInsts, c.insts) << c.name;
        EXPECT_EQ(r.blocksDegraded, 0u) << c.name;
        EXPECT_EQ(r.verifierRejections, 0u) << c.name;
    }
}

TEST(Parser, DiagCarriesLineAndColumn)
{
    DiagnosticEngine diags;
    Program prog = parseAssembly("add %g1, %g2, %g3\nadd %g1, %g2\n",
                                 diags, "two.s");
    EXPECT_EQ(prog.size(), 1u);
    ASSERT_EQ(diags.diags().size(), 1u);
    const Diag &d = diags.diags()[0];
    EXPECT_EQ(d.file, "two.s");
    EXPECT_EQ(d.line, 2);
    EXPECT_GT(d.col, 0);
    EXPECT_NE(d.message.find("expects 3"), std::string::npos);
}

TEST(Parser, LenientParseCountsParseErrors)
{
    obs::setEnabled(true);
    obs::CounterSet before = obs::CounterRegistry::global().snapshot();
    std::string text = readFile(corpusPath("garbage.s"));
    DiagnosticEngine diags;
    parseAssembly(text, diags, "garbage.s");
    obs::CounterSet delta =
        obs::CounterRegistry::global().deltaSince(before);
    obs::setEnabled(false);
    EXPECT_EQ(delta.value("robust.parse_errors"), 10u);
}

// --- Schedule verifier ---------------------------------------------

/** A block with real dependences and a block-ending branch. */
Dag
verifierDag(Program &prog, const MachineModel &machine)
{
    DiagnosticEngine diags;
    prog = parseAssembly("	add	%g1, %g2, %g3\n"
                         "	add	%g3, %g1, %g4\n"
                         "	ld	[%g4 + 4], %g5\n"
                         "	sub	%g5, 1, %g6\n"
                         "	st	%g6, [%g4 + 8]\n"
                         "	bne	out\n",
                         diags, "verifier.s");
    EXPECT_EQ(diags.errorCount(), 0u);
    stampMemGenerations(prog);
    auto blocks = partitionBlocks(prog);
    EXPECT_EQ(blocks.size(), 1u);
    BlockView block(prog, blocks[0]);
    return TableForwardBuilder().build(block, machine, BuildOptions{});
}

TEST(Verifier, AcceptsOriginalOrder)
{
    Program prog;
    MachineModel machine = sparcstation2();
    Dag dag = verifierDag(prog, machine);
    Schedule sched = originalOrderSchedule(dag);
    VerifyResult vr = verifySchedule(dag, sched, machine);
    EXPECT_TRUE(vr.ok()) << vr.summary();
    EXPECT_EQ(vr.summary(), "ok");
}

TEST(Verifier, AcceptsEveryAlgorithmOnRealSchedules)
{
    Program prog;
    MachineModel machine = sparcstation2();
    Dag dag = verifierDag(prog, machine);
    auto blocks = partitionBlocks(prog);
    BlockView block(prog, blocks[0]);
    for (AlgorithmKind kind : allAlgorithms()) {
        PipelineOptions opts;
        opts.algorithm = kind;
        // scheduleBlock verifies internally (verify defaults on) and
        // panics on rejection, so reaching here is the assertion.
        EXPECT_NO_THROW(scheduleBlock(block, machine, opts))
            << algorithmName(kind);
    }
}

TEST(Verifier, RejectsBackwardArc)
{
    Program prog;
    MachineModel machine = sparcstation2();
    Dag dag = verifierDag(prog, machine);
    Schedule sched = originalOrderSchedule(dag);
    // Nodes 0 -> 1 share %g3: swapping them runs that arc backward.
    std::swap(sched.order[0], sched.order[1]);
    VerifyResult vr = verifySchedule(dag, sched, machine);
    EXPECT_FALSE(vr.ok());
    EXPECT_NE(vr.summary().find("runs backward"), std::string::npos)
        << vr.summary();
}

TEST(Verifier, RejectsDuplicateNode)
{
    Program prog;
    MachineModel machine = sparcstation2();
    Dag dag = verifierDag(prog, machine);
    Schedule sched = originalOrderSchedule(dag);
    sched.order[1] = sched.order[0];
    VerifyResult vr = verifySchedule(dag, sched, machine);
    EXPECT_FALSE(vr.ok());
    EXPECT_NE(vr.summary().find("scheduled twice"), std::string::npos)
        << vr.summary();
}

TEST(Verifier, RejectsTruncatedOrder)
{
    Program prog;
    MachineModel machine = sparcstation2();
    Dag dag = verifierDag(prog, machine);
    Schedule sched = originalOrderSchedule(dag);
    sched.order.pop_back();
    sched.issueCycle.clear();
    VerifyResult vr = verifySchedule(dag, sched, machine);
    EXPECT_FALSE(vr.ok());
    EXPECT_NE(vr.summary().find("covers"), std::string::npos)
        << vr.summary();
}

TEST(Verifier, RejectsBranchNotLast)
{
    Program prog;
    MachineModel machine = sparcstation2();
    Dag dag = verifierDag(prog, machine);
    Schedule sched = originalOrderSchedule(dag);
    // Rotate the branch to the front; everything else slides down.
    std::rotate(sched.order.begin(), sched.order.end() - 1,
                sched.order.end());
    VerifyResult vr = verifySchedule(dag, sched, machine);
    EXPECT_FALSE(vr.ok());
}

TEST(Verifier, RejectsLatencyViolatingTimingClaim)
{
    Program prog;
    MachineModel machine = sparcstation2();
    Dag dag = verifierDag(prog, machine);
    Schedule sched = originalOrderSchedule(dag);
    // Claim every instruction issues at cycle 1: any arc with a
    // positive delay is violated (the load feeding the sub has one).
    sched.issueCycle.assign(sched.order.size(), 1);
    VerifyResult vr = verifySchedule(dag, sched, machine);
    EXPECT_FALSE(vr.ok());
    EXPECT_NE(vr.summary().find("latency violated"), std::string::npos)
        << vr.summary();
}

TEST(Verifier, RejectsNonMonotoneTimingClaim)
{
    Program prog;
    MachineModel machine = sparcstation2();
    Dag dag = verifierDag(prog, machine);
    Schedule sched = originalOrderSchedule(dag);
    sched.issueCycle.assign(sched.order.size(), 0);
    sched.issueCycle.front() = 9; // later positions then go backward
    VerifyResult vr = verifySchedule(dag, sched, machine);
    EXPECT_FALSE(vr.ok());
    EXPECT_NE(vr.summary().find("monotone"), std::string::npos)
        << vr.summary();
}

TEST(Verifier, ReservationAcceptsRealAndRejectsCorrupted)
{
    Program prog;
    MachineModel machine = sparcstation2();
    Dag dag = verifierDag(prog, machine);
    runAllStaticPasses(dag);
    ReservationResult res =
        scheduleWithReservationTable(dag, machine);
    VerifyResult vr = verifyReservation(dag, res, machine);
    EXPECT_TRUE(vr.ok()) << vr.summary();

    // Collapse every placement onto cycle 0: dependent instructions
    // now violate latency and patterns pile onto the same slots.
    ReservationResult bad = res;
    std::fill(bad.cycle.begin(), bad.cycle.end(), 0);
    vr = verifyReservation(dag, bad, machine);
    EXPECT_FALSE(vr.ok());
}

// --- Pipeline containment ------------------------------------------

TEST(Pipeline, VerifierCleanOnTable3Workloads)
{
    MachineModel machine = sparcstation2();
    for (const WorkloadProfile &profile : allProfiles()) {
        for (AlgorithmKind kind : allAlgorithms()) {
            for (BuilderKind builder :
                 {BuilderKind::N2Forward, BuilderKind::TableForward,
                  BuilderKind::TableBackward}) {
                Program prog = cachedProgram(profile.name);
                PipelineOptions opts;
                opts.algorithm = kind;
                opts.builder = builder;
                // F1 window: keeps the n**2 builders off the
                // 2500/11750-inst fpppp blocks (they fall back).
                opts.maxBlockInsts = 400;
                ProgramResult r = runPipeline(prog, machine, opts);
                EXPECT_EQ(r.verifierRejections, 0u)
                    << profile.name << " " << algorithmName(kind);
                EXPECT_EQ(r.blocksDegraded, 0u)
                    << profile.name << " " << algorithmName(kind);
            }
        }
    }
}

TEST(Pipeline, OversizedBlockFallsBackInsteadOfDegrading)
{
    std::string text = readFile(corpusPath("oversized_block.s"));
    DiagnosticEngine diags;
    Program prog = parseAssembly(text, diags, "oversized_block.s");
    EXPECT_EQ(diags.errorCount(), 0u);
    stampMemGenerations(prog);
    MachineModel machine = sparcstation2();

    PipelineOptions opts;
    opts.builder = BuilderKind::N2Forward;
    opts.maxBlockInsts = 400;
    ProgramResult r = runPipeline(prog, machine, opts);
    EXPECT_EQ(r.builderFallbacks, 1u);
    EXPECT_EQ(r.blocksDegraded, 0u);
    EXPECT_EQ(r.verifierRejections, 0u);
    ASSERT_EQ(r.blockIssues.size(), 1u);
    EXPECT_EQ(r.blockIssues[0].stage, "fallback");
    EXPECT_FALSE(r.blockIssues[0].degraded);

    // Same run without the window: the n**2 builder handles it (just
    // slower), so no fallback is recorded.
    Program prog2 = parseAssembly(text);
    stampMemGenerations(prog2);
    opts.maxBlockInsts = 0;
    r = runPipeline(prog2, machine, opts);
    EXPECT_EQ(r.builderFallbacks, 0u);
    EXPECT_EQ(r.blocksDegraded, 0u);
}

TEST(Pipeline, BudgetOverrunDegradesToOriginalOrder)
{
    MachineModel machine = sparcstation2();
    Program prog = cachedProgram("dfa");
    std::vector<Schedule> schedules;
    PipelineOptions opts;
    opts.evaluate = true;
    opts.maxBlockSeconds = 1e-12; // every block overruns
    opts.schedules = &schedules;
    ProgramResult r = runPipeline(prog, machine, opts);
    EXPECT_EQ(r.blocksDegraded, r.numBlocks);
    EXPECT_EQ(r.blockIssues.size(), r.numBlocks);
    // Degraded blocks claim no speedup...
    EXPECT_EQ(r.cyclesOriginal, r.cyclesScheduled);
    // ...and emit the identity order with no timing claim.
    ASSERT_EQ(schedules.size(), r.numBlocks);
    for (const Schedule &sched : schedules) {
        std::vector<std::uint32_t> identity(sched.order.size());
        std::iota(identity.begin(), identity.end(), 0u);
        EXPECT_EQ(sched.order, identity);
        EXPECT_TRUE(sched.issueCycle.empty());
    }
    for (const ProgramResult::BlockIssue &issue : r.blockIssues) {
        EXPECT_EQ(issue.stage, "budget");
        EXPECT_TRUE(issue.degraded);
    }
}

TEST(Pipeline, StrictModePropagatesBudgetDegradationsOnly)
{
    // containFaults=false still honours the budget ladder (an explicit
    // liveness knob), but a verifier rejection would propagate.  With
    // healthy inputs nothing throws either way.
    MachineModel machine = sparcstation2();
    Program prog = cachedProgram("dfa");
    PipelineOptions opts;
    opts.containFaults = false;
    EXPECT_NO_THROW(runPipeline(prog, machine, opts));
}

TEST(Pipeline, DegradationIsDeterministicAcrossThreadCounts)
{
    MachineModel machine = sparcstation2();
    PipelineOptions base;
    base.maxBlockSeconds = 1e-12;
    std::vector<Schedule> one, four;
    Program p1 = cachedProgram("regex");
    base.threads = 1;
    base.schedules = &one;
    ProgramResult r1 = runPipeline(p1, machine, base);
    Program p4 = cachedProgram("regex");
    base.threads = 4;
    base.schedules = &four;
    ProgramResult r4 = runPipeline(p4, machine, base);
    EXPECT_EQ(r1.blocksDegraded, r4.blocksDegraded);
    ASSERT_EQ(one.size(), four.size());
    for (std::size_t b = 0; b < one.size(); ++b)
        EXPECT_EQ(one[b].order, four[b].order) << "block " << b;
}

// --- Parser warning channel ----------------------------------------

TEST(ParserWarnings, OutOfRangeImmediateWarnsButParses)
{
    DiagnosticEngine diags;
    Program prog =
        parseAssembly("add %g1, 5000, %g2\n", diags, "imm.s");
    EXPECT_EQ(diags.errorCount(), 0u);
    ASSERT_EQ(diags.warningCount(), 1u);
    EXPECT_NE(diags.render().find("13-bit"), std::string::npos);
    EXPECT_EQ(prog.size(), 1u); // the instruction survives
}

TEST(ParserWarnings, OutOfRangeMemoryOffsetWarns)
{
    DiagnosticEngine diags;
    parseAssembly("ld [%g1 + 8192], %g2\n", diags, "mem.s");
    EXPECT_EQ(diags.errorCount(), 0u);
    EXPECT_EQ(diags.warningCount(), 1u);
    EXPECT_NE(diags.render().find("memory offset"), std::string::npos);
}

TEST(ParserWarnings, BoundaryImmediatesAndSethiAreClean)
{
    DiagnosticEngine diags;
    parseAssembly("add %g1, 4095, %g2\n"
                  "add %g1, -4096, %g3\n"
                  "sethi %hi(buf), %g4\n", // 22-bit field, not simm13
                  diags, "edge.s");
    EXPECT_EQ(diags.errorCount(), 0u);
    EXPECT_EQ(diags.warningCount(), 0u) << diags.render();
}

TEST(ParserWarnings, DoublyDefinedLabelWarns)
{
    DiagnosticEngine diags;
    Program prog = parseAssembly("top:\n"
                                 "    nop\n"
                                 "top:\n"
                                 "    nop\n",
                                 diags, "dup.s");
    EXPECT_EQ(diags.errorCount(), 0u);
    ASSERT_EQ(diags.warningCount(), 1u);
    EXPECT_NE(diags.render().find("defined more than once"),
              std::string::npos);
    EXPECT_EQ(prog.size(), 2u);
}

TEST(ParserWarnings, StrictModeDoesNotThrowOnWarnings)
{
    DiagnosticEngine::Options dopts;
    dopts.strict = true;
    DiagnosticEngine diags(dopts);
    Program prog;
    EXPECT_NO_THROW(prog = parseAssembly("add %g1, 99999, %g2\n",
                                         diags, "warn.s"));
    EXPECT_EQ(diags.warningCount(), 1u);
    EXPECT_EQ(prog.size(), 1u);
}

TEST(ParserWarnings, SurfaceInStatsJson)
{
    ProgramResult r;
    r.parseErrors = 1;
    r.parseWarnings = 5;
    obs::RunMeta meta;
    std::string json =
        obs::programResultJson(r, meta, obs::CounterSet{});
    EXPECT_NE(json.find("\"parse_errors\":1"), std::string::npos);
    EXPECT_NE(json.find("\"parse_warnings\":5"), std::string::npos);
}

// --- Delay-slot schedules through the verifier ---------------------

struct BlockScheduleFixture
{
    Program prog;
    std::vector<BasicBlock> blocks;
};

/** A block whose delay slot fills: independent add, cmp feeding the
 * block-ending branch. */
BlockScheduleFixture
delaySlotFixture()
{
    BlockScheduleFixture fx;
    fx.prog = parseAssembly("ld [%o0], %g1\n"
                            "add %g2, %g3, %g4\n"
                            "cmp %g1, 0\n"
                            "bne out\n");
    fx.blocks = partitionBlocks(fx.prog);
    return fx;
}

TEST(VerifierDelaySlot, AcceptsFilledScheduleInDelaySlotMode)
{
    BlockScheduleFixture fx = delaySlotFixture();
    MachineModel machine = sparcstation2();
    Dag dag = TableForwardBuilder().build(
        BlockView(fx.prog, fx.blocks[0]), machine, BuildOptions{});
    Schedule sched = originalOrderSchedule(dag);
    ASSERT_TRUE(fillBranchDelaySlot(dag, sched).filled);

    // Default mode: the filler behind the branch is a violation.
    VerifyResult strict = verifySchedule(dag, sched, machine);
    EXPECT_FALSE(strict.ok());

    // Delay-slot mode: the same order is legal.
    VerifyOptions vopts;
    vopts.allowDelaySlot = true;
    VerifyResult relaxed = verifySchedule(dag, sched, machine, vopts);
    EXPECT_TRUE(relaxed.ok()) << relaxed.summary();
}

TEST(VerifierDelaySlot, RejectsDataViolationEvenInDelaySlotMode)
{
    BlockScheduleFixture fx = delaySlotFixture();
    MachineModel machine = sparcstation2();
    Dag dag = TableForwardBuilder().build(
        BlockView(fx.prog, fx.blocks[0]), machine, BuildOptions{});
    Schedule sched = originalOrderSchedule(dag);
    ASSERT_TRUE(fillBranchDelaySlot(dag, sched).filled);

    // Corrupt the filled order: put the cmp (which feeds the branch
    // through a data arc) into the slot instead.  allowDelaySlot only
    // relaxes the advisory control anchor, never data dependence.
    std::swap(sched.order[sched.order.size() - 1],
              sched.order[sched.order.size() - 3]);
    sched.issueCycle.clear(); // orders only, no timing claim
    VerifyOptions vopts;
    vopts.allowDelaySlot = true;
    EXPECT_FALSE(verifySchedule(dag, sched, machine, vopts).ok());
}

TEST(VerifierDelaySlot, UnfilledScheduleStillVerifiesInBothModes)
{
    BlockScheduleFixture fx = delaySlotFixture();
    MachineModel machine = sparcstation2();
    Dag dag = TableForwardBuilder().build(
        BlockView(fx.prog, fx.blocks[0]), machine, BuildOptions{});
    Schedule sched = originalOrderSchedule(dag);
    EXPECT_TRUE(verifySchedule(dag, sched, machine).ok());
    VerifyOptions vopts;
    vopts.allowDelaySlot = true;
    EXPECT_TRUE(verifySchedule(dag, sched, machine, vopts).ok());
}

} // namespace
} // namespace sched91
