/**
 * @file
 * Assembly rendering round-trip property tests: rendering a program
 * (including synthesized workloads) and re-parsing it must reproduce
 * the same dependence semantics — opcode, defs, uses, immediates,
 * memory expressions, and block structure.
 */

#include <gtest/gtest.h>

#include "ir/basic_block.hh"
#include "ir/parser.hh"
#include "workload/generator.hh"
#include "workload/kernels.hh"

namespace sched91
{
namespace
{

void
expectSameSemantics(const Program &a, const Program &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        const Instruction &x = a[i];
        const Instruction &y = b[i];
        EXPECT_EQ(x.op(), y.op()) << i << ": " << x.toString();
        EXPECT_EQ(x.defs(), y.defs()) << i << ": " << x.toString();
        EXPECT_EQ(x.uses(), y.uses()) << i << ": " << x.toString();
        EXPECT_EQ(x.usesImm(), y.usesImm()) << i;
        if (x.usesImm()) {
            EXPECT_EQ(x.imm(), y.imm()) << i;
        }
        EXPECT_EQ(x.mem().has_value(), y.mem().has_value()) << i;
        if (x.mem().has_value()) {
            EXPECT_EQ(x.mem()->exprKey(), y.mem()->exprKey()) << i;
            EXPECT_EQ(x.mem()->width, y.mem()->width)
                << i << ": " << x.toString();
        }
        EXPECT_EQ(x.target(), y.target()) << i;
        EXPECT_EQ(x.annul(), y.annul()) << i;
    }
}

TEST(RoundTrip, Kernels)
{
    for (const std::string &name : kernelNames()) {
        Program orig = kernelProgram(name);
        Program back = parseAssembly(orig.toString());
        expectSameSemantics(orig, back);
    }
}

TEST(RoundTrip, SyntheticPrograms)
{
    for (const char *profile : {"grep", "lloops"}) {
        WorkloadProfile p = profileByName(profile);
        p.numBlocks = 30;
        p.totalInsts = 400;
        p.maxBlock = 64;
        p.secondBlock = 0;
        Program orig = generateProgram(p);
        Program back = parseAssembly(orig.toString());
        expectSameSemantics(orig, back);
    }
}

TEST(RoundTrip, BlockStructureSurvives)
{
    WorkloadProfile p = profileByName("dfa");
    p.numBlocks = 25;
    p.totalInsts = 200;
    p.maxBlock = 30;
    Program orig = generateProgram(p);
    Program back = parseAssembly(orig.toString());

    auto blocks_a = partitionBlocks(orig);
    auto blocks_b = partitionBlocks(back);
    ASSERT_EQ(blocks_a.size(), blocks_b.size());
    for (std::size_t i = 0; i < blocks_a.size(); ++i) {
        EXPECT_EQ(blocks_a[i].begin, blocks_b[i].begin);
        EXPECT_EQ(blocks_a[i].end, blocks_b[i].end);
    }
}

TEST(RoundTrip, GenerationStampsMatch)
{
    WorkloadProfile p = profileByName("linpack");
    p.numBlocks = 10;
    p.totalInsts = 300;
    p.maxBlock = 80;
    Program orig = generateProgram(p);
    Program back = parseAssembly(orig.toString());
    stampMemGenerations(back);
    for (std::size_t i = 0; i < orig.size(); ++i) {
        if (!orig[i].mem().has_value())
            continue;
        EXPECT_EQ(orig[i].mem()->baseGen, back[i].mem()->baseGen) << i;
    }
}

TEST(RoundTrip, RenderedFormsAreStable)
{
    // render(parse(render(p))) == render(p): idempotent printing.
    Program orig = kernelProgram("tomcatv");
    std::string once = orig.toString();
    Program back = parseAssembly(once);
    EXPECT_EQ(back.toString(), once);
}

} // namespace
} // namespace sched91
