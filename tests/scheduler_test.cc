/**
 * @file
 * Scheduler tests: the generic list engine (forward and backward), the
 * six Table 2 algorithms, the postpass fixup, and the pipeline
 * simulator.  Core properties: every schedule is a valid topological
 * order, and scheduling never makes a block slower than original
 * order on the simulated machine (for the forward timing-driven
 * algorithms on stall-prone kernels, strictly faster).
 */

#include <gtest/gtest.h>

#include "core/pipeline.hh"
#include "dag/builder.hh"
#include "dag/table_forward.hh"
#include "heuristics/static_passes.hh"
#include "ir/basic_block.hh"
#include "ir/parser.hh"
#include "support/logging.hh"
#include "machine/presets.hh"
#include "sched/fixup.hh"
#include "sched/list_scheduler.hh"
#include "sched/pipeline_sim.hh"
#include "sched/registry.hh"
#include "workload/kernels.hh"

namespace sched91
{
namespace
{

struct BlockCase
{
    Program prog;
    MachineModel machine = sparcstation2();
    std::vector<BasicBlock> blocks;

    explicit BlockCase(const std::string &kernel)
        : prog(kernelProgram(kernel))
    {
        blocks = partitionBlocks(prog);
    }

    BlockView view(std::size_t i = 0) { return BlockView(prog, blocks[i]); }
};

class AlgorithmTest : public ::testing::TestWithParam<AlgorithmKind>
{
};

TEST_P(AlgorithmTest, ProducesValidTopologicalOrder)
{
    for (const char *kernel :
         {"daxpy", "livermore1", "tomcatv", "grep-scan", "list-walk"}) {
        BlockCase c(kernel);
        for (std::size_t b = 0; b < c.blocks.size(); ++b) {
            PipelineOptions opts;
            opts.algorithm = GetParam();
            opts.builder = algorithmSpec(GetParam()).preferredBuilder;
            auto result = scheduleBlock(c.view(b), c.machine, opts);
            EXPECT_TRUE(isValidTopologicalOrder(result.dag,
                                                result.sched.order))
                << algorithmName(GetParam()) << " on " << kernel;
        }
    }
}

TEST_P(AlgorithmTest, NeverSlowerThanOriginalOrder)
{
    for (const char *kernel : {"daxpy", "livermore1", "tomcatv"}) {
        BlockCase c(kernel);
        PipelineOptions opts;
        opts.algorithm = GetParam();
        opts.builder = algorithmSpec(GetParam()).preferredBuilder;
        auto result = scheduleBlock(c.view(), c.machine, opts);

        // Ground truth for cycle measurement.
        Dag gt = TableForwardBuilder().build(c.view(), c.machine,
                                             BuildOptions{});
        int original =
            simulateSchedule(gt, originalOrderSchedule(gt).order,
                             c.machine)
                .cycles;
        int scheduled =
            simulateSchedule(gt, result.sched.order, c.machine).cycles;
        // List scheduling is heuristic; backward non-timing algorithms
        // may regress slightly, but never pathologically.
        EXPECT_LE(scheduled, original * 115 / 100 + 2)
            << algorithmName(GetParam()) << " on " << kernel;
    }
}

TEST_P(AlgorithmTest, BranchStaysLast)
{
    BlockCase c("daxpy");
    PipelineOptions opts;
    opts.algorithm = GetParam();
    opts.builder = algorithmSpec(GetParam()).preferredBuilder;
    auto result = scheduleBlock(c.view(), c.machine, opts);
    // daxpy's block 0 ends with its loop branch.
    EXPECT_EQ(result.sched.order.back(), c.view().size() - 1);
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, AlgorithmTest,
    ::testing::ValuesIn(allAlgorithms()),
    [](const ::testing::TestParamInfo<AlgorithmKind> &info) {
        std::string name(algorithmName(info.param));
        for (char &ch : name)
            if (ch == '-')
                ch = '_';
        return name;
    });

TEST(ListScheduler, ForwardImprovesStallKernel)
{
    // daxpy's naive order stalls on every load-use pair; any
    // timing-aware forward scheduler must beat it.
    BlockCase c("daxpy");
    PipelineOptions opts;
    opts.algorithm = AlgorithmKind::Krishnamurthy;
    auto result = scheduleBlock(c.view(), c.machine, opts);

    Dag gt = TableForwardBuilder().build(c.view(), c.machine,
                                         BuildOptions{});
    int original = simulateSchedule(gt, originalOrderSchedule(gt).order,
                                    c.machine)
                       .cycles;
    int scheduled =
        simulateSchedule(gt, result.sched.order, c.machine).cycles;
    EXPECT_LT(scheduled, original);
}

TEST(ListScheduler, RespectsEarliestExecutionTime)
{
    BlockCase c("livermore1");
    PipelineOptions opts;
    opts.algorithm = AlgorithmKind::Krishnamurthy;
    auto result = scheduleBlock(c.view(), c.machine, opts);
    // Issue cycles must be weakly increasing and respect arc delays.
    for (std::size_t p = 1; p < result.sched.issueCycle.size(); ++p)
        EXPECT_GT(result.sched.issueCycle[p],
                  result.sched.issueCycle[p - 1]);
}

TEST(ListScheduler, BackwardCoversAllNodes)
{
    BlockCase c("tomcatv");
    PipelineOptions opts;
    opts.algorithm = AlgorithmKind::Tiemann;
    auto result = scheduleBlock(c.view(), c.machine, opts);
    EXPECT_EQ(result.sched.order.size(), c.view().size());
    EXPECT_TRUE(isValidTopologicalOrder(result.dag, result.sched.order));
}

TEST(ListScheduler, DeterministicAcrossRuns)
{
    for (AlgorithmKind kind : allAlgorithms()) {
        BlockCase c("livermore1");
        PipelineOptions opts;
        opts.algorithm = kind;
        auto a = scheduleBlock(c.view(), c.machine, opts);
        auto b = scheduleBlock(c.view(), c.machine, opts);
        EXPECT_EQ(a.sched.order, b.sched.order) << algorithmName(kind);
    }
}

TEST(Fixup, PreservesValidityAndNeverHurts)
{
    BlockCase c("tomcatv");
    Dag dag = TableForwardBuilder().build(c.view(), c.machine,
                                          BuildOptions{});
    runAllStaticPasses(dag);

    // A deliberately poor schedule: original order.
    Schedule sched = originalOrderSchedule(dag);
    int before = simulateSchedule(dag, sched.order, c.machine).cycles;
    applyPostpassFixup(dag, sched);
    EXPECT_TRUE(isValidTopologicalOrder(dag, sched.order));
    int after = simulateSchedule(dag, sched.order, c.machine).cycles;
    EXPECT_LE(after, before);
}

TEST(Fixup, FillsLoadDelaySlot)
{
    Program prog = parseAssembly(
        "ld [%o0], %g1\n"
        "add %g1, 1, %g2\n"   // stalls one cycle behind the load
        "add %g3, 1, %g4\n"); // independent filler
    auto blocks = partitionBlocks(prog);
    MachineModel machine = sparcstation2();
    Dag dag = TableForwardBuilder().build(BlockView(prog, blocks[0]),
                                          machine, BuildOptions{});
    Schedule sched = originalOrderSchedule(dag);
    int moved = applyPostpassFixup(dag, sched);
    EXPECT_EQ(moved, 1);
    EXPECT_EQ(sched.order, (std::vector<std::uint32_t>{0, 2, 1}));
}

TEST(PipelineSim, CountsLoadUseStall)
{
    Program prog = parseAssembly(
        "ld [%o0], %g1\n"
        "add %g1, 1, %g2\n");
    auto blocks = partitionBlocks(prog);
    MachineModel machine = sparcstation2();
    Dag dag = TableForwardBuilder().build(BlockView(prog, blocks[0]),
                                          machine, BuildOptions{});
    auto r = simulateSchedule(dag, {0, 1}, machine);
    // load at 0 (latency 2), add can issue at 2: one stall cycle.
    EXPECT_EQ(r.lastIssue, 2);
    EXPECT_EQ(r.stallCycles, 1);
    EXPECT_EQ(r.cycles, 3);
}

TEST(PipelineSim, StructuralHazardOnFpDivide)
{
    Program prog = parseAssembly(
        "fdivd %f0, %f2, %f4\n"
        "fdivd %f6, %f8, %f10\n"); // independent, same non-pipelined FU
    auto blocks = partitionBlocks(prog);
    MachineModel machine = sparcstation2();
    Dag dag = TableForwardBuilder().build(BlockView(prog, blocks[0]),
                                          machine, BuildOptions{});
    auto r = simulateSchedule(dag, {0, 1}, machine);
    EXPECT_GE(r.lastIssue, machine.latency(InstClass::FpDiv));
}

TEST(PipelineSim, SuperscalarPairsDifferentGroups)
{
    Program prog = parseAssembly(
        "add %g1, %g2, %g3\n"
        "fadds %f0, %f1, %f2\n"); // independent, different groups
    auto blocks = partitionBlocks(prog);
    MachineModel machine = superscalar2();
    Dag dag = TableForwardBuilder().build(BlockView(prog, blocks[0]),
                                          machine, BuildOptions{});
    auto r = simulateSchedule(dag, {0, 1}, machine);
    EXPECT_EQ(r.lastIssue, 0); // dual-issued in cycle 0
}

TEST(PipelineSim, SuperscalarSerializesSameGroup)
{
    Program prog = parseAssembly(
        "add %g1, %g2, %g3\n"
        "add %g4, %g5, %g6\n");
    auto blocks = partitionBlocks(prog);
    MachineModel machine = superscalar2();
    Dag dag = TableForwardBuilder().build(BlockView(prog, blocks[0]),
                                          machine, BuildOptions{});
    auto r = simulateSchedule(dag, {0, 1}, machine);
    EXPECT_EQ(r.lastIssue, 1); // same issue group: one per cycle
}

TEST(PipelineSim, RejectsInvalidOrder)
{
    Program prog = parseAssembly(
        "ld [%o0], %g1\n"
        "add %g1, 1, %g2\n");
    auto blocks = partitionBlocks(prog);
    MachineModel machine = sparcstation2();
    Dag dag = TableForwardBuilder().build(BlockView(prog, blocks[0]),
                                          machine, BuildOptions{});
    EXPECT_THROW(simulateSchedule(dag, {1, 0}, machine), PanicError);
}

TEST(Schedule, ValidityChecker)
{
    Program prog = parseAssembly(
        "ld [%o0], %g1\n"
        "add %g1, 1, %g2\n");
    auto blocks = partitionBlocks(prog);
    Dag dag = TableForwardBuilder().build(BlockView(prog, blocks[0]),
                                          sparcstation2(), BuildOptions{});
    EXPECT_TRUE(isValidTopologicalOrder(dag, {0, 1}));
    EXPECT_FALSE(isValidTopologicalOrder(dag, {1, 0}));
    EXPECT_FALSE(isValidTopologicalOrder(dag, {0, 0}));
    EXPECT_FALSE(isValidTopologicalOrder(dag, {0}));
}

TEST(Registry, SixPublishedAlgorithms)
{
    EXPECT_EQ(publishedAlgorithms().size(), 6u);
    for (AlgorithmKind kind : publishedAlgorithms()) {
        AlgorithmSpec spec = algorithmSpec(kind);
        EXPECT_FALSE(spec.config.ranking.empty()) << algorithmName(kind);
        EXPECT_NE(spec.citation, nullptr);
    }
}

TEST(Registry, Table2PassDirections)
{
    EXPECT_TRUE(algorithmSpec(AlgorithmKind::GibbonsMuchnick)
                    .config.forward);
    EXPECT_TRUE(algorithmSpec(AlgorithmKind::Krishnamurthy)
                    .config.forward);
    EXPECT_FALSE(algorithmSpec(AlgorithmKind::Schlansker).config.forward);
    EXPECT_FALSE(algorithmSpec(AlgorithmKind::Tiemann).config.forward);
    EXPECT_TRUE(algorithmSpec(AlgorithmKind::Warren).config.forward);
    EXPECT_TRUE(
        algorithmSpec(AlgorithmKind::Krishnamurthy).config.postpassFixup);
    EXPECT_TRUE(algorithmSpec(AlgorithmKind::Tiemann).config.birthing);
}

TEST(Registry, SchlanskerNeedsBothPasses)
{
    // Section 5: "the requirement is unavoidable in Schlansker".
    auto spec = algorithmSpec(AlgorithmKind::Schlansker);
    EXPECT_TRUE(spec.config.needsForwardPass);
    EXPECT_TRUE(spec.config.needsBackwardPass);
}

} // namespace
} // namespace sched91
