/**
 * @file
 * The flagship property test: scheduling preserves program semantics.
 *
 * For kernels and synthetic programs, every (builder x algorithm)
 * combination must produce block schedules that leave the functional
 * executor in exactly the original final architectural state.  This
 * exercises the entire stack: parsing / generation, memory
 * disambiguation (a wrong NoAlias shows up here), DAG construction,
 * heuristic passes, and both scheduling directions.
 */

#include <gtest/gtest.h>

#include "core/pipeline.hh"
#include "ir/basic_block.hh"
#include "machine/presets.hh"
#include "sim/executor.hh"
#include "workload/generator.hh"
#include "workload/kernels.hh"

namespace sched91
{
namespace
{

void
checkProgram(Program &prog, BuilderKind builder, AlgorithmKind algorithm,
             const MachineModel &machine, std::uint64_t seed)
{
    auto blocks = partitionBlocks(prog);
    PipelineOptions opts;
    opts.builder = builder;
    opts.algorithm = algorithm;

    for (const auto &bb : blocks) {
        BlockView block(prog, bb);
        auto result = scheduleBlock(block, machine, opts);
        ASSERT_TRUE(isValidTopologicalOrder(result.dag,
                                            result.sched.order));

        std::vector<std::uint32_t> identity(block.size());
        for (std::uint32_t i = 0; i < identity.size(); ++i)
            identity[i] = i;

        ExecState original = runBlock(block, identity, seed);
        ExecState scheduled = runBlock(block, result.sched.order, seed);
        ASSERT_EQ(original, scheduled)
            << builderKindName(builder) << " + "
            << algorithmName(algorithm) << " block @" << bb.begin;
    }
}

using Combo = std::tuple<BuilderKind, AlgorithmKind>;

class Preservation : public ::testing::TestWithParam<Combo>
{
};

TEST_P(Preservation, Kernels)
{
    auto [builder, algorithm] = GetParam();
    MachineModel machine = sparcstation2();
    for (const std::string &kernel : kernelNames()) {
        Program prog = kernelProgram(kernel);
        checkProgram(prog, builder, algorithm, machine, 0x5eed + 1);
    }
}

TEST_P(Preservation, SyntheticIntegerProgram)
{
    auto [builder, algorithm] = GetParam();
    WorkloadProfile p = profileByName("grep");
    p.numBlocks = 40;
    p.totalInsts = 300;
    p.maxBlock = 25;
    Program prog = generateProgram(p);
    MachineModel machine = sparcstation2();
    checkProgram(prog, builder, algorithm, machine, 0xabc);
}

TEST_P(Preservation, SyntheticFpProgram)
{
    auto [builder, algorithm] = GetParam();
    WorkloadProfile p = profileByName("lloops");
    p.numBlocks = 16;
    p.totalInsts = 400;
    p.maxBlock = 80;
    p.secondBlock = 0;
    Program prog = generateProgram(p);
    MachineModel machine = sparcstation2();
    checkProgram(prog, builder, algorithm, machine, 0xdef);
}

INSTANTIATE_TEST_SUITE_P(
    BuilderAlgorithmMatrix, Preservation,
    ::testing::Combine(::testing::ValuesIn(allBuilderKinds()),
                       ::testing::ValuesIn(allAlgorithms())),
    [](const ::testing::TestParamInfo<Combo> &info) {
        std::string name(builderKindName(std::get<0>(info.param)));
        name += "_";
        name += algorithmName(std::get<1>(info.param));
        std::string out;
        for (char ch : name)
            out += std::isalnum(static_cast<unsigned char>(ch))
                       ? ch
                       : '_';
        return out;
    });

TEST(Preservation, SerializeAllPolicyToo)
{
    MachineModel machine = sparcstation2();
    WorkloadProfile p = profileByName("dfa");
    p.numBlocks = 20;
    p.totalInsts = 200;
    p.maxBlock = 30;
    Program prog = generateProgram(p);
    auto blocks = partitionBlocks(prog);

    PipelineOptions opts;
    opts.build.memPolicy = AliasPolicy::SerializeAll;
    opts.algorithm = AlgorithmKind::Krishnamurthy;

    for (const auto &bb : blocks) {
        BlockView block(prog, bb);
        auto result = scheduleBlock(block, machine, opts);
        std::vector<std::uint32_t> identity(block.size());
        for (std::uint32_t i = 0; i < identity.size(); ++i)
            identity[i] = i;
        EXPECT_EQ(runBlock(block, identity, 3),
                  runBlock(block, result.sched.order, 3));
    }
}

TEST(Preservation, StorageClassedPolicyToo)
{
    MachineModel machine = sparcstation2();
    WorkloadProfile p = profileByName("linpack");
    p.numBlocks = 12;
    p.totalInsts = 260;
    p.maxBlock = 60;
    Program prog = generateProgram(p);
    auto blocks = partitionBlocks(prog);

    PipelineOptions opts;
    opts.build.memPolicy = AliasPolicy::StorageClassed;
    opts.algorithm = AlgorithmKind::Warren;
    opts.builder = BuilderKind::N2Forward;

    for (const auto &bb : blocks) {
        BlockView block(prog, bb);
        auto result = scheduleBlock(block, machine, opts);
        std::vector<std::uint32_t> identity(block.size());
        for (std::uint32_t i = 0; i < identity.size(); ++i)
            identity[i] = i;
        EXPECT_EQ(runBlock(block, identity, 4),
                  runBlock(block, result.sched.order, 4));
    }
}

TEST(Preservation, SymbolicExprPolicyToo)
{
    // The paper's expression-as-resource model: sound under the
    // executor because distinct base registers / symbols map to
    // disjoint address regions, as in real compiler output.
    MachineModel machine = sparcstation2();
    for (const char *name : {"lloops", "grep"}) {
        WorkloadProfile p = profileByName(name);
        p.numBlocks = 16;
        p.totalInsts = 320;
        p.maxBlock = 60;
        p.secondBlock = 0;
        Program prog = generateProgram(p);
        auto blocks = partitionBlocks(prog);

        PipelineOptions opts;
        opts.build.memPolicy = AliasPolicy::SymbolicExpr;
        opts.algorithm = AlgorithmKind::Krishnamurthy;

        for (const auto &bb : blocks) {
            BlockView block(prog, bb);
            auto result = scheduleBlock(block, machine, opts);
            std::vector<std::uint32_t> identity(block.size());
            for (std::uint32_t i = 0; i < identity.size(); ++i)
                identity[i] = i;
            EXPECT_EQ(runBlock(block, identity, 11),
                      runBlock(block, result.sched.order, 11))
                << name;
        }
    }
}

TEST(Preservation, Rs6000DelayModelToo)
{
    // Different delay model changes schedules but not semantics.
    MachineModel machine = rs6000Like();
    Program prog = kernelProgram("livermore1");
    checkProgram(prog, BuilderKind::TableBackward,
                 AlgorithmKind::ShiehPapachristou, machine, 42);
}

} // namespace
} // namespace sched91
