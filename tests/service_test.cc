/**
 * @file
 * Resilient-service tests (docs/ROBUSTNESS.md): deterministic fault
 * injection, the admission queue, the wire protocol, the Engine's
 * retry/degradation ladder (one test per injection point, matching
 * the failure-mode matrix), graceful drain of an in-process daemon
 * over a real AF_UNIX socket, the pipeline's interrupt rung, the
 * reducer's wall-clock cap, and two end-to-end CLI contracts driven
 * as subprocesses (empty program, SIGINT drain).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include "core/pipeline.hh"
#include "fuzz/differential.hh"
#include "fuzz/program_gen.hh"
#include "ir/parser.hh"
#include "machine/presets.hh"
#include "obs/chrome_trace.hh"
#include "obs/flight_recorder.hh"
#include "obs/json_parse.hh"
#include "service/bounded_queue.hh"
#include "service/daemon.hh"
#include "service/engine.hh"
#include "service/protocol.hh"
#include "support/cancellation.hh"
#include "support/diagnostics.hh"
#include "support/fault_inject.hh"
#include "support/logging.hh"

using namespace sched91;

namespace
{

/** Disarm fault injection no matter how a test exits. */
struct FaultGuard
{
    FaultGuard() { fault::reset(); }
    ~FaultGuard() { fault::reset(); }
};

/** A small but non-trivial straight-line block. */
const char kSource[] = "add %g1, %g2, %g3\n"
                       "ld [%g3], %g4\n"
                       "add %g4, %g1, %g5\n"
                       "st %g5, [%g3]\n"
                       "add %g5, %g2, %g6\n";

service::RequestSpec
specFor(const std::string &source, const std::string &id = "t")
{
    service::RequestSpec spec;
    spec.id = id;
    spec.source = source;
    return spec;
}

obs::JsonValue
processToJson(service::Engine &engine, const service::RequestSpec &spec,
              double remainingSeconds = 0.0)
{
    std::string line = engine.process(spec, remainingSeconds);
    return obs::parseJson(line);
}

} // namespace

// ---------------------------------------------------------------------------
// Fault injection: determinism and spec parsing.

TEST(FaultInject, SpecRoundTripsAndValidates)
{
    FaultGuard guard;
    fault::Config config = fault::parseSpec(
        "seed=42,builder-throw=0.25,verifier-reject=0.5,"
        "slow-block=0.1,alloc-fail=1,slow-ms=40");
    EXPECT_EQ(config.seed, 42u);
    EXPECT_DOUBLE_EQ(
        config.rate[static_cast<std::size_t>(fault::Point::BuilderThrow)],
        0.25);
    EXPECT_DOUBLE_EQ(
        config.rate[static_cast<std::size_t>(fault::Point::AllocFail)],
        1.0);
    EXPECT_EQ(config.slowBlockMs, 40);

    // The rendered spec reparses to the same configuration.
    fault::Config again = fault::parseSpec(fault::specString(config));
    EXPECT_EQ(again.seed, config.seed);
    EXPECT_EQ(again.rate, config.rate);
    EXPECT_EQ(again.slowBlockMs, config.slowBlockMs);

    EXPECT_THROW(fault::parseSpec("seed=1,bogus-point=0.5"),
                 FatalError);
    EXPECT_THROW(fault::parseSpec("builder-throw=1.5"), FatalError);
}

TEST(FaultInject, SignalGradePointsParseAndRoundTrip)
{
    // The `--isolate=process` faults: these kill or wedge the whole
    // worker process rather than throwing, so they are parsed and
    // forwarded (via specString) to sandbox workers like any other
    // point.
    FaultGuard guard;
    fault::Config config = fault::parseSpec(
        "seed=9,crash-segv=0.5,crash-abort=0.25,spin-forever=0.1");
    EXPECT_DOUBLE_EQ(
        config.rate[static_cast<std::size_t>(fault::Point::CrashSegv)],
        0.5);
    EXPECT_DOUBLE_EQ(
        config.rate[static_cast<std::size_t>(fault::Point::CrashAbort)],
        0.25);
    EXPECT_DOUBLE_EQ(
        config.rate[static_cast<std::size_t>(
            fault::Point::SpinForever)],
        0.1);

    fault::Config again = fault::parseSpec(fault::specString(config));
    EXPECT_EQ(again.rate, config.rate);
    EXPECT_EQ(again.seed, config.seed);
}

TEST(FaultInject, DecisionsAreDeterministicAndSaltSensitive)
{
    FaultGuard guard;
    fault::Config config;
    config.seed = 7;
    config.rate[static_cast<std::size_t>(fault::Point::BuilderThrow)] =
        0.5;
    fault::configure(config);

    // Same (point, key, salt) -> same answer, across repeated asks.
    bool fired = false, clear = false;
    for (std::uint64_t key = 0; key < 64; ++key) {
        const bool first =
            fault::shouldFire(fault::Point::BuilderThrow, key, 0);
        for (int repeat = 0; repeat < 3; ++repeat)
            EXPECT_EQ(
                fault::shouldFire(fault::Point::BuilderThrow, key, 0),
                first);
        (first ? fired : clear) = true;
    }
    // At rate 0.5 over 64 keys both outcomes must occur.
    EXPECT_TRUE(fired);
    EXPECT_TRUE(clear);

    // The retry salt changes the draw for at least one key (this is
    // what lets the ladder see a transient fault clear).
    bool saltMatters = false;
    for (std::uint64_t key = 0; key < 64 && !saltMatters; ++key)
        saltMatters =
            fault::shouldFire(fault::Point::BuilderThrow, key, 0) !=
            fault::shouldFire(fault::Point::BuilderThrow, key, 1);
    EXPECT_TRUE(saltMatters);

    // Unarmed points never fire; a reset disarms everything.
    EXPECT_FALSE(fault::shouldFire(fault::Point::AllocFail, 1, 0));
    fault::reset();
    EXPECT_FALSE(fault::enabled());
    EXPECT_FALSE(fault::shouldFire(fault::Point::BuilderThrow, 1, 0));
}

// ---------------------------------------------------------------------------
// Admission queue.

TEST(BoundedQueue, ShedsWhenFullAndDrainsAfterClose)
{
    service::BoundedQueue<int> queue(2);
    EXPECT_TRUE(queue.tryPush(1));
    EXPECT_TRUE(queue.tryPush(2));
    EXPECT_FALSE(queue.tryPush(3)); // full -> load shed, not block

    queue.close();
    EXPECT_FALSE(queue.tryPush(4)); // closed -> no admission

    // Everything admitted before close still drains, in order.
    std::optional<int> a = queue.pop();
    std::optional<int> b = queue.pop();
    ASSERT_TRUE(a && b);
    EXPECT_EQ(*a, 1);
    EXPECT_EQ(*b, 2);
    EXPECT_FALSE(queue.pop().has_value()); // closed and drained
}

TEST(BoundedQueue, PopBlocksUntilPushArrives)
{
    service::BoundedQueue<int> queue(1);
    std::optional<int> got;
    std::thread consumer([&] { got = queue.pop(); });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_TRUE(queue.tryPush(42));
    consumer.join();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, 42);
}

// ---------------------------------------------------------------------------
// Wire protocol.

TEST(Protocol, ParsesFullRequestAndAppliesDefaults)
{
    std::string error;
    std::optional<service::RequestSpec> spec =
        service::parseRequestLine(
            "{\"id\":\"r1\",\"source\":\"add %g1, %g2, %g3\\n\","
            "\"algorithm\":\"warren\",\"builder\":\"table-fwd\","
            "\"policy\":\"base-offset\",\"machine\":\"sparcstation2\","
            "\"deadline_ms\":250,\"evaluate\":true,"
            "\"emit\":\"schedule\"}",
            error);
    ASSERT_TRUE(spec.has_value()) << error;
    EXPECT_EQ(spec->id, "r1");
    EXPECT_EQ(spec->source, "add %g1, %g2, %g3\n");
    ASSERT_TRUE(spec->algorithm.has_value());
    ASSERT_TRUE(spec->builder.has_value());
    EXPECT_EQ(*spec->builder, BuilderKind::TableForward);
    EXPECT_DOUBLE_EQ(spec->deadlineMs, 250.0);
    EXPECT_TRUE(spec->evaluate);
    EXPECT_TRUE(spec->emitSchedule);

    // Minimal request: only source; everything else daemon defaults.
    spec = service::parseRequestLine("{\"source\":\"\"}", error);
    ASSERT_TRUE(spec.has_value()) << error;
    EXPECT_TRUE(spec->id.empty());
    EXPECT_FALSE(spec->algorithm.has_value());
    EXPECT_FALSE(spec->builder.has_value());
    EXPECT_DOUBLE_EQ(spec->deadlineMs, 0.0);

    // Display names (stats-JSON meta spellings) are accepted too.
    spec = service::parseRequestLine(
        "{\"source\":\"\",\"builder\":\"" +
            std::string(builderKindName(BuilderKind::TableForward)) +
            "\"}",
        error);
    ASSERT_TRUE(spec.has_value()) << error;
    EXPECT_EQ(*spec->builder, BuilderKind::TableForward);
}

TEST(Protocol, RejectsMalformedRequests)
{
    std::string error;
    EXPECT_FALSE(service::parseRequestLine("not json", error));
    EXPECT_FALSE(error.empty());
    EXPECT_FALSE(service::parseRequestLine("{\"id\":\"x\"}", error));
    EXPECT_FALSE(
        service::parseRequestLine("{\"source\":123}", error));
    EXPECT_FALSE(service::parseRequestLine(
        "{\"source\":\"\",\"algorithm\":\"bogus\"}", error));
    EXPECT_FALSE(service::parseRequestLine(
        "{\"source\":\"\",\"deadline_ms\":-1}", error));
}

TEST(Protocol, ResponseLinesRoundTripThroughTheJsonParser)
{
    service::ResponseBody body;
    body.status = "degraded";
    body.blocks = 3;
    body.insts = 17;
    body.degradedBlocks = 2;
    body.attempts = 2;
    body.downgradedBuilder = true;
    body.schedule = {"add %g1, %g2, %g3", "nop"};

    obs::JsonValue doc =
        obs::parseJson(service::responseLine("r9", body));
    EXPECT_EQ(doc.strOr("id", ""), "r9");
    EXPECT_EQ(doc.strOr("status", ""), "degraded");
    EXPECT_EQ(doc.numberOr("blocks", -1), 3);
    EXPECT_EQ(doc.numberOr("degraded_blocks", -1), 2);
    EXPECT_EQ(doc.numberOr("attempts", -1), 2);
    EXPECT_TRUE(doc.at("downgraded_builder").boolean());
    ASSERT_TRUE(doc.at("schedule").isArray());
    EXPECT_EQ(doc.at("schedule").array().size(), 2u);

    doc = obs::parseJson(service::rejectedLine("r2", "overloaded"));
    EXPECT_EQ(doc.strOr("status", ""), "rejected");
    EXPECT_EQ(doc.strOr("reason", ""), "overloaded");

    doc = obs::parseJson(service::errorLine("", "bad token"));
    EXPECT_EQ(doc.strOr("status", ""), "error");
    EXPECT_EQ(doc.strOr("error", ""), "bad token");
}

TEST(Protocol, DeadlineHitIsEmittedOnlyWhenTrue)
{
    // The supervisor attributes deadline expiry across the process
    // boundary from this field, so a degraded-on-budget response must
    // carry it and the common case must not pay for the key.
    service::ResponseBody body;
    body.status = "degraded";
    body.deadlineHit = true;
    obs::JsonValue doc =
        obs::parseJson(service::responseLine("r1", body));
    EXPECT_TRUE(doc.at("deadline_hit").boolean());

    body.deadlineHit = false;
    doc = obs::parseJson(service::responseLine("r1", body));
    EXPECT_FALSE(doc.has("deadline_hit"));
}

TEST(Protocol, SandboxEnvelopeRoundTripsAndStaysAValidRequest)
{
    service::SandboxEnvelope env;
    env.spec.id = "e7";
    env.spec.source = "add %g1, %g2, %g3\n";
    env.spec.builder = BuilderKind::TableForward;
    env.spec.algorithm = AlgorithmKind::SimpleForward;
    env.spec.deadlineMs = 125.0;
    env.spec.evaluate = true;
    env.attempt = 1;
    env.downgraded = true;

    std::string line = service::sandboxEnvelopeLine(env);

    std::string error;
    std::optional<service::SandboxEnvelope> back =
        service::parseSandboxEnvelopeLine(line, error);
    ASSERT_TRUE(back.has_value()) << error;
    EXPECT_EQ(back->spec.id, "e7");
    EXPECT_EQ(back->spec.source, env.spec.source);
    EXPECT_EQ(*back->spec.builder, BuilderKind::TableForward);
    EXPECT_DOUBLE_EQ(back->spec.deadlineMs, 125.0);
    EXPECT_TRUE(back->spec.evaluate);
    EXPECT_EQ(back->attempt, 1);
    EXPECT_TRUE(back->downgraded);

    // The envelope is a plain request line plus extra keys: ordinary
    // protocol consumers parse it and ignore the ladder fields.
    std::optional<service::RequestSpec> asRequest =
        service::parseRequestLine(line, error);
    ASSERT_TRUE(asRequest.has_value()) << error;
    EXPECT_EQ(asRequest->id, "e7");
    EXPECT_EQ(*asRequest->builder, BuilderKind::TableForward);

    // Malformed envelopes answer "error", not UB.
    EXPECT_FALSE(service::parseSandboxEnvelopeLine("not json", error));
    EXPECT_FALSE(error.empty());
}

// ---------------------------------------------------------------------------
// Engine ladder — one test per injection point (the failure-mode
// matrix of docs/ROBUSTNESS.md), plus quarantine and the empty
// program.

TEST(EngineLadder, EmptyProgramAnswersOkWithZeroBlocks)
{
    FaultGuard guard;
    service::Engine engine{service::EngineConfig{}};
    obs::JsonValue doc = processToJson(engine, specFor(""));
    EXPECT_EQ(doc.strOr("status", ""), "ok");
    EXPECT_EQ(doc.numberOr("blocks", -1), 0);
    EXPECT_EQ(doc.numberOr("insts", -1), 0);
    EXPECT_EQ(doc.numberOr("attempts", -1), 1);
    EXPECT_EQ(engine.counters().ok.load(), 1u);
}

TEST(EngineLadder, PersistentBuilderThrowFallsToLastRungAndQuarantines)
{
    FaultGuard guard;
    fault::Config config;
    config.rate[static_cast<std::size_t>(
        fault::Point::BuilderThrow)] = 1.0; // fails every attempt
    fault::configure(config);

    service::Engine engine{service::EngineConfig{}};
    obs::JsonValue doc = processToJson(engine, specFor(kSource));
    EXPECT_EQ(doc.strOr("status", ""), "degraded");
    EXPECT_EQ(doc.numberOr("attempts", -1), 3); // both rungs + fallback
    EXPECT_FALSE(doc.at("quarantined").boolean());
    EXPECT_EQ(doc.numberOr("degraded_blocks", -1),
              doc.numberOr("blocks", -2));
    EXPECT_EQ(engine.counters().retries.load(), 1u);
    EXPECT_EQ(engine.counters().degradedFallbacks.load(), 1u);
    EXPECT_EQ(engine.counters().quarantineAdds.load(), 1u);
    EXPECT_EQ(engine.quarantineSize(), 1u);

    // The same payload again short-circuits at the quarantine rung.
    doc = processToJson(engine, specFor(kSource, "t2"));
    EXPECT_EQ(doc.strOr("status", ""), "degraded");
    EXPECT_TRUE(doc.at("quarantined").boolean());
    EXPECT_EQ(doc.numberOr("attempts", -1), 0);
    EXPECT_EQ(engine.counters().quarantineHits.load(), 1u);
    // No second quarantine entry, no extra retries.
    EXPECT_EQ(engine.counters().retries.load(), 1u);
    EXPECT_EQ(engine.quarantineSize(), 1u);
}

TEST(EngineLadder, TransientBuilderThrowClearsOnTheRetryRung)
{
    FaultGuard guard;
    // At rate 0.5 the salt re-draw clears the fault for some seed;
    // search a few.  Each trial uses a fresh engine so quarantine
    // state never leaks between seeds.
    bool sawRetrySuccess = false;
    for (std::uint64_t seed = 1; seed <= 200 && !sawRetrySuccess;
         ++seed) {
        fault::Config config;
        config.seed = seed;
        config.rate[static_cast<std::size_t>(
            fault::Point::BuilderThrow)] = 0.5;
        fault::configure(config);

        service::Engine engine{service::EngineConfig{}};
        service::RequestSpec spec = specFor(kSource);
        spec.builder = BuilderKind::N2Forward; // downgrade is visible
        obs::JsonValue doc = processToJson(engine, spec);
        if (doc.strOr("status", "") == "ok" &&
            doc.numberOr("attempts", -1) == 2) {
            sawRetrySuccess = true;
            EXPECT_TRUE(doc.at("downgraded_builder").boolean());
            EXPECT_EQ(engine.counters().retries.load(), 1u);
            EXPECT_EQ(engine.counters().degradedFallbacks.load(), 0u);
            EXPECT_EQ(engine.quarantineSize(), 0u);
        }
    }
    EXPECT_TRUE(sawRetrySuccess)
        << "no seed in 1..200 produced fail-then-clear";
}

TEST(EngineLadder, PersistentVerifierRejectEscalatesThroughTheLadder)
{
    FaultGuard guard;
    fault::Config config;
    config.rate[static_cast<std::size_t>(
        fault::Point::VerifierReject)] = 1.0;
    fault::configure(config);

    service::Engine engine{service::EngineConfig{}};
    obs::JsonValue doc = processToJson(engine, specFor(kSource));
    // Attempt 0 runs with containment *off*, so the rejection
    // surfaces as a failure; at rate 1.0 the retry rejects too, and
    // the request lands on the last rung (original order).
    EXPECT_EQ(doc.strOr("status", ""), "degraded");
    EXPECT_EQ(doc.numberOr("attempts", -1), 3);
    EXPECT_EQ(doc.numberOr("degraded_blocks", -1),
              doc.numberOr("blocks", -2));
    EXPECT_EQ(engine.counters().retries.load(), 1u);
    EXPECT_EQ(engine.counters().degradedFallbacks.load(), 1u);
    EXPECT_EQ(engine.counters().error.load(), 0u);
    EXPECT_EQ(engine.counters().degraded.load(), 1u);
}

TEST(EngineLadder, AllocFailEveryAttemptReachesTheLastRung)
{
    FaultGuard guard;
    fault::Config config;
    config.rate[static_cast<std::size_t>(fault::Point::AllocFail)] =
        1.0;
    fault::configure(config);

    service::Engine engine{service::EngineConfig{}};
    obs::JsonValue doc = processToJson(engine, specFor(kSource));
    EXPECT_EQ(doc.strOr("status", ""), "degraded");
    EXPECT_EQ(doc.numberOr("attempts", -1), 3);
    EXPECT_EQ(engine.counters().degradedFallbacks.load(), 1u);
    EXPECT_EQ(engine.counters().error.load(), 0u); // contained, not error
}

TEST(EngineLadder, SlowBlockDrivesTheDeadlineRung)
{
    FaultGuard guard;
    fault::Config config;
    config.rate[static_cast<std::size_t>(fault::Point::SlowBlock)] =
        1.0;
    config.slowBlockMs = 100;
    fault::configure(config);

    service::Engine engine{service::EngineConfig{}};
    // 10 ms of deadline against a 100 ms stall: the budget rung
    // degrades the block instead of erroring out.
    obs::JsonValue doc =
        processToJson(engine, specFor(kSource), /*remaining=*/0.010);
    EXPECT_EQ(doc.strOr("status", ""), "degraded");
    EXPECT_GE(engine.counters().deadlineExpired.load(), 1u);
    EXPECT_EQ(engine.counters().error.load(), 0u);
}

TEST(EngineLadder, FlightRecorderCapturesInjectionEvents)
{
    FaultGuard guard;
    fault::Config config;
    config.rate[static_cast<std::size_t>(
        fault::Point::BuilderThrow)] = 1.0;
    fault::configure(config);

    // Daemon-style flight ownership: the service owns the rings and
    // installs one recorder per worker lane; the pipeline detects
    // external management and records into the installed lane.
    obs::flight::setEnabled(true);
    obs::flight::beginRun();
    obs::flight::setExternallyManaged(true);
    {
        obs::flight::ScopedRecorder scope(obs::flight::claim());
        service::Engine engine{service::EngineConfig{}};
        processToJson(engine, specFor(kSource));

        obs::flight::Recorder *rec = obs::flight::current();
        ASSERT_NE(rec, nullptr);
        bool sawInjection = false;
        for (std::size_t i = 0; i < rec->kept(); ++i) {
            const obs::flight::Event &ev = rec->keptAt(i);
            if (std::string_view(ev.tag) == "inject" &&
                std::string_view(ev.detail) == "builder-throw")
                sawInjection = true;
        }
        EXPECT_TRUE(sawInjection)
            << "no 'inject' event in the flight ring";
    }
    obs::flight::setExternallyManaged(false);
    obs::flight::setEnabled(false);
    obs::flight::beginRun(); // leave clean rings for later tests
}

TEST(EngineLadder, FaultsDoNotLeakAcrossRequests)
{
    FaultGuard guard;
    fault::Config config;
    config.rate[static_cast<std::size_t>(
        fault::Point::BuilderThrow)] = 1.0;
    fault::configure(config);

    service::Engine engine{service::EngineConfig{}};
    processToJson(engine, specFor(kSource)); // degraded + quarantined

    // A different payload with injection disarmed schedules cleanly:
    // nothing sticks to the engine from the previous failure.
    fault::reset();
    obs::JsonValue doc = processToJson(
        engine, specFor("add %g1, %g2, %g3\nsub %g3, %g1, %g4\n"));
    EXPECT_EQ(doc.strOr("status", ""), "ok");
    EXPECT_FALSE(doc.at("quarantined").boolean());
    EXPECT_EQ(doc.numberOr("degraded_blocks", -1), 0);
}

// ---------------------------------------------------------------------------
// Pipeline interrupt rung (the CLI's SIGINT path uses exactly this).

TEST(PipelineInterrupt, FiredTokenDegradesRemainingBlocks)
{
    fuzz::GenParams params;
    params.seed = 3;
    params.numBlocks = 6;
    params.maxBlockSize = 12;
    params.branchProb = 1.0; // every block ends in a control transfer
    DiagnosticEngine diags;
    Program prog =
        parseAssembly(fuzz::generateSource(params), diags, "interrupt.s");

    CancellationToken token;
    token.requestCancel(); // drain requested before the run starts

    PipelineOptions opts;
    opts.threads = 1;
    opts.interrupt = &token;
    MachineModel machine = presetByName("sparcstation2");
    ProgramResult result = runPipeline(prog, machine, opts);

    ASSERT_GE(result.numBlocks, 2u);
    EXPECT_EQ(result.blocksDegraded, result.numBlocks);
    ASSERT_FALSE(result.blockIssues.empty());
    for (const ProgramResult::BlockIssue &issue : result.blockIssues) {
        EXPECT_EQ(issue.stage, "interrupt");
        EXPECT_TRUE(issue.degraded);
    }
}

// ---------------------------------------------------------------------------
// Reducer wall-clock cap (--reduce-seconds): best-so-far semantics.

TEST(ReducerCap, WallClockCapReturnsBestSoFar)
{
    std::string source;
    for (int i = 0; i < 40; ++i)
        source += "line" + std::to_string(i) + "\n";

    // "Fails" only while line39 survives, and takes 5 ms per check,
    // so the search is long: most candidate windows drop line39 and
    // are refused, which is what makes the cap worth testing.
    std::atomic<int> uncappedCalls{0}, cappedCalls{0};
    auto slowNeedsLastLine = [](std::atomic<int> &calls) {
        return [&calls](const std::string &text) {
            calls.fetch_add(1);
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
            return text.find("line39\n") != std::string::npos;
        };
    };

    std::string uncapped =
        fuzz::minimizeLines(source, slowNeedsLastLine(uncappedCalls));
    EXPECT_EQ(uncapped, "line39\n"); // fully reduced
    EXPECT_GT(uncappedCalls.load(), 10);

    std::string capped = fuzz::minimizeLines(
        source, slowNeedsLastLine(cappedCalls), 512,
        /*maxSeconds=*/0.025);
    EXPECT_LT(cappedCalls.load(), uncappedCalls.load());
    // Best-so-far: a valid reproducer (line39 kept), but the cap
    // fired before full reduction.
    EXPECT_NE(capped.find("line39\n"), std::string::npos);
    EXPECT_GT(std::count(capped.begin(), capped.end(), '\n'), 1);

    // Operand pass honors its cap too.
    std::string operands;
    for (int i = 0; i < 8; ++i)
        operands += "op %a, %b, %c, %d\n";
    std::atomic<int> opCalls{0};
    auto slowAlwaysFails = [&opCalls](const std::string &) {
        opCalls.fetch_add(1);
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        return true;
    };
    std::string trimmed = fuzz::minimizeOperands(
        operands, slowAlwaysFails, 256, /*maxSeconds=*/0.001);
    EXPECT_FALSE(trimmed.empty());
    EXPECT_NE(trimmed.find(','), std::string::npos); // stopped early
}

// ---------------------------------------------------------------------------
// In-process daemon over a real socket: admission, drain, shed.

namespace
{

int
connectWithRetry(const std::string &path, int attempts = 100)
{
    for (int i = 0; i < attempts; ++i) {
        int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
        if (fd < 0)
            return -1;
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        std::strncpy(addr.sun_path, path.c_str(),
                     sizeof(addr.sun_path) - 1);
        if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                      sizeof(addr)) == 0)
            return fd;
        ::close(fd);
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    return -1;
}

bool
sendAll(int fd, const std::string &bytes)
{
    std::size_t off = 0;
    while (off < bytes.size()) {
        ssize_t n = ::send(fd, bytes.data() + off, bytes.size() - off,
                           MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

/** Read newline-delimited responses until @p want lines arrive (or a
 * 10 s safety timeout). */
std::vector<std::string>
readLines(int fd, std::size_t want)
{
    std::vector<std::string> lines;
    std::string buffer;
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(10);
    while (lines.size() < want &&
           std::chrono::steady_clock::now() < deadline) {
        pollfd pfd{fd, POLLIN, 0};
        if (::poll(&pfd, 1, 200) <= 0)
            continue;
        char chunk[65536];
        ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
        if (n <= 0)
            break;
        buffer.append(chunk, static_cast<std::size_t>(n));
        std::size_t start = 0;
        for (std::size_t nl;
             (nl = buffer.find('\n', start)) != std::string::npos;
             start = nl + 1)
            lines.push_back(buffer.substr(start, nl - start));
        buffer.erase(0, start);
    }
    return lines;
}

std::string
testSocketPath(const char *tag)
{
    return "/tmp/sched91-test-" + std::string(tag) + "-" +
           std::to_string(::getpid()) + ".sock";
}

} // namespace

TEST(Daemon, DrainAnswersEverythingAccepted)
{
    FaultGuard guard;
    service::DaemonConfig config;
    config.socketPath = testSocketPath("drain");
    config.workers = 2;
    config.queueCapacity = 8;
    config.statsPath = ""; // no stats document from a test
    ::unlink(config.socketPath.c_str());

    service::Daemon daemon(config);
    int rc = -1;
    std::thread server([&] { rc = daemon.run(); });

    int fd = connectWithRetry(config.socketPath);
    ASSERT_GE(fd, 0) << "daemon did not come up";

    // Three requests: the empty program, a real one, a malformed one.
    ASSERT_TRUE(sendAll(fd, "{\"id\":\"q0\",\"source\":\"\"}\n"));
    ASSERT_TRUE(sendAll(fd, "{\"id\":\"q1\",\"source\":\"add %g1, "
                            "%g2, %g3\\nld [%g3], %g4\\n\"}\n"));
    ASSERT_TRUE(sendAll(fd, "this is not json\n"));

    std::vector<std::string> lines = readLines(fd, 3);
    ASSERT_EQ(lines.size(), 3u);

    std::set<std::string> statuses;
    for (const std::string &line : lines) {
        obs::JsonValue doc = obs::parseJson(line);
        statuses.insert(doc.strOr("id", "") + ":" +
                        doc.strOr("status", ""));
    }
    EXPECT_TRUE(statuses.count("q0:ok"));
    EXPECT_TRUE(statuses.count("q1:ok"));
    EXPECT_TRUE(statuses.count(":error")); // malformed line, no id

    daemon.requestDrain();
    server.join();
    EXPECT_EQ(rc, 0);
    EXPECT_EQ(daemon.counters().accepted.load(), 2u);
    EXPECT_EQ(daemon.counters().ok.load(), 2u);
    EXPECT_EQ(daemon.counters().rejected.load(), 0u);
    ::close(fd);
}

TEST(Daemon, FullQueueShedsInsteadOfBuffering)
{
    FaultGuard guard;
    // One worker stalled 300 ms per block by fault injection, a
    // one-slot queue: pipelined requests 3..N find the queue full and
    // must come back "rejected"/overloaded — never block, never drop.
    fault::Config fconfig;
    fconfig.rate[static_cast<std::size_t>(fault::Point::SlowBlock)] =
        1.0;
    fconfig.slowBlockMs = 300;
    fault::configure(fconfig);

    service::DaemonConfig config;
    config.socketPath = testSocketPath("shed");
    config.workers = 1;
    config.queueCapacity = 1;
    config.statsPath = "";
    ::unlink(config.socketPath.c_str());

    service::Daemon daemon(config);
    int rc = -1;
    std::thread server([&] { rc = daemon.run(); });

    int fd = connectWithRetry(config.socketPath);
    ASSERT_GE(fd, 0);

    const int kRequests = 6;
    std::string burst;
    for (int i = 0; i < kRequests; ++i)
        burst += "{\"id\":\"q" + std::to_string(i) +
                 "\",\"source\":\"add %g1, %g2, %g3\\n\"}\n";
    ASSERT_TRUE(sendAll(fd, burst));

    std::vector<std::string> lines =
        readLines(fd, static_cast<std::size_t>(kRequests));
    ASSERT_EQ(lines.size(), static_cast<std::size_t>(kRequests));

    int answered = 0, rejected = 0;
    for (const std::string &line : lines) {
        obs::JsonValue doc = obs::parseJson(line);
        const std::string status = doc.strOr("status", "");
        EXPECT_TRUE(status == "ok" || status == "degraded" ||
                    status == "rejected")
            << line;
        ++answered;
        if (status == "rejected") {
            ++rejected;
            EXPECT_EQ(doc.strOr("reason", ""), "overloaded");
        }
    }
    EXPECT_EQ(answered, kRequests); // zero lost
    EXPECT_GE(rejected, 1);         // shed under pressure

    daemon.requestDrain();
    server.join();
    EXPECT_EQ(rc, 0);
    EXPECT_EQ(daemon.counters().accepted.load() +
                  daemon.counters().rejected.load(),
              static_cast<std::uint64_t>(kRequests));
    ::close(fd);
}

TEST(Daemon, DrainWithNoRequestsExitsCleanly)
{
    FaultGuard guard;
    service::DaemonConfig config;
    config.socketPath = testSocketPath("idle");
    config.workers = 1;
    config.statsPath = "";
    ::unlink(config.socketPath.c_str());

    service::Daemon daemon(config);
    int rc = -1;
    std::thread server([&] { rc = daemon.run(); });
    // Wait until the socket exists so drain races with nothing.
    int fd = connectWithRetry(config.socketPath);
    ASSERT_GE(fd, 0);
    ::close(fd);
    daemon.requestDrain();
    server.join();
    EXPECT_EQ(rc, 0);
    EXPECT_EQ(daemon.counters().accepted.load(), 0u);
}

// ---------------------------------------------------------------------------
// End-to-end CLI contracts (subprocess; SCHED91_CLI_PATH from CMake).

namespace
{

std::string
tempPath(const char *tag)
{
    return "/tmp/sched91-clitest-" + std::string(tag) + "-" +
           std::to_string(::getpid());
}

void
writeFile(const std::string &path, const std::string &text)
{
    std::ofstream out(path);
    out << text;
    ASSERT_TRUE(out.good());
}

std::string
readFileOr(const std::string &path, const std::string &fallback)
{
    std::ifstream in(path);
    if (!in)
        return fallback;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

} // namespace

TEST(CliContract, EmptyProgramSchedulesCleanlyWithValidStats)
{
    const std::string input = tempPath("empty.s");
    const std::string stats = tempPath("empty-stats.json");
    writeFile(input, "");

    const std::string cmd = std::string(SCHED91_CLI_PATH) +
                            " schedule " + input + " --stats-json " +
                            stats + " > /dev/null 2>&1";
    int rc = std::system(cmd.c_str());
    ASSERT_TRUE(WIFEXITED(rc));
    EXPECT_EQ(WEXITSTATUS(rc), 0);

    const std::string text = readFileOr(stats, "");
    ASSERT_FALSE(text.empty());
    obs::JsonValue doc = obs::parseJson(text); // must stay valid JSON
    EXPECT_EQ(doc.numberOr("blocks", -1), 0);
    EXPECT_EQ(text.find("nan"), std::string::npos);
    ::unlink(input.c_str());
    ::unlink(stats.c_str());
}

TEST(CliContract, SigintMidRunDrainsAndEmitsStats)
{
    // A deliberately large multi-block program so the run outlives
    // the signal: ~30 generated translation units, n**2 builder.
    std::string source;
    for (std::uint64_t seed = 1; seed <= 30; ++seed) {
        fuzz::GenParams params;
        params.seed = seed;
        params.numBlocks = 16;
        params.maxBlockSize = 220;
        source += fuzz::generateSource(params);
    }
    const std::string input = tempPath("sigint.s");
    const std::string stats = tempPath("sigint-stats.json");
    writeFile(input, source);

    int out[2];
    ASSERT_EQ(::pipe(out), 0);
    pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        ::dup2(out[1], STDOUT_FILENO);
        ::close(out[0]);
        ::close(out[1]);
        int devnull = ::open("/dev/null", O_WRONLY);
        if (devnull >= 0)
            ::dup2(devnull, STDERR_FILENO);
        ::execl(SCHED91_CLI_PATH, SCHED91_CLI_PATH, "schedule",
                input.c_str(), "--builder", "n2-fwd", "--stats-json",
                stats.c_str(), static_cast<char *>(nullptr));
        ::_exit(127);
    }
    ::close(out[1]);

    // Sync point: the first stdout byte means the run is under way.
    char byte;
    ssize_t got = ::read(out[0], &byte, 1);
    ASSERT_EQ(got, 1) << "CLI produced no output before exiting";
    ASSERT_EQ(::kill(pid, SIGINT), 0);

    // Keep the pipe drained so the child never blocks on a full pipe
    // while degrading the remaining blocks.
    std::thread sink([&] {
        char sinkBuffer[65536];
        while (::read(out[0], sinkBuffer, sizeof sinkBuffer) > 0) {
        }
    });

    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    sink.join();
    ::close(out[0]);
    ASSERT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 0); // drain is not a failure

    obs::JsonValue doc = obs::parseJson(readFileOr(stats, "{}"));
    ASSERT_TRUE(doc.has("robust"));
    EXPECT_GT(doc.at("robust").numberOr("blocks_degraded", 0), 0);
    ASSERT_TRUE(doc.has("counters"));
    EXPECT_GE(doc.at("counters").numberOr("cancel.run_interrupted", 0),
              1);
    ::unlink(input.c_str());
    ::unlink(stats.c_str());
}

// ---------------------------------------------------------------------------
// Live telemetry (docs/OBSERVABILITY.md): control-line protocol,
// trace propagation, the span log, and the in-band endpoints.

TEST(Protocol, ControlLinesClassifyAndRoundTrip)
{
    // The three live endpoints.
    service::ControlRequest req =
        service::parseControlLine("{\"type\":\"stats\",\"id\":\"s1\"}");
    EXPECT_EQ(req.type, service::ControlType::Stats);
    EXPECT_EQ(req.id, "s1");
    EXPECT_EQ(req.format, "json"); // the default format

    req = service::parseControlLine(
        "{\"type\":\"stats\",\"format\":\"prometheus\"}");
    EXPECT_EQ(req.type, service::ControlType::Stats);
    EXPECT_EQ(req.format, "prometheus");

    req = service::parseControlLine("{\"type\":\"health\"}");
    EXPECT_EQ(req.type, service::ControlType::Health);

    req = service::parseControlLine("{\"type\":\"trace-dump\"}");
    EXPECT_EQ(req.type, service::ControlType::TraceDump);

    // Anything without a "type" string key takes the scheduling path
    // — including malformed JSON, whose errors belong to that path.
    EXPECT_EQ(service::parseControlLine(
                  "{\"id\":\"q1\",\"source\":\"\"}")
                  .type,
              service::ControlType::None);
    EXPECT_EQ(service::parseControlLine("not json at all").type,
              service::ControlType::None);
    EXPECT_EQ(service::parseControlLine("{\"type\":7}").type,
              service::ControlType::None);

    // A "type" we do not serve is Invalid (answered with an error),
    // as is an unknown stats format.
    req = service::parseControlLine("{\"type\":\"bogus\"}");
    EXPECT_EQ(req.type, service::ControlType::Invalid);
    EXPECT_FALSE(req.error.empty());
    req = service::parseControlLine(
        "{\"type\":\"stats\",\"format\":\"xml\"}");
    EXPECT_EQ(req.type, service::ControlType::Invalid);
    EXPECT_FALSE(req.error.empty());

    // Serializer round trip.
    service::ControlRequest out;
    out.type = service::ControlType::Stats;
    out.id = "rt";
    out.format = "prometheus";
    req = service::parseControlLine(service::controlRequestLine(out));
    EXPECT_EQ(req.type, service::ControlType::Stats);
    EXPECT_EQ(req.id, "rt");
    EXPECT_EQ(req.format, "prometheus");
}

TEST(Protocol, TraceIdRidesRequestEnvelopeAndResponse)
{
    // Client-supplied trace id survives request parsing.
    std::string error;
    std::optional<service::RequestSpec> spec =
        service::parseRequestLine("{\"id\":\"q1\",\"source\":\"\","
                                  "\"trace_id\":\"t42\"}",
                                  error);
    ASSERT_TRUE(spec.has_value()) << error;
    EXPECT_EQ(spec->traceId, "t42");

    // ... and the sandbox envelope round trip.
    service::SandboxEnvelope env;
    env.spec = *spec;
    env.attempt = 2;
    std::optional<service::SandboxEnvelope> back =
        service::parseSandboxEnvelopeLine(
            service::sandboxEnvelopeLine(env), error);
    ASSERT_TRUE(back.has_value()) << error;
    EXPECT_EQ(back->spec.traceId, "t42");
    EXPECT_EQ(back->attempt, 2);

    // Responses echo the id and carry the per-phase spans, which
    // phaseSpansFromResponse() recovers on the supervisor side.
    service::ResponseBody body;
    body.traceId = "t42";
    body.spans.parseNs = 10;
    body.spans.buildNs = 20;
    body.spans.schedNs = 30;
    const std::string line = service::responseLine("q1", body);
    obs::JsonValue doc = obs::parseJson(line);
    EXPECT_EQ(doc.strOr("trace_id", ""), "t42");
    service::PhaseSpans spans =
        service::phaseSpansFromResponse(line);
    EXPECT_EQ(spans.parseNs, 10u);
    EXPECT_EQ(spans.buildNs, 20u);
    EXPECT_EQ(spans.heurNs, 0u);
    EXPECT_EQ(spans.schedNs, 30u);
    EXPECT_TRUE(spans.any());

    // Absent spans parse as all-zero (old workers, error lines).
    body = service::ResponseBody{};
    spans = service::phaseSpansFromResponse(
        service::responseLine("q2", body));
    EXPECT_FALSE(spans.any());
}

TEST(ServiceTraceLog, BoundedRecordingAndChromeRendering)
{
    obs::ServiceTraceLog log(3);
    obs::RequestTrace trace;
    trace.log = &log;
    trace.traceId = "t1";
    trace.lane = 2;
    trace.epoch = std::chrono::steady_clock::now();

    trace.span("queue", -1, 0, 50);
    trace.span("rung", 1, 50, 90, "ok");
    trace.span("request", -1, 0, 100);
    EXPECT_EQ(log.size(), 3u);
    EXPECT_EQ(log.dropped(), 0u);

    // Full log counts drops instead of evicting history.
    trace.span("request", -1, 0, 10);
    EXPECT_EQ(log.size(), 3u);
    EXPECT_EQ(log.dropped(), 1u);

    // The rendered document is one parseable Chrome trace whose
    // events carry the trace id and note under args.
    obs::JsonValue doc = obs::parseJson(log.chromeJson(false));
    ASSERT_TRUE(doc.has("traceEvents"));
    const obs::JsonValue::Array &events = doc.at("traceEvents").array();
    ASSERT_EQ(events.size(), 3u);
    std::set<std::string> names;
    for (const obs::JsonValue &ev : events) {
        EXPECT_EQ(ev.strOr("ph", ""), "X");
        names.insert(ev.strOr("name", ""));
        ASSERT_TRUE(ev.has("args"));
        EXPECT_EQ(ev.at("args").strOr("trace_id", ""), "t1");
    }
    EXPECT_TRUE(names.count("queue"));
    EXPECT_TRUE(names.count("rung"));
    EXPECT_TRUE(names.count("request"));

    // zeroTimes yields a byte-stable document across runs.
    EXPECT_EQ(log.chromeJson(true), log.chromeJson(true));

    // A null log is a safe no-op sink.
    obs::RequestTrace off;
    off.span("request", -1, 0, 1);
    EXPECT_EQ(log.size(), 3u); // nothing new was recorded anywhere
}

TEST(Daemon, ControlLinesAnswerInBandWithOneSchema)
{
    FaultGuard guard;
    service::DaemonConfig config;
    config.socketPath = testSocketPath("control");
    config.workers = 2;
    config.queueCapacity = 8;
    config.statsPath = "";
    ::unlink(config.socketPath.c_str());

    service::Daemon daemon(config);
    int rc = -1;
    std::thread server([&] { rc = daemon.run(); });

    int fd = connectWithRetry(config.socketPath);
    ASSERT_GE(fd, 0) << "daemon did not come up";

    // One real request first, so the tallies are non-trivial and the
    // span log holds one finished request tree.
    ASSERT_TRUE(sendAll(fd, "{\"id\":\"q0\",\"source\":\"add %g1, "
                            "%g2, %g3\\n\"}\n"));
    std::vector<std::string> lines = readLines(fd, 1);
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_EQ(obs::parseJson(lines[0]).strOr("status", ""), "ok");

    ASSERT_TRUE(sendAll(
        fd,
        "{\"type\":\"stats\",\"id\":\"s1\"}\n"
        "{\"type\":\"stats\",\"id\":\"s2\",\"format\":"
        "\"prometheus\"}\n"
        "{\"type\":\"health\",\"id\":\"h1\"}\n"
        "{\"type\":\"trace-dump\",\"id\":\"t1\"}\n"
        "{\"type\":\"bogus\",\"id\":\"x1\"}\n"));
    lines = readLines(fd, 5);
    ASSERT_EQ(lines.size(), 5u);

    // Stats: the same document shape as the drain-time file, and at
    // quiesce the conservation law balances exactly.
    obs::JsonValue stats = obs::parseJson(lines[0]);
    EXPECT_EQ(stats.numberOr("sched91_serve_stats", 0), 1);
    EXPECT_EQ(stats.strOr("id", ""), "s1");
    ASSERT_TRUE(stats.has("meta"));
    EXPECT_EQ(stats.at("meta").numberOr("stats_schema", 0), 1);
    EXPECT_GE(stats.at("meta").numberOr("uptime_seconds", -1), 0);
    ASSERT_TRUE(stats.has("service"));
    const obs::JsonValue &svc = stats.at("service");
    EXPECT_EQ(svc.numberOr("accepted", -1), 1);
    EXPECT_EQ(svc.numberOr("accepted", -1),
              svc.numberOr("ok", 0) + svc.numberOr("degraded", 0) +
                  svc.numberOr("error", 0) +
                  svc.numberOr("rejected_after_admit", 0));
    ASSERT_TRUE(stats.has("queue"));
    EXPECT_EQ(stats.at("queue").numberOr("capacity", 0), 8);
    ASSERT_TRUE(stats.has("histograms"));
    ASSERT_TRUE(stats.has("trace"));
    EXPECT_GT(stats.at("trace").numberOr("spans", 0), 0);

    // Prometheus: the text exposition rides inside the JSON line.
    obs::JsonValue prom = obs::parseJson(lines[1]);
    EXPECT_EQ(prom.strOr("id", ""), "s2");
    EXPECT_EQ(prom.strOr("format", ""), "prometheus");
    const std::string expo = prom.strOr("exposition", "");
    EXPECT_NE(expo.find("# TYPE sched91_svc_uptime_seconds gauge\n"),
              std::string::npos);
    EXPECT_NE(expo.find("sched91_svc_queue_capacity"),
              std::string::npos);
    EXPECT_NE(expo.find("machine=\""), std::string::npos);

    // Health: cheap liveness/pressure probe.
    obs::JsonValue health = obs::parseJson(lines[2]);
    EXPECT_EQ(health.numberOr("sched91_serve_health", 0), 1);
    EXPECT_EQ(health.strOr("id", ""), "h1");
    EXPECT_EQ(health.strOr("status", ""), "ok");
    EXPECT_EQ(health.numberOr("accepted", -1), 1);
    EXPECT_EQ(health.numberOr("queue_capacity", 0), 8);

    // Trace dump: the answered request renders as one connected span
    // tree — a request span plus its queue child, same trace id.
    obs::JsonValue dump = obs::parseJson(lines[3]);
    EXPECT_EQ(dump.numberOr("sched91_serve_trace", 0), 1);
    ASSERT_TRUE(dump.has("trace"));
    const obs::JsonValue::Array &events =
        dump.at("trace").at("traceEvents").array();
    ASSERT_FALSE(events.empty());
    std::set<std::string> spanNames;
    std::set<std::string> traceIds;
    for (const obs::JsonValue &ev : events) {
        spanNames.insert(ev.strOr("name", ""));
        traceIds.insert(ev.at("args").strOr("trace_id", ""));
    }
    EXPECT_TRUE(spanNames.count("request"));
    EXPECT_TRUE(spanNames.count("queue"));
    EXPECT_EQ(traceIds.size(), 1u); // one request, one tree

    // Unknown type: answered as an error, not dropped, not queued.
    obs::JsonValue bad = obs::parseJson(lines[4]);
    EXPECT_EQ(bad.strOr("status", ""), "error");
    EXPECT_EQ(bad.strOr("id", ""), "x1");

    daemon.requestDrain();
    server.join();
    EXPECT_EQ(rc, 0);
    // Control lines never touch admission.
    EXPECT_EQ(daemon.counters().accepted.load(), 1u);
    EXPECT_EQ(daemon.counters().rejected.load(), 0u);
    ::close(fd);
}

TEST(Daemon, PeriodicSnapshotsShareTheStatsSchema)
{
    FaultGuard guard;
    service::DaemonConfig config;
    config.socketPath = testSocketPath("snapshot");
    config.workers = 1;
    config.queueCapacity = 8;
    config.statsPath = "";
    config.snapshotSeconds = 0.05;
    config.snapshotPath = "/tmp/sched91-test-snap-" +
                          std::to_string(::getpid()) + ".jsonl";
    ::unlink(config.socketPath.c_str());
    ::unlink(config.snapshotPath.c_str());

    service::Daemon daemon(config);
    int rc = -1;
    std::thread server([&] { rc = daemon.run(); });

    int fd = connectWithRetry(config.socketPath);
    ASSERT_GE(fd, 0) << "daemon did not come up";
    ASSERT_TRUE(sendAll(fd, "{\"id\":\"q0\",\"source\":\"add %g1, "
                            "%g2, %g3\\n\"}\n"));
    ASSERT_EQ(readLines(fd, 1).size(), 1u);
    std::this_thread::sleep_for(std::chrono::milliseconds(150));

    daemon.requestDrain();
    server.join();
    EXPECT_EQ(rc, 0);
    ::close(fd);

    // Every line is one complete stats document (temp-then-rename
    // writes mean a reader never sees a torn line) with the shared
    // schema marker and a delta section.
    std::ifstream in(config.snapshotPath);
    ASSERT_TRUE(in.good()) << config.snapshotPath;
    std::string line;
    std::size_t count = 0;
    double lastAccepted = 0.0;
    while (std::getline(in, line)) {
        obs::JsonValue doc = obs::parseJson(line);
        EXPECT_EQ(doc.numberOr("sched91_serve_stats", 0), 1);
        EXPECT_EQ(doc.at("meta").numberOr("stats_schema", 0), 1);
        ASSERT_TRUE(doc.has("delta"));
        const double accepted =
            doc.at("service").numberOr("accepted", 0);
        EXPECT_GE(accepted, lastAccepted); // snapshots are monotone
        lastAccepted = accepted;
        ++count;
    }
    EXPECT_GE(count, 1u);
    // The final tick ran at drain, so the last snapshot accounts for
    // everything this test sent.
    EXPECT_EQ(lastAccepted, 1.0);
    ::unlink(config.snapshotPath.c_str());
}
