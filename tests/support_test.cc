/**
 * @file
 * Unit tests for the support layer: bitmaps, statistics accumulators,
 * string utilities, and the deterministic PRNG.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "support/bitmap.hh"
#include "support/dary_heap.hh"
#include "support/prng.hh"
#include "support/stats.hh"
#include "support/string_util.hh"

namespace sched91
{
namespace
{

TEST(Bitmap, SetTestClear)
{
    Bitmap b(10);
    EXPECT_FALSE(b.test(3));
    b.set(3);
    EXPECT_TRUE(b.test(3));
    b.clear(3);
    EXPECT_FALSE(b.test(3));
}

TEST(Bitmap, AutoGrowOnSet)
{
    Bitmap b;
    b.set(200);
    EXPECT_TRUE(b.test(200));
    EXPECT_FALSE(b.test(199));
    EXPECT_GE(b.size(), 201u);
}

TEST(Bitmap, OutOfRangeReadsFalse)
{
    Bitmap b(8);
    EXPECT_FALSE(b.test(1000));
}

TEST(Bitmap, OrWithGrows)
{
    Bitmap a(4);
    Bitmap b(130);
    a.set(1);
    b.set(128);
    a.orWith(b);
    EXPECT_TRUE(a.test(1));
    EXPECT_TRUE(a.test(128));
    EXPECT_EQ(a.count(), 2u);
}

TEST(Bitmap, CountAcrossWords)
{
    Bitmap b(200);
    for (std::size_t i = 0; i < 200; i += 7)
        b.set(i);
    std::size_t expected = 0;
    for (std::size_t i = 0; i < 200; i += 7)
        ++expected;
    EXPECT_EQ(b.count(), expected);
}

TEST(Bitmap, ForEachSetAscending)
{
    Bitmap b(150);
    b.set(0);
    b.set(63);
    b.set(64);
    b.set(149);
    std::vector<std::size_t> seen;
    b.forEachSet([&](std::size_t i) { seen.push_back(i); });
    EXPECT_EQ(seen, (std::vector<std::size_t>{0, 63, 64, 149}));
}

TEST(Bitmap, ResetKeepsCapacity)
{
    Bitmap b(100);
    b.set(50);
    b.reset();
    EXPECT_TRUE(b.none());
    EXPECT_GE(b.size(), 100u);
}

TEST(MinMaxAvg, Accumulates)
{
    MinMaxAvg s;
    s.add(2);
    s.add(4);
    s.add(9);
    EXPECT_EQ(s.count(), 3u);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.avg(), 5.0);
}

TEST(MinMaxAvg, EmptyIsZero)
{
    MinMaxAvg s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.avg(), 0.0);
    EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(MinMaxAvg, Merge)
{
    MinMaxAvg a, b;
    a.add(1);
    a.add(3);
    b.add(10);
    a.merge(b);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.max(), 10.0);
    EXPECT_DOUBLE_EQ(a.min(), 1.0);
}

TEST(StringUtil, Trim)
{
    EXPECT_EQ(trim("  abc \t"), "abc");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim("   "), "");
}

TEST(StringUtil, SplitOperandsRespectsBrackets)
{
    auto v = splitOperands("[%o0+4], %g1");
    ASSERT_EQ(v.size(), 2u);
    EXPECT_EQ(v[0], "[%o0+4]");
    EXPECT_EQ(v[1], "%g1");
}

TEST(StringUtil, SplitTrimDropsEmpty)
{
    auto v = splitTrim("a,,b , c", ',');
    ASSERT_EQ(v.size(), 3u);
    EXPECT_EQ(v[2], "c");
}

TEST(StringUtil, Padding)
{
    EXPECT_EQ(padLeft("ab", 5), "   ab");
    EXPECT_EQ(padRight("ab", 5), "ab   ");
    EXPECT_EQ(padLeft("abcdef", 3), "abcdef");
}

TEST(Prng, Deterministic)
{
    Prng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Prng, RangeBounds)
{
    Prng rng(7);
    for (int i = 0; i < 1000; ++i) {
        auto v = rng.range(-5, 5);
        EXPECT_GE(v, -5);
        EXPECT_LE(v, 5);
    }
}

TEST(Prng, UniformInUnitInterval)
{
    Prng rng(9);
    for (int i = 0; i < 1000; ++i) {
        double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(DaryHeap, PopsInComparatorOrder)
{
    auto outranks = [](int a, int b) { return a > b; };
    DaryHeap<int, decltype(outranks)> heap(outranks);
    Prng rng(3);
    std::vector<int> values;
    for (int i = 0; i < 500; ++i)
        values.push_back(static_cast<int>(rng.range(-1000, 1000)));
    for (int v : values)
        heap.push(v);

    std::vector<int> popped;
    while (!heap.empty())
        popped.push_back(heap.pop());
    std::sort(values.begin(), values.end(), outranks);
    EXPECT_EQ(popped, values);
}

TEST(DaryHeap, PopSequenceIndependentOfPushOrder)
{
    // Under a strict total order the pop sequence is unique — the
    // property that lets the scheduler swap its scan for the heap.
    auto outranks = [](int a, int b) { return a < b; };
    std::vector<int> asc, desc, shuffled;
    for (int i = 0; i < 100; ++i)
        asc.push_back(i);
    desc.assign(asc.rbegin(), asc.rend());
    shuffled = asc;
    Prng rng(17);
    for (std::size_t i = shuffled.size(); i > 1; --i)
        std::swap(shuffled[i - 1],
                  shuffled[static_cast<std::size_t>(
                      rng.range(0, static_cast<int>(i) - 1))]);

    auto drain = [&](const std::vector<int> &order) {
        DaryHeap<int, decltype(outranks)> heap(outranks);
        for (int v : order)
            heap.push(v);
        std::vector<int> out;
        while (!heap.empty())
            out.push_back(heap.pop());
        return out;
    };
    EXPECT_EQ(drain(asc), drain(desc));
    EXPECT_EQ(drain(asc), drain(shuffled));
}

TEST(DaryHeap, InterleavedPushPop)
{
    auto outranks = [](int a, int b) { return a > b; };
    DaryHeap<int, decltype(outranks)> heap(outranks);
    heap.push(5);
    heap.push(9);
    heap.push(1);
    EXPECT_EQ(heap.pop(), 9);
    heap.push(7);
    heap.push(2);
    EXPECT_EQ(heap.pop(), 7);
    EXPECT_EQ(heap.pop(), 5);
    EXPECT_EQ(heap.pop(), 2);
    EXPECT_EQ(heap.pop(), 1);
    EXPECT_TRUE(heap.empty());
}

TEST(DaryHeap, BorrowedStorageIsClearedAndReused)
{
    auto outranks = [](int a, int b) { return a > b; };
    std::vector<int> store{99, 98, 97}; // stale content must vanish
    {
        DaryHeap<int, decltype(outranks)> heap(outranks, &store);
        EXPECT_TRUE(heap.empty());
        heap.push(3);
        heap.push(8);
        EXPECT_EQ(heap.pop(), 8);
        EXPECT_EQ(heap.pop(), 3);
    }
    // Second heap over the same storage starts empty again.
    store.push_back(42);
    DaryHeap<int, decltype(outranks)> heap2(outranks, &store);
    EXPECT_TRUE(heap2.empty());
    EXPECT_EQ(store.capacity() >= 3, true);
}

TEST(Prng, HeavyTailRespectsBounds)
{
    Prng rng(11);
    double sum = 0;
    for (int i = 0; i < 5000; ++i) {
        int v = rng.heavyTail(10.0, 100);
        EXPECT_GE(v, 1);
        EXPECT_LE(v, 100);
        sum += v;
    }
    double mean = sum / 5000;
    EXPECT_GT(mean, 6.0);
    EXPECT_LT(mean, 14.0);
}

} // namespace
} // namespace sched91
