/**
 * @file
 * Randomized property sweeps: many seeds x synthetic programs,
 * checking the library's global invariants end to end —
 *
 *  - every builder pair agrees on the dependence closure and (table
 *    vs n**2) on all-pairs timing;
 *  - every algorithm produces valid, semantics-preserving schedules;
 *  - EST/LST/slack invariants hold on every DAG;
 *  - pipeline-simulated cycles are no worse than the serial bound
 *    and no better than the critical-path bound.
 */

#include <gtest/gtest.h>

#include "core/pipeline.hh"
#include "dag/table_backward.hh"
#include "dag/table_forward.hh"
#include "heuristics/static_passes.hh"
#include "sched/fixup.hh"
#include "machine/presets.hh"
#include "sim/executor.hh"
#include "workload/generator.hh"

namespace sched91
{
namespace
{

WorkloadProfile
sweepProfile(std::uint64_t seed, bool fp)
{
    WorkloadProfile p = profileByName(fp ? "lloops" : "dfa");
    p.seed = seed;
    p.numBlocks = 12;
    p.totalInsts = 260;
    p.maxBlock = 48;
    p.secondBlock = 0;
    return p;
}

class SeedSweep : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(SeedSweep, TimingEquivalenceAcrossBuilders)
{
    for (bool fp : {false, true}) {
        Program prog = generateProgram(sweepProfile(GetParam(), fp));
        auto blocks = partitionBlocks(prog);
        MachineModel machine = sparcstation2();
        for (const auto &bb : blocks) {
            BlockView block(prog, bb);
            Dag a = TableForwardBuilder().build(block, machine,
                                                BuildOptions{});
            Dag b = TableBackwardBuilder().build(block, machine,
                                                 BuildOptions{});
            runAllStaticPasses(a);
            runAllStaticPasses(b);
            for (std::uint32_t i = 0; i < a.size(); ++i) {
                EXPECT_EQ(a.ann().maxDelayToLeaf[i],
                          b.ann().maxDelayToLeaf[i]);
                EXPECT_EQ(a.ann().maxDelayFromRoot[i],
                          b.ann().maxDelayFromRoot[i]);
                EXPECT_EQ(a.ann().earliestStart[i],
                          b.ann().earliestStart[i]);
            }
        }
    }
}

TEST_P(SeedSweep, SchedulesPreserveSemantics)
{
    Program prog = generateProgram(sweepProfile(GetParam(), true));
    auto blocks = partitionBlocks(prog);
    MachineModel machine = sparcstation2();
    for (AlgorithmKind kind :
         {AlgorithmKind::Krishnamurthy, AlgorithmKind::Tiemann,
          AlgorithmKind::Warren}) {
        PipelineOptions opts;
        opts.algorithm = kind;
        opts.builder = algorithmSpec(kind).preferredBuilder;
        for (const auto &bb : blocks) {
            BlockView block(prog, bb);
            auto result = scheduleBlock(block, machine, opts);
            ASSERT_TRUE(
                isValidTopologicalOrder(result.dag, result.sched.order));
            std::vector<std::uint32_t> identity(block.size());
            for (std::uint32_t i = 0; i < identity.size(); ++i)
                identity[i] = i;
            ASSERT_EQ(runBlock(block, identity, GetParam()),
                      runBlock(block, result.sched.order, GetParam()))
                << algorithmName(kind);
        }
    }
}

TEST_P(SeedSweep, CycleBounds)
{
    Program prog = generateProgram(sweepProfile(GetParam(), true));
    auto blocks = partitionBlocks(prog);
    MachineModel machine = sparcstation2();
    for (const auto &bb : blocks) {
        BlockView block(prog, bb);
        Dag dag = TableForwardBuilder().build(block, machine,
                                              BuildOptions{});
        runAllStaticPasses(dag);
        PipelineOptions opts;
        opts.algorithm = AlgorithmKind::Krishnamurthy;
        auto result = scheduleBlock(block, machine, opts);
        SimResult sim =
            simulateSchedule(dag, result.sched.order, machine);

        // Lower bound: the critical path — max over nodes of the
        // longest arc-delay path closed with the *final* node's
        // latency — and the issue-slot bound.
        std::vector<int> tail(dag.size(), 0);
        int critical = 0;
        for (std::uint32_t i = dag.size(); i-- > 0;) {
            tail[i] = dag.ann().execTime[i];
            for (std::uint32_t arc_id : dag.succs(i)) {
                const Arc &arc = dag.arc(arc_id);
                tail[i] = std::max(tail[i], arc.delay + tail[arc.to]);
            }
            critical = std::max(critical, tail[i]);
        }
        EXPECT_GE(sim.cycles, critical);
        EXPECT_GE(sim.cycles, static_cast<int>(block.size()));

        // Upper bound: fully serialized execution.
        long long serial = 0;
        for (std::uint32_t i = 0; i < block.size(); ++i)
            serial += machine.latency(block.inst(i).cls());
        EXPECT_LE(sim.cycles, serial);
    }
}

TEST_P(SeedSweep, SlackInvariantsHold)
{
    Program prog = generateProgram(sweepProfile(GetParam(), true));
    auto blocks = partitionBlocks(prog);
    MachineModel machine = sparcstation2();
    for (const auto &bb : blocks) {
        Dag dag = TableForwardBuilder().build(BlockView(prog, bb),
                                              machine, BuildOptions{});
        runAllStaticPasses(dag);
        bool critical_found = false;
        const NodeAnnotations &ann = dag.ann();
        for (std::uint32_t i = 0; i < dag.size(); ++i) {
            EXPECT_GE(ann.slack[i], 0);
            EXPECT_LE(ann.earliestStart[i], ann.latestStart[i]);
            if (ann.slack[i] == 0)
                critical_found = true;
        }
        EXPECT_TRUE(critical_found);
    }
}

TEST_P(SeedSweep, FixupNeverHurts)
{
    Program prog = generateProgram(sweepProfile(GetParam(), true));
    auto blocks = partitionBlocks(prog);
    MachineModel machine = sparcstation2();
    for (const auto &bb : blocks) {
        BlockView block(prog, bb);
        Dag dag = TableForwardBuilder().build(block, machine,
                                              BuildOptions{});
        runAllStaticPasses(dag);
        Schedule sched = originalOrderSchedule(dag);
        int before = simulateSchedule(dag, sched.order, machine).cycles;
        applyPostpassFixup(dag, sched);
        ASSERT_TRUE(isValidTopologicalOrder(dag, sched.order));
        int after = simulateSchedule(dag, sched.order, machine).cycles;
        EXPECT_LE(after, before);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(11, 23, 47, 101, 499, 1009,
                                           4001, 9173));

} // namespace
} // namespace sched91
