/**
 * @file
 * Unit tests for the chunked self-scheduling thread pool: exact-once
 * coverage of the index range at various thread/chunk geometries,
 * caller participation on the single-lane serial path, exception
 * propagation, and pool reuse across parallelFor calls.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "obs/counters.hh"
#include "obs/events.hh"
#include "support/logging.hh"
#include "support/thread_pool.hh"

namespace sched91
{
namespace
{

/** Every index in [0, n) must be visited exactly once. */
void
expectExactOnceCoverage(unsigned threads, std::size_t n,
                        std::size_t chunk)
{
    std::vector<std::atomic<int>> hits(n);
    ThreadPool pool(threads);
    pool.parallelFor(n, chunk,
                     [&](unsigned, std::size_t begin, std::size_t end) {
                         for (std::size_t i = begin; i < end; ++i)
                             hits[i].fetch_add(1);
                     });
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, CoversRangeExactlyOnce)
{
    expectExactOnceCoverage(1, 100, 1);
    expectExactOnceCoverage(2, 100, 1);
    expectExactOnceCoverage(4, 100, 7);
    expectExactOnceCoverage(8, 1000, 3);
    expectExactOnceCoverage(4, 3, 100); // chunk larger than range
}

TEST(ThreadPool, EmptyRangeIsANoop)
{
    ThreadPool pool(4);
    std::atomic<int> calls{0};
    pool.parallelFor(0, 1, [&](unsigned, std::size_t, std::size_t) {
        calls.fetch_add(1);
    });
    EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPool, SingleLaneRunsOnCallingThread)
{
    ThreadPool pool(1);
    EXPECT_EQ(pool.threads(), 1u);
    std::thread::id caller = std::this_thread::get_id();
    pool.parallelFor(10, 4,
                     [&](unsigned worker, std::size_t, std::size_t) {
                         EXPECT_EQ(worker, 0u);
                         EXPECT_EQ(std::this_thread::get_id(), caller);
                     });
}

TEST(ThreadPool, WorkerIdsAreInRange)
{
    const unsigned kThreads = 4;
    ThreadPool pool(kThreads);
    std::atomic<bool> bad{false};
    pool.parallelFor(200, 1,
                     [&](unsigned worker, std::size_t, std::size_t) {
                         if (worker >= kThreads)
                             bad = true;
                     });
    EXPECT_FALSE(bad.load());
}

TEST(ThreadPool, FirstExceptionPropagates)
{
    ThreadPool pool(4);
    EXPECT_THROW(
        pool.parallelFor(100, 1,
                         [&](unsigned, std::size_t begin, std::size_t) {
                             if (begin == 50)
                                 throw std::runtime_error("boom");
                         }),
        std::runtime_error);
    // The pool survives the throw and is reusable.
    std::atomic<int> count{0};
    pool.parallelFor(10, 1, [&](unsigned, std::size_t b, std::size_t e) {
        count.fetch_add(static_cast<int>(e - b));
    });
    EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, MultipleFailuresAreCountedNotSwallowed)
{
    // Every one of the 8 chunks throws; the pool must deliver the
    // first error annotated with the other 7, not silently drop them.
    obs::setEnabled(true);
    obs::CounterSet before = obs::CounterRegistry::global().snapshot();

    ThreadPool pool(4);
    try {
        pool.parallelFor(8, 1,
                         [&](unsigned, std::size_t b, std::size_t) {
                             fatal("chunk ", b, " failed");
                         });
        FAIL() << "parallelFor should have thrown";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find(
                      "(7 additional worker errors suppressed)"),
                  std::string::npos)
            << "message was: " << e.what();
    }

    obs::CounterSet delta =
        obs::CounterRegistry::global().deltaSince(before);
    EXPECT_EQ(delta.value("robust.pool_suppressed_errors"), 7u);
    obs::setEnabled(false);

    // The pool survives the failures and is reusable.
    std::atomic<int> count{0};
    pool.parallelFor(8, 1, [&](unsigned, std::size_t b, std::size_t e) {
        count.fetch_add(static_cast<int>(e - b));
    });
    EXPECT_EQ(count.load(), 8);
}

TEST(ThreadPool, SingleFailureIsNotAnnotated)
{
    ThreadPool pool(4);
    try {
        pool.parallelFor(100, 1,
                         [&](unsigned, std::size_t b, std::size_t) {
                             if (b == 50)
                                 fatal("lone failure");
                         });
        FAIL() << "parallelFor should have thrown";
    } catch (const FatalError &e) {
        EXPECT_STREQ(e.what(), "lone failure");
    }
}

TEST(ThreadPool, PanicKeepsItsTypeWhenAnnotated)
{
    ThreadPool pool(2);
    try {
        pool.parallelFor(4, 1,
                         [&](unsigned, std::size_t, std::size_t) {
                             panic("invariant broken");
                         });
        FAIL() << "parallelFor should have thrown";
    } catch (const PanicError &e) {
        EXPECT_NE(std::string(e.what()).find("invariant broken"),
                  std::string::npos);
    }
}

TEST(ThreadPool, ReusableAcrossManyCalls)
{
    ThreadPool pool(3);
    for (int round = 0; round < 20; ++round) {
        std::atomic<long> sum{0};
        pool.parallelFor(100, 5,
                         [&](unsigned, std::size_t b, std::size_t e) {
                             long local = 0;
                             for (std::size_t i = b; i < e; ++i)
                                 local += static_cast<long>(i);
                             sum.fetch_add(local);
                         });
        EXPECT_EQ(sum.load(), 99L * 100L / 2L);
    }
}

TEST(ThreadPool, ZeroThreadsClampsToOne)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.threads(), 1u);
    expectExactOnceCoverage(0, 10, 2);
}

TEST(ThreadPool, HardwareConcurrencyNonZero)
{
    EXPECT_GE(ThreadPool::hardwareConcurrency(), 1u);
}

} // namespace
} // namespace sched91
