/**
 * @file
 * Unit tests for the chunked self-scheduling thread pool: exact-once
 * coverage of the index range at various thread/chunk geometries,
 * caller participation on the single-lane serial path, exception
 * propagation, and pool reuse across parallelFor calls.
 *
 * Also holds the BoundedQueue shutdown-ordering races (this binary is
 * the one CI pins under ThreadSanitizer): producers hammering
 * tryPush() while close() lands must never lose or duplicate an
 * accepted item, and every blocked consumer must wake and drain.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "obs/counters.hh"
#include "obs/events.hh"
#include "service/bounded_queue.hh"
#include "support/logging.hh"
#include "support/thread_pool.hh"

namespace sched91
{
namespace
{

/** Every index in [0, n) must be visited exactly once. */
void
expectExactOnceCoverage(unsigned threads, std::size_t n,
                        std::size_t chunk)
{
    std::vector<std::atomic<int>> hits(n);
    ThreadPool pool(threads);
    pool.parallelFor(n, chunk,
                     [&](unsigned, std::size_t begin, std::size_t end) {
                         for (std::size_t i = begin; i < end; ++i)
                             hits[i].fetch_add(1);
                     });
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, CoversRangeExactlyOnce)
{
    expectExactOnceCoverage(1, 100, 1);
    expectExactOnceCoverage(2, 100, 1);
    expectExactOnceCoverage(4, 100, 7);
    expectExactOnceCoverage(8, 1000, 3);
    expectExactOnceCoverage(4, 3, 100); // chunk larger than range
}

TEST(ThreadPool, EmptyRangeIsANoop)
{
    ThreadPool pool(4);
    std::atomic<int> calls{0};
    pool.parallelFor(0, 1, [&](unsigned, std::size_t, std::size_t) {
        calls.fetch_add(1);
    });
    EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPool, SingleLaneRunsOnCallingThread)
{
    ThreadPool pool(1);
    EXPECT_EQ(pool.threads(), 1u);
    std::thread::id caller = std::this_thread::get_id();
    pool.parallelFor(10, 4,
                     [&](unsigned worker, std::size_t, std::size_t) {
                         EXPECT_EQ(worker, 0u);
                         EXPECT_EQ(std::this_thread::get_id(), caller);
                     });
}

TEST(ThreadPool, WorkerIdsAreInRange)
{
    const unsigned kThreads = 4;
    ThreadPool pool(kThreads);
    std::atomic<bool> bad{false};
    pool.parallelFor(200, 1,
                     [&](unsigned worker, std::size_t, std::size_t) {
                         if (worker >= kThreads)
                             bad = true;
                     });
    EXPECT_FALSE(bad.load());
}

TEST(ThreadPool, FirstExceptionPropagates)
{
    ThreadPool pool(4);
    EXPECT_THROW(
        pool.parallelFor(100, 1,
                         [&](unsigned, std::size_t begin, std::size_t) {
                             if (begin == 50)
                                 throw std::runtime_error("boom");
                         }),
        std::runtime_error);
    // The pool survives the throw and is reusable.
    std::atomic<int> count{0};
    pool.parallelFor(10, 1, [&](unsigned, std::size_t b, std::size_t e) {
        count.fetch_add(static_cast<int>(e - b));
    });
    EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, MultipleFailuresAreCountedNotSwallowed)
{
    // Every one of the 8 chunks throws; the pool must deliver the
    // first error annotated with the other 7, not silently drop them.
    obs::setEnabled(true);
    obs::CounterSet before = obs::CounterRegistry::global().snapshot();

    ThreadPool pool(4);
    try {
        pool.parallelFor(8, 1,
                         [&](unsigned, std::size_t b, std::size_t) {
                             fatal("chunk ", b, " failed");
                         });
        FAIL() << "parallelFor should have thrown";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find(
                      "(7 additional worker errors suppressed)"),
                  std::string::npos)
            << "message was: " << e.what();
    }

    obs::CounterSet delta =
        obs::CounterRegistry::global().deltaSince(before);
    EXPECT_EQ(delta.value("robust.pool_suppressed_errors"), 7u);
    obs::setEnabled(false);

    // The pool survives the failures and is reusable.
    std::atomic<int> count{0};
    pool.parallelFor(8, 1, [&](unsigned, std::size_t b, std::size_t e) {
        count.fetch_add(static_cast<int>(e - b));
    });
    EXPECT_EQ(count.load(), 8);
}

TEST(ThreadPool, SingleFailureIsNotAnnotated)
{
    ThreadPool pool(4);
    try {
        pool.parallelFor(100, 1,
                         [&](unsigned, std::size_t b, std::size_t) {
                             if (b == 50)
                                 fatal("lone failure");
                         });
        FAIL() << "parallelFor should have thrown";
    } catch (const FatalError &e) {
        EXPECT_STREQ(e.what(), "lone failure");
    }
}

TEST(ThreadPool, PanicKeepsItsTypeWhenAnnotated)
{
    ThreadPool pool(2);
    try {
        pool.parallelFor(4, 1,
                         [&](unsigned, std::size_t, std::size_t) {
                             panic("invariant broken");
                         });
        FAIL() << "parallelFor should have thrown";
    } catch (const PanicError &e) {
        EXPECT_NE(std::string(e.what()).find("invariant broken"),
                  std::string::npos);
    }
}

TEST(ThreadPool, ReusableAcrossManyCalls)
{
    ThreadPool pool(3);
    for (int round = 0; round < 20; ++round) {
        std::atomic<long> sum{0};
        pool.parallelFor(100, 5,
                         [&](unsigned, std::size_t b, std::size_t e) {
                             long local = 0;
                             for (std::size_t i = b; i < e; ++i)
                                 local += static_cast<long>(i);
                             sum.fetch_add(local);
                         });
        EXPECT_EQ(sum.load(), 99L * 100L / 2L);
    }
}

TEST(ThreadPool, ZeroThreadsClampsToOne)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.threads(), 1u);
    expectExactOnceCoverage(0, 10, 2);
}

TEST(ThreadPool, HardwareConcurrencyNonZero)
{
    EXPECT_GE(ThreadPool::hardwareConcurrency(), 1u);
}

// --- BoundedQueue shutdown-ordering races ---------------------------
//
// The daemon's drain path closes the queue while connection readers
// are still mid-tryPush and worker lanes are blocked in pop().  The
// accounting contract under that race: every tryPush that returned
// true is popped exactly once, every tryPush after close returns
// false, and no consumer stays blocked.

TEST(BoundedQueue, CloseRaceLosesNothingAccepted)
{
    constexpr int kProducers = 4;
    constexpr int kConsumers = 4;
    constexpr int kPerProducer = 2000;

    for (int round = 0; round < 8; ++round) {
        service::BoundedQueue<int> queue(16);
        std::atomic<std::uint64_t> acceptedSum{0}, poppedSum{0};
        std::atomic<std::uint64_t> accepted{0}, popped{0};
        std::atomic<int> producersLive{kProducers};
        std::atomic<bool> go{false};

        std::vector<std::thread> producers;
        for (int p = 0; p < kProducers; ++p)
            producers.emplace_back([&, p] {
                while (!go.load(std::memory_order_acquire)) {
                }
                for (int i = 0; i < kPerProducer; ++i) {
                    int item = p * kPerProducer + i + 1;
                    if (queue.tryPush(item)) {
                        acceptedSum.fetch_add(
                            static_cast<std::uint64_t>(item),
                            std::memory_order_relaxed);
                        accepted.fetch_add(1,
                                           std::memory_order_relaxed);
                    }
                    // A rejected push after close must stay rejected.
                    else if (queue.closed()) {
                        EXPECT_FALSE(queue.tryPush(item));
                    }
                }
                producersLive.fetch_sub(1, std::memory_order_relaxed);
            });

        std::vector<std::thread> consumers;
        for (int c = 0; c < kConsumers; ++c)
            consumers.emplace_back([&] {
                while (std::optional<int> item = queue.pop()) {
                    poppedSum.fetch_add(
                        static_cast<std::uint64_t>(*item),
                        std::memory_order_relaxed);
                    popped.fetch_add(1, std::memory_order_relaxed);
                }
            });

        go.store(true, std::memory_order_release);
        // Land close() in the middle of the production burst so some
        // producers see it mid-loop and some consumers are blocked in
        // pop() when it arrives.  (Bail to close() early if rejects
        // ate the burst — consumers would otherwise block forever.)
        while (popped.load(std::memory_order_relaxed) <
                   kPerProducer / 2 &&
               producersLive.load(std::memory_order_relaxed) > 0) {
        }
        queue.close();

        for (std::thread &t : producers)
            t.join();
        for (std::thread &t : consumers)
            t.join();

        // Whatever was accepted was delivered: exactly once, in full.
        EXPECT_EQ(accepted.load(), popped.load());
        EXPECT_EQ(acceptedSum.load(), poppedSum.load());
        EXPECT_EQ(queue.size(), 0u);
        EXPECT_FALSE(queue.tryPush(0));
        EXPECT_EQ(queue.pop(), std::nullopt);
    }
}

TEST(BoundedQueue, CloseWakesBlockedConsumers)
{
    service::BoundedQueue<int> queue(4);
    constexpr int kConsumers = 6;
    std::atomic<int> woke{0};
    std::vector<std::thread> consumers;
    for (int c = 0; c < kConsumers; ++c)
        consumers.emplace_back([&] {
            while (queue.pop())
            {
            }
            woke.fetch_add(1);
        });
    // All consumers are (eventually) blocked on an empty open queue;
    // close() alone must release every one of them.
    queue.close();
    for (std::thread &t : consumers)
        t.join();
    EXPECT_EQ(woke.load(), kConsumers);
}

} // namespace
} // namespace sched91
