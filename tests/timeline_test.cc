/**
 * @file
 * Timeline renderer tests.
 */

#include <gtest/gtest.h>

#include "dag/table_forward.hh"
#include "ir/parser.hh"
#include "machine/presets.hh"
#include "sched/timeline.hh"

namespace sched91
{
namespace
{

Dag
build(Program &prog, const char *text)
{
    prog = parseAssembly(text);
    auto blocks = partitionBlocks(prog);
    return TableForwardBuilder().build(BlockView(prog, blocks.at(0)),
                                       sparcstation2(), BuildOptions{});
}

TEST(Timeline, MarksIssueAndBusyCycles)
{
    Program prog;
    Dag dag = build(prog,
                    "fdivd %f0, %f2, %f4\n"
                    "add %g1, 1, %g2\n");
    std::string out = renderTimeline(
        dag, originalOrderSchedule(dag).order, sparcstation2());
    EXPECT_NE(out.find("fp-divsqrt"), std::string::npos);
    EXPECT_NE(out.find("int-alu"), std::string::npos);
    // The divide occupies its unit: issue mark then busy fill.
    EXPECT_NE(out.find("0==="), std::string::npos);
}

TEST(Timeline, OmitsUnusedUnits)
{
    Program prog;
    Dag dag = build(prog, "add %g1, 1, %g2\n");
    std::string out = renderTimeline(
        dag, originalOrderSchedule(dag).order, sparcstation2());
    EXPECT_EQ(out.find("fp-divsqrt"), std::string::npos);
    EXPECT_NE(out.find("int-alu"), std::string::npos);
}

TEST(Timeline, TruncatesLongSchedules)
{
    Program prog;
    Dag dag = build(prog,
                    "fdivd %f0, %f2, %f4\n"
                    "fdivd %f4, %f6, %f8\n"
                    "fdivd %f8, %f10, %f12\n");
    TimelineOptions opts;
    opts.maxCycles = 20;
    std::string out = renderTimeline(
        dag, originalOrderSchedule(dag).order, sparcstation2(), opts);
    EXPECT_NE(out.find("…"), std::string::npos);
}

TEST(Timeline, ReportsCycleCount)
{
    Program prog;
    Dag dag = build(prog,
                    "ld [%o0], %g1\n"
                    "add %g1, 1, %g2\n");
    std::string out = renderTimeline(
        dag, originalOrderSchedule(dag).order, sparcstation2());
    EXPECT_NE(out.find("2 instructions"), std::string::npos);
}

} // namespace
} // namespace sched91
