/**
 * @file
 * Workload generator tests: the synthetic programs must reproduce the
 * Table 3 structural targets — exact block/instruction counts, pinned
 * maximum block size, memory-expression statistics within tolerance —
 * plus determinism and the fpppp windowing arithmetic (block counts
 * 662 -> 675/668/664 under windows of 1000/2000/4000).
 */

#include <gtest/gtest.h>

#include "ir/basic_block.hh"
#include "workload/generator.hh"
#include "workload/kernels.hh"
#include "workload/profiles.hh"

namespace sched91
{
namespace
{

class ProfileTest : public ::testing::TestWithParam<std::string>
{
};

TEST_P(ProfileTest, HitsTable3Targets)
{
    WorkloadProfile p = profileByName(GetParam());
    const Program &prog = cachedProgram(GetParam());
    Program copy = prog; // partition mutates (stamping) — use a copy
    auto blocks = partitionBlocks(copy);
    auto s = measureStructure(copy, blocks);

    EXPECT_EQ(static_cast<int>(s.numBlocks), p.numBlocks);
    EXPECT_EQ(static_cast<int>(s.numInsts), p.totalInsts);
    EXPECT_EQ(static_cast<int>(s.instsPerBlock.max()), p.maxBlock);

    // Memory-expression statistics within loose tolerance.
    EXPECT_LE(s.memExprsPerBlock.max(), p.maxMemExprs);
    EXPECT_GT(s.memExprsPerBlock.avg(), p.avgMemExprs * 0.4);
    EXPECT_LT(s.memExprsPerBlock.avg(), p.avgMemExprs * 2.0);
}

INSTANTIATE_TEST_SUITE_P(AllProfiles, ProfileTest,
                         ::testing::Values("grep", "regex", "dfa", "cccp",
                                           "linpack", "lloops", "tomcatv",
                                           "nasa7", "fpppp"));

TEST(Workload, Deterministic)
{
    Program a = generateProgram(profileByName("grep"));
    Program b = generateProgram(profileByName("grep"));
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i].op(), b[i].op()) << i;
}

TEST(Workload, FppppWindowBlockCounts)
{
    // Table 3: fpppp has 662 blocks; windows of 1000/2000/4000 yield
    // 675/668/664.
    Program prog = generateProgram(profileByName("fpppp"));

    auto count = [&prog](int window) {
        PartitionOptions opts;
        opts.window = window;
        return partitionBlocks(prog, opts).size();
    };

    EXPECT_EQ(count(0), 662u);
    EXPECT_EQ(count(4000), 664u);
    EXPECT_EQ(count(2000), 668u);
    EXPECT_EQ(count(1000), 675u);
}

TEST(Workload, FppppWindowMaxBlockSizes)
{
    Program prog = generateProgram(profileByName("fpppp"));
    for (int window : {1000, 2000, 4000}) {
        PartitionOptions opts;
        opts.window = window;
        auto blocks = partitionBlocks(prog, opts);
        std::uint32_t max_size = 0;
        for (const auto &bb : blocks)
            max_size = std::max(max_size, bb.size());
        EXPECT_EQ(static_cast<int>(max_size), window);
    }
}

TEST(Workload, FpProfilesContainFpCode)
{
    const Program &prog = cachedProgram("linpack");
    int fp = 0;
    for (const auto &inst : prog.insts())
        if (isFpClass(inst.cls()) || inst.op() == Opcode::Lddf ||
            inst.op() == Opcode::Stdf)
            ++fp;
    EXPECT_GT(fp, static_cast<int>(prog.size() / 4));
}

TEST(Workload, IntProfilesContainNoFpCode)
{
    const Program &prog = cachedProgram("grep");
    for (const auto &inst : prog.insts())
        EXPECT_FALSE(isFpClass(inst.cls())) << inst.toString();
}

TEST(Workload, BaseRegistersDefinedAtMostOncePerBlock)
{
    // The generator's disambiguation story depends on stable base
    // registers: a block may materialize a pointer once (sethi at
    // block start) but must never *re*define it, or the same-base
    // NoAlias reasoning would be wrong.
    auto is_base = [](int idx) {
        return idx == 1 || idx == 2 || idx == 3 || idx == 4 ||
               (idx >= 24 && idx <= 29) || idx == 30;
    };
    Program prog = cachedProgram("lloops");
    auto blocks = partitionBlocks(prog);
    for (const auto &bb : blocks) {
        std::map<int, int> defs;
        for (std::uint32_t i = bb.begin; i < bb.end; ++i) {
            const Instruction &inst = prog[i];
            if (inst.cls() == InstClass::Call)
                continue; // calls clobber %o regs, not the base set
            for (Resource r : inst.defs())
                if (r.kind() == Resource::Kind::IntReg &&
                    is_base(r.index())) {
                    ++defs[r.index()];
                }
        }
        for (auto [reg, count] : defs)
            EXPECT_LE(count, 1) << "base %r" << reg << " redefined";
    }
}

TEST(Workload, CachedProgramIsStable)
{
    const Program &a = cachedProgram("grep");
    const Program &b = cachedProgram("grep");
    EXPECT_EQ(&a, &b);
}

TEST(Kernels, AllParseAndPartition)
{
    for (const std::string &name : kernelNames()) {
        Program prog = kernelProgram(name);
        EXPECT_GT(prog.size(), 0u) << name;
        Program copy = prog;
        auto blocks = partitionBlocks(copy);
        EXPECT_GE(blocks.size(), 1u) << name;
    }
}

TEST(Kernels, Figure1Shape)
{
    Program prog = figure1Program();
    ASSERT_EQ(prog.size(), 3u);
    EXPECT_EQ(prog[0].cls(), InstClass::FpDiv);
    EXPECT_EQ(prog[1].cls(), InstClass::FpAdd);
    EXPECT_EQ(prog[2].cls(), InstClass::FpAdd);
}

TEST(PaperTable3, TwelveRows)
{
    EXPECT_EQ(paperTable3().size(), 12u);
    EXPECT_EQ(paperTable3().back().maxInstsPerBlock, 11750);
}

} // namespace
} // namespace sched91
