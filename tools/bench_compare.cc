/**
 * @file
 * Benchmark-regression gate: diffs two sets of BENCH_*.json records
 * (schema sched91.bench.v2, emitted by the bench/ targets via
 * bench_util.hh) and exits non-zero when a median regression exceeds
 * its threshold.
 *
 *   bench_compare BASELINE CURRENT [options]
 *
 * BASELINE and CURRENT are record files (one JSON object per line) or
 * directories of BENCH_*.json files.  Records pair up by
 * (bench, workload, threads); each shared metric's median is compared.
 *
 * Gating policy follows the two metric families bench_util.hh emits:
 *
 * - Noisy metrics (suffixes "_seconds", "_ns", "_ratio", "speedup",
 *   "iterations") depend on the host and the moment; they gate by
 *   default with a deliberately loose threshold (25%) and are only
 *   meaningful when baseline and current ran on the same machine.
 *   --no-time-gate demotes them to report-only — required when
 *   diffing against a baseline recorded elsewhere (the CI job).
 *
 * - Deterministic metrics (cycle counts, arc counts, structural
 *   data, decision tallies) are exactly reproducible, so any drift
 *   is reported; --gate-drift turns that drift into a failure, which
 *   is the committed-baseline CI gate.  An intentional change
 *   regenerates the baseline (tools/run_bench.sh --update-baseline).
 *
 *   --threshold PCT            default threshold for noisy metrics
 *   --threshold NAME=PCT       per-metric threshold (enables gating
 *                              for a deterministic metric NAME)
 *   --no-time-gate             noisy metrics report, never fail
 *   --gate-drift               deterministic drift fails the run
 *   --list                     print every paired metric, not just
 *                              regressions
 *
 * Exit codes: 0 = no regression, 1 = at least one regression,
 * 2 = bad usage / unreadable or malformed input.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json_parse.hh"
#include "support/logging.hh"

using sched91::fatal;
using sched91::FatalError;
using sched91::obs::JsonValue;
using sched91::obs::parseJson;

namespace
{

constexpr const char *kSchema = "sched91.bench.v2";
constexpr double kDefaultThreshold = 0.25; // 25%

struct Options
{
    std::string baseline;
    std::string current;
    double defaultThreshold = kDefaultThreshold;
    std::map<std::string, double> perMetric;
    bool listAll = false;
    bool noTimeGate = false;
    bool gateDrift = false;
};

/** One record: (bench, workload, threads) -> metric medians. */
struct Record
{
    std::map<std::string, double> medians;
    std::map<std::string, double> p90s;
};

using RecordMap = std::map<std::string, Record>;

/** Host-dependent metrics: comparable only within one machine/run. */
bool
isNoisyMetric(const std::string &name)
{
    auto ends = [&](const char *suffix) {
        std::size_t n = std::strlen(suffix);
        return name.size() >= n &&
               name.compare(name.size() - n, n, suffix) == 0;
    };
    return ends("_seconds") || ends("_ns") || ends("_ratio") ||
           ends("speedup") || ends("iterations");
}

void
loadFile(const std::filesystem::path &path, RecordMap &out)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open ", path.string());
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        if (line.find_first_not_of(" \t\r\n") == std::string::npos)
            continue;
        JsonValue v;
        try {
            v = parseJson(line);
        } catch (const FatalError &e) {
            fatal(path.string(), ":", lineno, ": ", e.what());
        }
        std::string schema = v.strOr("schema", "");
        if (schema != kSchema)
            fatal(path.string(), ":", lineno,
                  ": unsupported schema \"", schema, "\" (want ",
                  kSchema, ")");
        std::ostringstream key;
        key << v.strOr("bench", "?") << " / "
            << v.strOr("workload", "?") << " / t"
            << v.numberOr("threads", 0);
        Record &rec = out[key.str()];
        if (v.has("metrics") && v.at("metrics").isObject()) {
            for (const auto &[name, m] : v.at("metrics").object()) {
                rec.medians[name] = m.numberOr("median", 0.0);
                rec.p90s[name] = m.numberOr("p90", 0.0);
            }
        }
    }
}

/** Load a record file, or every BENCH_*.json inside a directory. */
RecordMap
load(const std::string &target)
{
    namespace fs = std::filesystem;
    RecordMap out;
    fs::path p(target);
    if (fs::is_directory(p)) {
        std::vector<fs::path> files;
        for (const auto &entry : fs::directory_iterator(p)) {
            const std::string name = entry.path().filename().string();
            if (entry.is_regular_file() &&
                name.rfind("BENCH_", 0) == 0 &&
                entry.path().extension() == ".json")
                files.push_back(entry.path());
        }
        if (files.empty())
            fatal("no BENCH_*.json files in ", target);
        std::sort(files.begin(), files.end());
        for (const fs::path &f : files)
            loadFile(f, out);
    } else {
        loadFile(p, out);
    }
    return out;
}

Options
parseArgs(int argc, char **argv)
{
    Options opts;
    std::vector<std::string> positional;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--list") {
            opts.listAll = true;
        } else if (arg == "--no-time-gate") {
            opts.noTimeGate = true;
        } else if (arg == "--gate-drift") {
            opts.gateDrift = true;
        } else if (arg == "--threshold") {
            if (++i >= argc)
                fatal("--threshold needs a value");
            std::string val = argv[i];
            std::size_t eq = val.find('=');
            try {
                if (eq == std::string::npos)
                    opts.defaultThreshold = std::stod(val) / 100.0;
                else
                    opts.perMetric[val.substr(0, eq)] =
                        std::stod(val.substr(eq + 1)) / 100.0;
            } catch (const std::exception &) {
                fatal("bad --threshold value: ", val);
            }
        } else if (arg == "--help" || arg == "-h") {
            std::printf(
                "usage: bench_compare BASELINE CURRENT "
                "[--threshold PCT | --threshold NAME=PCT]... "
                "[--no-time-gate] [--gate-drift] [--list]\n");
            std::exit(0);
        } else if (!arg.empty() && arg[0] == '-') {
            fatal("unknown option ", arg);
        } else {
            positional.push_back(arg);
        }
    }
    if (positional.size() != 2)
        fatal("expected exactly two inputs (baseline, current), got ",
              positional.size());
    opts.baseline = positional[0];
    opts.current = positional[1];
    return opts;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        Options opts = parseArgs(argc, argv);
        RecordMap base = load(opts.baseline);
        RecordMap cur = load(opts.current);

        int regressions = 0;
        int compared = 0;
        int drifted = 0;
        std::vector<std::string> missing, added;

        for (const auto &[key, brec] : base) {
            auto it = cur.find(key);
            if (it == cur.end()) {
                missing.push_back(key);
                continue;
            }
            for (const auto &[name, bmed] : brec.medians) {
                auto mit = it->second.medians.find(name);
                if (mit == it->second.medians.end())
                    continue;
                double cmed = mit->second;
                ++compared;

                const bool noisy = isNoisyMetric(name);
                auto tit = opts.perMetric.find(name);
                bool gated;
                double threshold;
                if (tit != opts.perMetric.end()) {
                    gated = true;
                    threshold = tit->second;
                } else if (noisy) {
                    gated = !opts.noTimeGate;
                    threshold = opts.defaultThreshold;
                } else {
                    // Deterministic metric: exact match expected.
                    gated = opts.gateDrift;
                    threshold = 0.0;
                }

                double delta = cmed - bmed;
                double rel = bmed != 0.0 ? delta / bmed
                             : cmed != 0.0 ? 1.0
                                           : 0.0;
                // Deterministic metrics regress in either direction;
                // noisy ones only when slower.
                double excess = noisy ? rel : std::abs(rel);
                bool regressed = gated && excess > threshold;
                bool changed = delta != 0.0;
                if (regressed)
                    ++regressions;
                else if (changed && !noisy)
                    ++drifted;

                if (regressed || opts.listAll || (changed && !noisy)) {
                    std::string gate_label =
                        gated ? "[>" +
                                    std::to_string(static_cast<int>(
                                        threshold * 100)) +
                                    "%]"
                              : "[report]";
                    std::printf(
                        "%s  %-11s %s :: %s  %.6g -> %.6g  "
                        "(%+.1f%%%s)\n",
                        regressed ? "REGRESSION" : "          ",
                        gate_label.c_str(), key.c_str(), name.c_str(),
                        bmed, cmed, 100.0 * rel,
                        gated ? "" : ", not gated");
                }
            }
        }
        for (const auto &[key, crec] : cur)
            if (!base.count(key))
                added.push_back(key);

        for (const std::string &key : missing)
            std::printf("MISSING     %s (in baseline only)\n",
                        key.c_str());
        for (const std::string &key : added)
            std::printf("NEW         %s (in current only)\n",
                        key.c_str());

        std::printf("bench_compare: %d metric(s) compared, "
                    "%d regression(s), %d non-time drift(s), "
                    "%zu missing, %zu new\n",
                    compared, regressions, drifted, missing.size(),
                    added.size());
        return regressions > 0 ? 1 : 0;
    } catch (const FatalError &e) {
        std::fprintf(stderr, "bench_compare: %s\n", e.what());
        return 2;
    }
}
