#!/usr/bin/env python3
"""Validate a Prometheus text exposition document (format 0.0.4).

Used by tools/run_daemon_smoke.sh on the exposition scraped live from
`sched91 serve`'s in-band stats endpoint, and usable standalone:

    sched91 ... | python3 tools/check_exposition.py exposition.txt
    python3 tools/check_exposition.py < exposition.txt

Checks the subset of the format the daemon emits:

  - every sample line is `name{labels} value` with a metric name
    matching [a-zA-Z_:][a-zA-Z0-9_:]*, a parseable label block, and a
    finite numeric value;
  - every metric family has exactly one `# TYPE` line, of a known
    type (counter | gauge | histogram), appearing before its samples;
  - histogram families are complete: cumulative `_bucket{le=...}`
    series with non-decreasing counts and non-decreasing bucket
    bounds, closed by the mandatory `le="+Inf"` bucket, plus `_sum`
    and `_count` samples; `_count` equals the `+Inf` bucket value;
  - no duplicate sample (same name + same label set).

Exit codes: 0 valid, 1 violations (printed to stderr), 2 usage.
"""

import math
import re
import sys

METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r" (?P<value>\S+)$"
)
TYPE_LINE = re.compile(
    r"^# TYPE (?P<name>\S+) (?P<type>\S+)$"
)
KNOWN_TYPES = ("counter", "gauge", "histogram")


def parse_labels(raw, errors, where):
    """The `k="v",...` inside a label block -> dict (escapes kept)."""
    labels = {}
    i = 0
    while i < len(raw):
        m = re.match(r'([a-zA-Z_][a-zA-Z0-9_]*)="', raw[i:])
        if not m:
            errors.append(f"{where}: bad label block at '{raw[i:]}'")
            return labels
        key = m.group(1)
        i += m.end()
        value = []
        while i < len(raw) and raw[i] != '"':
            if raw[i] == "\\":
                if i + 1 >= len(raw) or raw[i + 1] not in '\\"n':
                    errors.append(f"{where}: bad escape in label {key}")
                    return labels
                value.append(raw[i : i + 2])
                i += 2
            else:
                value.append(raw[i])
                i += 1
        if i >= len(raw):
            errors.append(f"{where}: unterminated label value ({key})")
            return labels
        i += 1  # closing quote
        if key in labels:
            errors.append(f"{where}: duplicate label '{key}'")
        labels[key] = "".join(value)
        if i < len(raw):
            if raw[i] != ",":
                errors.append(f"{where}: expected ',' in label block")
                return labels
            i += 1
    return labels


def base_family(name):
    """Family a sample belongs to (histogram suffixes stripped)."""
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)], suffix
    return name, ""


def check(text):
    errors = []
    types = {}  # family -> declared type
    seen_samples = set()
    # family -> {"buckets": [(le, value)], "sum": v, "count": v}
    histograms = {}

    for lineno, line in enumerate(text.splitlines(), 1):
        where = f"line {lineno}"
        if not line:
            continue
        if line.startswith("#"):
            m = TYPE_LINE.match(line)
            if not m:
                # HELP and free comments are legal; only TYPE is
                # structured.
                if line.startswith("# TYPE"):
                    errors.append(f"{where}: malformed TYPE line")
                continue
            name, typ = m.group("name"), m.group("type")
            if not METRIC_NAME.match(name):
                errors.append(f"{where}: bad metric name '{name}'")
            if typ not in KNOWN_TYPES:
                errors.append(f"{where}: unknown type '{typ}'")
            if name in types:
                errors.append(f"{where}: duplicate TYPE for '{name}'")
            types[name] = typ
            if typ == "histogram":
                histograms[name] = {
                    "buckets": [],
                    "sum": None,
                    "count": None,
                }
            continue

        m = SAMPLE.match(line)
        if not m:
            errors.append(f"{where}: unparseable sample: {line!r}")
            continue
        name = m.group("name")
        labels = parse_labels(m.group("labels") or "", errors, where)
        try:
            value = float(m.group("value"))
        except ValueError:
            errors.append(f"{where}: bad value {m.group('value')!r}")
            continue
        if not math.isfinite(value):
            errors.append(f"{where}: non-finite value for '{name}'")

        family, suffix = base_family(name)
        declared = types.get(name) or types.get(family)
        if declared is None:
            errors.append(f"{where}: sample '{name}' without TYPE")
            continue
        if suffix and declared != "histogram":
            # A plain counter may legitimately end in _count; only
            # treat the suffix as structural under a histogram TYPE.
            family, suffix = name, ""

        key = (name, tuple(sorted(labels.items())))
        if key in seen_samples:
            errors.append(f"{where}: duplicate sample for '{name}'")
        seen_samples.add(key)

        if suffix == "_bucket":
            le = labels.get("le")
            if le is None:
                errors.append(f"{where}: bucket without le label")
                continue
            bound = math.inf if le == "+Inf" else None
            if bound is None:
                try:
                    bound = float(le)
                except ValueError:
                    errors.append(f"{where}: bad le value {le!r}")
                    continue
            histograms[family]["buckets"].append((bound, value, where))
        elif suffix == "_sum":
            histograms[family]["sum"] = value
        elif suffix == "_count":
            histograms[family]["count"] = value

    for family, h in histograms.items():
        buckets = h["buckets"]
        if not buckets:
            errors.append(f"histogram '{family}' has no buckets")
            continue
        if buckets[-1][0] != math.inf:
            errors.append(
                f"histogram '{family}' does not end with le=\"+Inf\"")
        last_bound, last_value = -math.inf, -math.inf
        for bound, value, where in buckets:
            if bound <= last_bound:
                errors.append(
                    f"{where}: '{family}' bucket bounds not "
                    f"increasing ({bound} after {last_bound})")
            if value < last_value:
                errors.append(
                    f"{where}: '{family}' cumulative count decreased "
                    f"({value} after {last_value})")
            last_bound, last_value = bound, value
        if h["sum"] is None:
            errors.append(f"histogram '{family}' is missing _sum")
        if h["count"] is None:
            errors.append(f"histogram '{family}' is missing _count")
        elif h["count"] != buckets[-1][1]:
            errors.append(
                f"histogram '{family}': _count {h['count']} != "
                f"+Inf bucket {buckets[-1][1]}")

    return errors


def main(argv):
    if len(argv) > 2:
        print(__doc__, file=sys.stderr)
        return 2
    if len(argv) == 2:
        with open(argv[1]) as f:
            text = f.read()
    else:
        text = sys.stdin.read()

    errors = check(text)
    if errors:
        for e in errors:
            print(f"check_exposition: {e}", file=sys.stderr)
        return 1
    families = len([t for t in text.splitlines()
                    if t.startswith("# TYPE")])
    print(f"check_exposition: ok ({families} families)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
