#!/usr/bin/env bash
# Run a command under `perf stat` with the counter set that matters for
# the data-oriented DAG core: cycles, instructions (IPC), and cache
# misses (the CSR/SoA layout exists to cut the last one).
#
# Usage:
#   tools/perf_stat.sh ./build/bench/bench_micro_dag --benchmark_filter=Table
#   tools/perf_stat.sh -r 5 ./build/bench/bench_table4_n2   # 5 repeats
#
# Containers and locked-down kernels frequently lack perf or deny
# perf_event_open; in that case the command still runs, un-instrumented,
# and a note goes to stderr — so CI can call this unconditionally.
set -eu

repeats=1
if [ "${1:-}" = "-r" ]; then
    repeats=$2
    shift 2
fi

if [ $# -eq 0 ]; then
    echo "usage: tools/perf_stat.sh [-r N] <command> [args...]" >&2
    exit 2
fi

events="cycles,instructions,cache-references,cache-misses,branches,branch-misses"

if ! command -v perf > /dev/null 2>&1; then
    echo "perf_stat.sh: perf not found; running un-instrumented" >&2
    exec "$@"
fi

# Probe that the kernel actually lets us count (paranoid settings or
# missing PMU access make perf fail even when installed).
if ! perf stat -e cycles true > /dev/null 2>&1; then
    echo "perf_stat.sh: perf_event_open unavailable; running" \
         "un-instrumented" >&2
    exec "$@"
fi

exec perf stat -e "$events" -r "$repeats" -- "$@"
