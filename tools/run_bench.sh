#!/usr/bin/env bash
# Run the benchmark suite's CI subset and collect BENCH_*.json records
# (schema sched91.bench.v2, see bench/bench_util.hh), then optionally
# gate against the committed baseline with tools/bench_compare.
#
# Usage:
#   tools/run_bench.sh [outdir] [build-dir]      run + compare
#   tools/run_bench.sh --update-baseline [build-dir]
#                                                regenerate bench/baseline
#
# The CI subset is the fast, deterministic-metric-rich benches; the
# committed baseline (bench/baseline/) pins their deterministic
# metrics — cycles, arc counts, structural data, decision tallies —
# and the compare step fails on any drift (--gate-drift).  Wall-clock
# metrics are host-dependent, so against the committed baseline they
# are report-only (--no-time-gate); same-machine time gating is
# bench_compare's default mode on two local runs.
set -eu

src=$(cd "$(dirname "$0")/.." && pwd)

update=0
if [ "${1:-}" = "--update-baseline" ]; then
    update=1
    shift
fi
out=${1:-bench-out}
build=${2:-build}

# Fast benches whose records carry deterministic metrics.  The DAG-core
# hot-path benches (micro-dag, table4/table5, figure1) ride along: their
# deterministic work counters (pairwise compares, table probes, alias
# queries, arcs added) pin the builder algorithms byte-for-byte.
targets="bench_table3_structure bench_table1_heuristics bench_winnowing \
bench_machine_ablation bench_reservation bench_global bench_alias_policies \
bench_micro_dag bench_table4_n2 bench_table5_table bench_figure1_transitive"

if [ ! -f "$build/CMakeCache.txt" ]; then
    cmake -B "$build" -S "$src" -DCMAKE_BUILD_TYPE=RelWithDebInfo
fi
build=$(cd "$build" && pwd)
# shellcheck disable=SC2086
cmake --build "$build" -j --target $targets bench_compare

if [ "$update" -eq 1 ]; then
    out="$src/bench/baseline"
fi
mkdir -p "$out"
rm -f "$out"/BENCH_*.json

for t in $targets; do
    echo "=== $t ==="
    (cd "$out" && "$build/bench/$t" > /dev/null)
done
echo "records: $(ls "$out"/BENCH_*.json | wc -l) file(s) in $out"

if [ "$update" -eq 1 ]; then
    echo "baseline regenerated in bench/baseline — review and commit"
    exit 0
fi

"$build/tools/bench_compare" "$src/bench/baseline" "$out" \
    --no-time-gate --gate-drift
