#!/usr/bin/env bash
# Daemon smoke test (docs/ROBUSTNESS.md): bring up `sched91 serve`
# with deterministic fault injection armed, replay a generated corpus
# through the soak client, then SIGINT the daemon and assert the
# graceful-drain contract:
#
#   - the soak client exits 0: zero lost responses, zero duplicated
#     ids, every status within the ladder (ok/degraded/rejected);
#   - the daemon exits 0 on SIGINT (drain is not a failure) and
#     leaves one valid final stats document with every answered
#     request accounted for (accepted == ok + degraded + error);
#   - the same (daemon seed, corpus seed) pair produces the same
#     ok/degraded/rejected tallies on a fresh daemon — fault decisions
#     are pure functions of (seed, block content), never of timing.
#
# Runs the whole matrix at two injection seeds.  Usage:
#
#   tools/run_daemon_smoke.sh [builddir]     # default: build
set -u

builddir=${1:-build}
cli=$builddir/tools/sched91
soak=$builddir/tools/soak_client
workdir=$(mktemp -d /tmp/sched91-smoke.XXXXXX)
fails=0

[ -x "$cli" ] || { echo "FAIL: $cli not built" >&2; exit 1; }
[ -x "$soak" ] || { echo "FAIL: $soak not built" >&2; exit 1; }

cleanup() {
    [ -n "${daemon_pid:-}" ] && kill "$daemon_pid" 2>/dev/null
    rm -rf "$workdir"
}
trap cleanup EXIT

check() {
    local desc=$1 want=$2 got=$3
    if [ "$got" -ne "$want" ]; then
        echo "FAIL: $desc: exit $got, want $want" >&2
        fails=$((fails + 1))
    else
        echo "ok: $desc (exit $got)"
    fi
}

wait_for_socket() {
    local sock=$1 tries=100
    while [ "$tries" -gt 0 ] && [ ! -S "$sock" ]; do
        sleep 0.05
        tries=$((tries - 1))
    done
    [ -S "$sock" ]
}

# One full cycle: serve (fault-injected) -> soak -> SIGINT drain.
# Prints the soak summary line so callers can diff runs.
run_cycle() {
    local seed=$1 tag=$2
    local sock=$workdir/serve-$tag.sock
    local stats=$workdir/stats-$tag.json
    local spec="seed=$seed,builder-throw=0.2,verifier-reject=0.15"
    spec="$spec,slow-block=0.1,alloc-fail=0.1,slow-ms=20"

    "$cli" serve --socket "$sock" --queue-capacity 32 \
        --fault-inject "$spec" --stats-json "$stats" \
        2>"$workdir/serve-$tag.err" &
    daemon_pid=$!

    if ! wait_for_socket "$sock"; then
        echo "FAIL: daemon (seed $seed) never bound $sock" >&2
        cat "$workdir/serve-$tag.err" >&2
        fails=$((fails + 1))
        kill "$daemon_pid" 2>/dev/null
        wait "$daemon_pid" 2>/dev/null
        daemon_pid=
        return
    fi

    "$soak" --socket "$sock" --requests 48 --connections 4 \
        --pipeline 4 --seed 7 >"$workdir/soak-$tag.out"
    check "soak contract (daemon seed $seed)" 0 $?

    kill -INT "$daemon_pid"
    wait "$daemon_pid"
    check "daemon drain on SIGINT (seed $seed)" 0 $?
    daemon_pid=

    python3 - "$stats" <<'EOF'
import json, sys
d = json.load(open(sys.argv[1]))
assert d['sched91_serve_stats'] == 1
assert 'fault_inject' in d['meta'], 'fault injection was not armed'
s = d['service']
assert s['accepted'] == s['ok'] + s['degraded'] + s['error'], \
    f"accepted {s['accepted']} != answered " \
    f"{s['ok'] + s['degraded'] + s['error']}: a request was lost"
assert s['error'] == 0, f"{s['error']} well-formed requests errored"
assert s['degraded'] > 0, 'fault injection degraded nothing'
assert d['histograms']['svc.request_ns']['count'] == s['accepted']
print(f"ok: stats document (accepted {s['accepted']}, "
      f"ok {s['ok']}, degraded {s['degraded']}, "
      f"rejected {s['rejected']}, retries {s['retries']}, "
      f"quarantined {s['quarantine_adds']})")
EOF
    check "stats document (seed $seed)" 0 $?

    grep '^soak_client:' "$workdir/soak-$tag.out"
}

for seed in 42 1337; do
    run_cycle "$seed" "$seed"
done

# Determinism: a fresh daemon at seed 42 must reproduce the first
# run's tallies exactly.
run_cycle 42 42-replay
if ! diff <(grep '^soak_client:' "$workdir/soak-42.out") \
          <(grep '^soak_client:' "$workdir/soak-42-replay.out"); then
    echo "FAIL: seed 42 tallies differ between runs" >&2
    fails=$((fails + 1))
else
    echo "ok: seed 42 tallies reproduce exactly"
fi

if [ "$fails" -ne 0 ]; then
    echo "daemon smoke: $fails failure(s)" >&2
    exit 1
fi
echo "daemon smoke: all checks passed"
