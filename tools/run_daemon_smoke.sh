#!/usr/bin/env bash
# Daemon smoke test (docs/ROBUSTNESS.md): bring up `sched91 serve`
# with deterministic fault injection armed, replay a generated corpus
# through the soak client, then SIGINT the daemon and assert the
# graceful-drain contract:
#
#   - the soak client exits 0: zero lost responses, zero duplicated
#     ids, every status within the ladder (ok/degraded/rejected);
#   - the daemon exits 0 on SIGINT (drain is not a failure) and
#     leaves one valid final stats document with every answered
#     request accounted for (accepted == ok + degraded + error);
#   - the same (daemon seed, corpus seed) pair produces the same
#     ok/degraded/rejected tallies on a fresh daemon — fault decisions
#     are pure functions of (seed, block content), never of timing.
#
# A third cycle reruns the soak under `--isolate=process` with
# signal-grade faults armed (crash-segv, spin-forever): sandbox
# workers die mid-request and the supervisor must still answer every
# request exactly once (victims degraded), respawn the pool, and
# reproduce the same tallies on a same-seed replay.
#
# Telemetry rides every cycle (docs/OBSERVABILITY.md): the soak
# client interleaves `--scrape-every` stats reads with its own load,
# a separate connection scrapes health/stats/prometheus while the
# daemon is under fault-injected fire (exposition validated by
# tools/check_exposition.py), and the crash cycle pulls a trace-dump
# to assert a SIGKILLed worker's request still renders as one
# connected span tree.
#
# Runs the whole matrix at two injection seeds.  Usage:
#
#   tools/run_daemon_smoke.sh [builddir]     # default: build
set -u

builddir=${1:-build}
cli=$builddir/tools/sched91
soak=$builddir/tools/soak_client
# AF_UNIX socket paths are capped near 108 bytes, so prefer a short
# /tmp base; honor TMPDIR only when it stays within budget.
tmpbase=${TMPDIR:-/tmp}
[ ${#tmpbase} -gt 60 ] && tmpbase=/tmp
workdir=$(mktemp -d "$tmpbase/sched91-smoke.XXXXXX")
fails=0

[ -x "$cli" ] || { echo "FAIL: $cli not built" >&2; exit 1; }
[ -x "$soak" ] || { echo "FAIL: $soak not built" >&2; exit 1; }

cleanup() {
    [ -n "${daemon_pid:-}" ] && kill "$daemon_pid" 2>/dev/null
    rm -rf "$workdir"
}
trap cleanup EXIT

check() {
    local desc=$1 want=$2 got=$3
    if [ "$got" -ne "$want" ]; then
        echo "FAIL: $desc: exit $got, want $want" >&2
        fails=$((fails + 1))
    else
        echo "ok: $desc (exit $got)"
    fi
}

wait_for_socket() {
    local sock=$1 tries=100
    while [ "$tries" -gt 0 ] && [ ! -S "$sock" ]; do
        sleep 0.05
        tries=$((tries - 1))
    done
    [ -S "$sock" ]
}

# Scrape health + stats + prometheus over one fresh connection while
# the daemon serves load; writes the exposition text to $2.
scrape_live() {
    python3 - "$1" "$2" <<'EOF'
import json, socket, sys
sock, expo_path = sys.argv[1], sys.argv[2]
c = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
c.settimeout(30)
c.connect(sock)
f = c.makefile('rw')
f.write('{"type":"health","id":"h"}\n'
        '{"type":"stats","id":"s"}\n'
        '{"type":"stats","format":"prometheus","id":"p"}\n')
f.flush()
health = json.loads(f.readline())
stats = json.loads(f.readline())
prom = json.loads(f.readline())
c.close()

assert health['sched91_serve_health'] == 1
assert health['status'] in ('ok', 'draining'), health['status']
assert health['queue_depth'] <= health['queue_capacity']

assert stats['sched91_serve_stats'] == 1
assert stats['meta']['stats_schema'] == 1
s = stats['service']
answered = s['ok'] + s['degraded'] + s['error'] + \
    s['rejected_after_admit']
assert answered <= s['accepted'], \
    f"answered {answered} > accepted {s['accepted']} mid-flight"

assert prom['status'] == 'ok' and prom['format'] == 'prometheus'
expo = prom['exposition']
assert expo.startswith('# TYPE'), 'exposition missing TYPE header'
open(expo_path, 'w').write(expo)
print(f"ok: live scrape (accepted {s['accepted']}, "
      f"queue {health['queue_depth']}/{health['queue_capacity']}, "
      f"status {health['status']})")
EOF
}

# Pull a trace-dump from a live daemon and assert that a request
# whose sandbox worker was killed mid-flight still forms one
# connected span tree: its trace id must carry the request and queue
# parent spans AND a crash-annotated rung span.
assert_crash_trace() {
    python3 - "$1" <<'EOF'
import json, socket, sys
c = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
c.settimeout(30)
c.connect(sys.argv[1])
f = c.makefile('rw')
f.write('{"type":"trace-dump","id":"t"}\n')
f.flush()
d = json.loads(f.readline())
c.close()

assert d['sched91_serve_trace'] == 1
assert d['status'] == 'ok'
by_trace = {}
for ev in d['trace']['traceEvents']:
    tid = ev['args']['trace_id']
    by_trace.setdefault(tid, []).append(ev)

crashed = connected = 0
for tid, evs in by_trace.items():
    names = {ev['name'] for ev in evs}
    notes = [ev['args'].get('note', '') for ev in evs
             if ev['name'] == 'rung']
    if not any(n.startswith('crash') for n in notes):
        continue
    crashed += 1
    if {'request', 'queue', 'rung'} <= names:
        connected += 1
assert crashed > 0, 'no crash-annotated request in the trace dump'
assert connected == crashed, \
    f"{crashed - connected} killed-worker request(s) lost their " \
    f"request/queue parent spans: the span tree is disconnected"
print(f"ok: trace-dump ({len(by_trace)} traced requests, "
      f"{crashed} with killed workers, all connected)")
EOF
}

# One full cycle: serve (fault-injected) -> soak -> SIGINT drain.
# Prints the soak summary line so callers can diff runs.
run_cycle() {
    local seed=$1 tag=$2
    local sock=$workdir/serve-$tag.sock
    local stats=$workdir/stats-$tag.json
    local spec="seed=$seed,builder-throw=0.2,verifier-reject=0.15"
    spec="$spec,slow-block=0.1,alloc-fail=0.1,slow-ms=20"

    "$cli" serve --socket "$sock" --queue-capacity 32 \
        --fault-inject "$spec" --stats-json "$stats" \
        2>"$workdir/serve-$tag.err" &
    daemon_pid=$!

    if ! wait_for_socket "$sock"; then
        echo "FAIL: daemon (seed $seed) never bound $sock" >&2
        cat "$workdir/serve-$tag.err" >&2
        fails=$((fails + 1))
        kill "$daemon_pid" 2>/dev/null
        wait "$daemon_pid" 2>/dev/null
        daemon_pid=
        return
    fi

    "$soak" --socket "$sock" --requests 48 --connections 4 \
        --pipeline 4 --seed 7 --scrape-every 4 \
        >"$workdir/soak-$tag.out" &
    local soak_pid=$!

    # Scrape from a separate connection while the soak load (and the
    # fault injector) is live, then validate the exposition text.
    scrape_live "$sock" "$workdir/expo-$tag.txt"
    check "live scrape under load (seed $seed)" 0 $?
    python3 "$(dirname "$0")/check_exposition.py" \
        "$workdir/expo-$tag.txt"
    check "prometheus exposition (seed $seed)" 0 $?

    wait "$soak_pid"
    check "soak contract (daemon seed $seed)" 0 $?

    kill -INT "$daemon_pid"
    wait "$daemon_pid"
    check "daemon drain on SIGINT (seed $seed)" 0 $?
    daemon_pid=

    python3 - "$stats" <<'EOF'
import json, sys
d = json.load(open(sys.argv[1]))
assert d['sched91_serve_stats'] == 1
assert 'fault_inject' in d['meta'], 'fault injection was not armed'
s = d['service']
assert s['accepted'] == s['ok'] + s['degraded'] + s['error'], \
    f"accepted {s['accepted']} != answered " \
    f"{s['ok'] + s['degraded'] + s['error']}: a request was lost"
assert s['error'] == 0, f"{s['error']} well-formed requests errored"
assert s['degraded'] > 0, 'fault injection degraded nothing'
assert d['histograms']['svc.request_ns']['count'] == s['accepted']
print(f"ok: stats document (accepted {s['accepted']}, "
      f"ok {s['ok']}, degraded {s['degraded']}, "
      f"rejected {s['rejected']}, retries {s['retries']}, "
      f"quarantined {s['quarantine_adds']})")
EOF
    check "stats document (seed $seed)" 0 $?

    grep '^soak_client:' "$workdir/soak-$tag.out"
}

# One crash cycle: serve --isolate=process with signal-grade faults
# armed, soak (victims must come back degraded, never lost), SIGINT
# drain, then assert the supervisor's isolation tallies.
run_crash_cycle() {
    local seed=$1 tag=$2
    local sock=$workdir/crash-$tag.sock
    local stats=$workdir/stats-crash-$tag.json
    local spec="seed=$seed,crash-segv=0.25,spin-forever=0.08"
    spec="$spec,alloc-fail=0.1"

    "$cli" serve --socket "$sock" --queue-capacity 32 --threads 2 \
        --isolate process --isolate-hang-ms 1500 \
        --fault-inject "$spec" --stats-json "$stats" \
        2>"$workdir/crash-$tag.err" &
    daemon_pid=$!

    if ! wait_for_socket "$sock"; then
        echo "FAIL: isolated daemon (seed $seed) never bound $sock" >&2
        cat "$workdir/crash-$tag.err" >&2
        fails=$((fails + 1))
        kill "$daemon_pid" 2>/dev/null
        wait "$daemon_pid" 2>/dev/null
        daemon_pid=
        return
    fi

    "$soak" --socket "$sock" --requests 32 --connections 4 \
        --pipeline 4 --seed 7 --expect-degraded \
        --timeout-ms 60000 --scrape-every 8 \
        >"$workdir/crash-soak-$tag.out"
    check "crash-soak contract (seed $seed)" 0 $?

    # Workers were SIGKILLed mid-request above; every such request
    # must still render as one connected span tree.
    assert_crash_trace "$sock"
    check "killed-worker span tree (seed $seed)" 0 $?

    kill -INT "$daemon_pid"
    wait "$daemon_pid"
    check "isolated daemon drain on SIGINT (seed $seed)" 0 $?
    daemon_pid=

    python3 - "$stats" <<'EOF'
import json, sys
d = json.load(open(sys.argv[1]))
assert d['sched91_serve_stats'] == 1
assert d['meta'].get('isolate') == 'process', 'isolation was not armed'
s = d['service']
assert s['accepted'] == s['ok'] + s['degraded'] + s['error'], \
    f"accepted {s['accepted']} != answered " \
    f"{s['ok'] + s['degraded'] + s['error']}: a request was lost"
assert s['error'] == 0, f"{s['error']} well-formed requests errored"
assert s['worker_crashes'] > 0, 'no sandbox worker ever crashed'
assert s['worker_respawns'] > 0, 'crashed workers were not respawned'
assert s['degraded'] >= s['worker_crashes'] > 0, \
    'crash victims were not answered degraded'
print(f"ok: isolation stats (accepted {s['accepted']}, "
      f"degraded {s['degraded']}, crashes {s['worker_crashes']}, "
      f"kills {s['worker_kills']}, respawns {s['worker_respawns']})")
EOF
    check "isolation stats document (seed $seed)" 0 $?

    grep '^soak_client:' "$workdir/crash-soak-$tag.out"
}

for seed in 42 1337; do
    run_cycle "$seed" "$seed"
done

# Determinism: a fresh daemon at seed 42 must reproduce the first
# run's tallies exactly.
run_cycle 42 42-replay
if ! diff <(grep '^soak_client:' "$workdir/soak-42.out") \
          <(grep '^soak_client:' "$workdir/soak-42-replay.out"); then
    echo "FAIL: seed 42 tallies differ between runs" >&2
    fails=$((fails + 1))
else
    echo "ok: seed 42 tallies reproduce exactly"
fi

# Crash isolation: the same contract must hold when the faults are
# signal-grade and the ladder runs in sandboxed subprocesses, and a
# same-seed replay must reproduce the tallies exactly even though
# workers are crashing and respawning throughout.
run_crash_cycle 42 42
run_crash_cycle 42 42-replay
if ! diff <(grep '^soak_client:' "$workdir/crash-soak-42.out") \
          <(grep '^soak_client:' "$workdir/crash-soak-42-replay.out"); then
    echo "FAIL: isolated seed 42 tallies differ between runs" >&2
    fails=$((fails + 1))
else
    echo "ok: isolated seed 42 tallies reproduce exactly"
fi

if [ "$fails" -ne 0 ]; then
    echo "daemon smoke: $fails failure(s)" >&2
    exit 1
fi
echo "daemon smoke: all checks passed"
