#!/usr/bin/env bash
# Build and run the fuzz targets (docs/FUZZING.md) for a short,
# CI-friendly budget.
#
# Usage: tools/run_fuzz.sh [seconds-per-target] [build-dir]
#
# Configures a dedicated build with -DSCHED91_FUZZ=ON and ASan+UBSan.
# With a libFuzzer-capable compiler (clang) the targets fuzz with the
# real engine; with stock GCC they fall back to the deterministic
# replay-and-mutate driver (src/fuzz/driver_main.cc), which accepts
# the same command line.  Either way the contract is identical: both
# targets must survive the budget over the malformed-corpus seeds
# with zero crashes.
set -eu

budget=${1:-60}
build=${2:-build-fuzz}
src=$(cd "$(dirname "$0")/.." && pwd)
corpus="$src/tests/corpus/malformed"

cmake -B "$build" -S "$src" \
    -DSCHED91_FUZZ=ON \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all -g"
cmake --build "$build" -j --target fuzz_parser fuzz_pipeline

fails=0
for target in fuzz_parser fuzz_pipeline; do
    echo "=== $target: ${budget}s over $corpus ==="
    if ! "$build/src/$target" -max_total_time="$budget" "$corpus"; then
        echo "FAIL: $target crashed" >&2
        fails=$((fails + 1))
    fi
done

if [ "$fails" -ne 0 ]; then
    echo "$fails fuzz target(s) failed" >&2
    exit 1
fi
echo "all fuzz targets survived ${budget}s"
