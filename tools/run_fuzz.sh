#!/usr/bin/env bash
# Build and run the fuzz targets (docs/FUZZING.md) for a short,
# CI-friendly budget.
#
# Usage: tools/run_fuzz.sh [seconds-per-target] [build-dir] [corpus-dir]
#
# Configures a dedicated build with -DSCHED91_FUZZ=ON and ASan+UBSan.
# With a libFuzzer-capable compiler (clang) the targets fuzz with the
# real engine; with stock GCC they fall back to the deterministic
# replay-and-mutate driver (src/fuzz/driver_main.cc), which accepts
# the same command line.  Either way the contract is identical: both
# targets must survive the budget over the malformed-corpus seeds
# with zero crashes.
#
# corpus-dir (default fuzz-corpus/, override with $SCHED91_FUZZ_CORPUS)
# is the *persistent* corpus: each target seeds from its subdirectory
# in addition to the checked-in malformed corpus, and libFuzzer writes
# every coverage-increasing input back to it (the first corpus
# directory on the command line is the writable one).  CI caches this
# directory across runs keyed on the generator sources, so successive
# short smoke budgets compound instead of restarting from scratch.
# The GCC fallback driver treats the directory as seed-only.
set -eu

budget=${1:-60}
build=${2:-build-fuzz}
src=$(cd "$(dirname "$0")/.." && pwd)
corpus="$src/tests/corpus/malformed"
persist=${3:-${SCHED91_FUZZ_CORPUS:-fuzz-corpus}}

cmake -B "$build" -S "$src" \
    -DSCHED91_FUZZ=ON \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all -g"
cmake --build "$build" -j --target fuzz_parser fuzz_pipeline

mkdir -p "$persist"
persist=$(cd "$persist" && pwd)

fails=0
for target in fuzz_parser fuzz_pipeline; do
    mkdir -p "$persist/$target"
    saved=$(ls "$persist/$target" | wc -l)
    echo "=== $target: ${budget}s over $corpus + $saved saved input(s) ==="
    if ! "$build/src/$target" -max_total_time="$budget" \
            -artifact_prefix="$persist/$target/crash-" \
            "$persist/$target" "$corpus"; then
        echo "FAIL: $target crashed" >&2
        fails=$((fails + 1))
    fi
    echo "    corpus now $(ls "$persist/$target" | wc -l) input(s)"
done

if [ "$fails" -ne 0 ]; then
    echo "$fails fuzz target(s) failed" >&2
    exit 1
fi
echo "all fuzz targets survived ${budget}s"
