#!/usr/bin/env bash
# Drive the malformed-assembly corpus through the CLI and assert the
# exit-code contract from docs/ROBUSTNESS.md:
#
#   - lenient (default): every file schedules with exit 0, malformed
#     lines become file:line:col diagnostics on stderr;
#   - --strict: files with errors exit 1 (a clean FatalError, never an
#     abort), clean files still exit 0.
#
# Usage: tools/run_malformed_corpus.sh <path-to-sched91-binary>
set -u

bin=${1:?usage: $0 <path-to-sched91-binary>}
corpus=$(dirname "$0")/../tests/corpus/malformed
fails=0

check() {
    local desc=$1 want=$2 got=$3
    if [ "$got" -ne "$want" ]; then
        echo "FAIL: $desc: exit $got, want $want" >&2
        fails=$((fails + 1))
    else
        echo "ok: $desc (exit $got)"
    fi
}

for f in "$corpus"/*.s; do
    name=$(basename "$f")

    "$bin" schedule "$f" >/dev/null 2>/tmp/corpus_stderr.$$
    check "lenient schedule $name" 0 $?
    # Error files must print at least one source-located diagnostic.
    if grep -q "error:" /tmp/corpus_stderr.$$; then
        if ! grep -Eq "$name:[0-9]+(:[0-9]+)?: error:" \
            /tmp/corpus_stderr.$$; then
            echo "FAIL: $name: diagnostics lack file:line locations" >&2
            fails=$((fails + 1))
        fi
    fi

    "$bin" schedule "$f" --strict >/dev/null 2>&1
    strict=$?
    if grep -q "error:" /tmp/corpus_stderr.$$; then
        check "strict schedule $name" 1 "$strict"
    else
        check "strict schedule $name (clean file)" 0 "$strict"
    fi

    # The oversized block must also survive an n**2 builder via the
    # table fallback (never exit nonzero, never abort).
    "$bin" schedule "$f" --builder n2-fwd >/dev/null 2>&1
    check "lenient n2-fwd $name" 0 $?
done

rm -f /tmp/corpus_stderr.$$

# Usage errors exit 2, runtime errors exit 1.
"$bin" schedule --no-such-flag >/dev/null 2>&1
check "unknown option" 2 $?
"$bin" no-such-command >/dev/null 2>&1
check "unknown command" 2 $?
"$bin" schedule /nonexistent/input.s >/dev/null 2>&1
check "missing input" 1 $?

if [ "$fails" -ne 0 ]; then
    echo "$fails corpus check(s) failed" >&2
    exit 1
fi
echo "all corpus checks passed"
