/**
 * @file
 * sched91 command-line driver.
 *
 *     sched91 schedule <file.s> [options]   schedule and print assembly
 *     sched91 dag      <file.s> [options]   print the dependence DAG
 *     sched91 dot      <file.s> [options]   DOT graph on stdout
 *     sched91 stats    <file.s>             Table-3-style structure
 *     sched91 profile  <name>               run a synthetic workload
 *     sched91 report   <file.s>             worst-scheduled blocks
 *     sched91 timeline <file.s> --block N   FU occupancy chart
 *     sched91 compile  <file.s>             prepass+allocate+postpass
 *     sched91 explain  <bundle.json>        replay an outlier bundle
 *     sched91 serve                         scheduling daemon (unix socket)
 *     sched91 top      [socket]             live daemon telemetry console
 *     sched91 reduce   <file.s>             shrink an oracle-failing source
 *     sched91 kernels                       list built-in kernels
 *
 * Common options:
 *     --kernel <name>       use a built-in kernel instead of a file
 *     --algorithm <name>    gibbons-muchnick | krishnamurthy |
 *                           schlansker | shieh-papachristou | tiemann |
 *                           warren | simple-forward   (default)
 *     --builder <name>      n2-fwd | n2-bwd | landskov | table-fwd |
 *                           table-bwd   (default table-fwd)
 *     --machine <name>      sparcstation2 | rs6000like | superscalar2
 *     --policy <name>       serialize | base-offset | storage |
 *                           symbolic
 *     --window <N>          instruction window (0 = none)
 *     --block <N>           operate on basic block N (default 0)
 *     --heuristics          annotate DOT nodes with heuristic values
 *
 * Observability options:
 *     --stats-json <path>   write the run result as JSON (per-phase
 *                           seconds, DAG structure, event counters,
 *                           phase tree); "-" for stdout.  schedule
 *                           and profile only.
 *     --trace <path>        write a trace with counter deltas
 *                           ("-" for stdout): one event per block per
 *                           phase under profile, one per block under
 *                           schedule
 *     --trace-format <f>    jsonl (default) | chrome (Trace Event
 *                           Format for about://tracing / Perfetto)
 *     --counters            print nonzero event counters to stderr
 *                           (any command)
 *     --histograms          print per-block latency/size histograms
 *                           to stderr (profile)
 *
 * Forensics options (docs/FORENSICS.md):
 *     --capture-outliers <K>  track the K most expensive blocks and
 *                           print a forensic table (profile)
 *     --outlier-dir <dir>   write one replayable JSON bundle per
 *                           captured outlier block into <dir>
 *     --explain-block <N>   print block N's per-pick decision trace
 *     --log-level <level>   error | warn (default) | info | debug
 *     --flight-recorder     per-worker ring of recent pipeline events,
 *                           dumped as JSON on crash
 *     --crash-dump <path>   crash-dump destination ("-" = stderr)
 *
 * Robustness options (docs/ROBUSTNESS.md):
 *     --strict              fail fast on parse errors / block faults
 *     --verify/--no-verify  schedule verifier (default on)
 *     --max-block-insts <N> n**2 -> table builder fallback threshold
 *     --max-block-seconds <S>  per-block wall-clock budget
 *     --max-run-seconds <S>    whole-run budget, fair-shared
 *     --fault-inject <spec> deterministic fault injection
 *     --reduce-seconds <S>  wall-clock cap for `reduce`
 *
 * Service options (sched91 serve, docs/ROBUSTNESS.md):
 *     --socket <path>       AF_UNIX socket (default /tmp/sched91.sock)
 *     --queue-capacity <N>  admission queue depth (default 64)
 *     --deadline-ms <ms>    default per-request deadline (0 = none)
 *     --isolate <mode>      none | process: sandboxed worker
 *                           subprocesses with supervisor respawn
 *     --isolate-hang-ms / --isolate-rlimit-cpu /
 *     --isolate-rlimit-as-mb   watchdog and rlimit bounds per worker
 *
 * Exit codes: 0 success (including lenient recovery), 1 runtime
 * error, 2 usage error.
 */

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "core/sched91.hh"
#include "dag/dot_export.hh"
#include "fuzz/differential.hh"
#include "obs/chrome_trace.hh"
#include "obs/emitter.hh"
#include "obs/events.hh"
#include "obs/flight_recorder.hh"
#include "obs/histogram.hh"
#include "obs/json_parse.hh"
#include "sched/report.hh"
#include "core/backend.hh"
#include "sched/timeline.hh"
#include "service/daemon.hh"
#include "service/protocol.hh"
#include "service/sandbox_worker.hh"
#include "support/cancellation.hh"
#include "support/diagnostics.hh"
#include "support/fault_inject.hh"
#include "support/log.hh"
#include "support/logging.hh"

using namespace sched91;

namespace
{

/** Bad invocation (unknown option/command, missing value): exit 2,
 * per the exit-code contract in docs/ROBUSTNESS.md. */
struct UsageError : FatalError
{
    using FatalError::FatalError;
};

template <typename... Args>
[[noreturn]] void
usageError(const Args &...args)
{
    std::ostringstream os;
    detail::appendAll(os, args...);
    throw UsageError(os.str());
}

struct CliOptions
{
    std::string command;
    std::string input;
    std::string kernel;
    AlgorithmKind algorithm = AlgorithmKind::SimpleForward;
    BuilderKind builder = BuilderKind::TableForward;
    std::string machineName = "sparcstation2";
    AliasPolicy policy = AliasPolicy::BaseOffset;
    int window = 0;
    int block = 0;
    bool heuristics = false;
    unsigned threads = 0;  ///< --threads (0 = hardware concurrency)
    std::string statsJson; ///< --stats-json path ("-" = stdout)
    std::string tracePath; ///< --trace path ("-" = stdout)
    std::string traceFormat = "jsonl"; ///< --trace-format=chrome|jsonl
    bool counters = false; ///< --counters
    bool histograms = false; ///< --histograms
    bool zeroTimes = false; ///< --zero-times

    // Robustness (docs/ROBUSTNESS.md).
    bool strict = false;      ///< --strict: fail fast, no recovery
    bool verify = true;       ///< --no-verify turns the checker off
    int maxBlockInsts = 400;  ///< --max-block-insts (0 = off)
    double maxBlockSeconds = 0.0; ///< --max-block-seconds (0 = off)
    double maxRunSeconds = 0.0;   ///< --max-run-seconds (0 = off)

    // Forensics (docs/FORENSICS.md).
    int captureOutliers = 0;     ///< --capture-outliers K (0 = off)
    std::string outlierDir;      ///< --outlier-dir: bundle files
    int explainBlock = -1;       ///< --explain-block N (-1 = off)
    bool flightRecorder = false; ///< --flight-recorder
    std::string crashDump;       ///< --crash-dump path ("-" = stderr)
    std::string injectPanic;     ///< --inject-panic run|abort (tests)

    // Fault injection and the reducer (docs/ROBUSTNESS.md).
    std::string faultInject;    ///< --fault-inject spec ("" = off)
    double reduceSeconds = 0.0; ///< --reduce-seconds cap (0 = off)

    // Service (sched91 serve).
    std::string socketPath = "/tmp/sched91.sock"; ///< --socket
    int queueCapacity = 64; ///< --queue-capacity
    double deadlineMs = 0.0; ///< --deadline-ms (0 = none)
    double snapshotSeconds = 0.0; ///< --snapshot-seconds (0 = off)
    std::string snapshotJson;     ///< --snapshot-json JSONL path
    std::string traceJson;        ///< --trace-json Chrome-trace path

    // Live console (sched91 top).
    int topIntervalMs = 1000; ///< --interval-ms between scrapes
    int topIterations = 0;    ///< --iterations (0 = until ^C)

    // Process isolation (sched91 serve --isolate=process).
    std::string isolate = "none"; ///< --isolate none|process
    int isolateHangMs = 10000;    ///< --isolate-hang-ms watchdog bound
    int isolateRlimitCpu = 0;     ///< --isolate-rlimit-cpu seconds
    int isolateRlimitAsMb = 0;    ///< --isolate-rlimit-as-mb MiB
    std::string isolateExe;       ///< --isolate-exe worker binary

    bool
    observing() const
    {
        return !statsJson.empty() || !tracePath.empty() || counters ||
               histograms || captureOutliers > 0 || explainBlock >= 0;
    }
};

AlgorithmKind
parseAlgorithm(const std::string &name)
{
    for (AlgorithmKind kind : allAlgorithms())
        if (algorithmName(kind) == name)
            return kind;
    usageError("unknown algorithm '", name, "'");
}

BuilderKind
parseBuilder(const std::string &name)
{
    static const std::map<std::string, BuilderKind> map = {
        {"n2-fwd", BuilderKind::N2Forward},
        {"n2-bwd", BuilderKind::N2Backward},
        {"landskov", BuilderKind::N2Landskov},
        {"table-fwd", BuilderKind::TableForward},
        {"table-bwd", BuilderKind::TableBackward},
    };
    auto it = map.find(name);
    if (it == map.end())
        usageError("unknown builder '", name, "'");
    return it->second;
}

AliasPolicy
parsePolicy(const std::string &name)
{
    static const std::map<std::string, AliasPolicy> map = {
        {"serialize", AliasPolicy::SerializeAll},
        {"base-offset", AliasPolicy::BaseOffset},
        {"storage", AliasPolicy::StorageClassed},
        {"symbolic", AliasPolicy::SymbolicExpr},
    };
    auto it = map.find(name);
    if (it == map.end())
        usageError("unknown alias policy '", name, "'");
    return it->second;
}

const char kUsage[] =
    "usage: sched91 <command> [input] [options]\n"
    "\n"
    "commands:\n"
    "  schedule <file.s>   schedule and print assembly\n"
    "  dag      <file.s>   print the dependence DAG\n"
    "  dot      <file.s>   DOT graph on stdout\n"
    "  stats    <file.s>   Table-3-style structure\n"
    "  profile  <name>     run a synthetic workload\n"
    "  report   <file.s>   worst-scheduled blocks\n"
    "  timeline <file.s>   FU occupancy chart (--block N)\n"
    "  compile  <file.s>   prepass+allocate+postpass\n"
    "  explain  <bundle>   replay an outlier bundle's decision trace\n"
    "  serve               scheduling daemon on an AF_UNIX socket;\n"
    "                      newline-delimited JSON requests/responses,\n"
    "                      SIGINT/SIGTERM drains gracefully\n"
    "  top      [socket]   live telemetry console: polls the daemon's\n"
    "                      in-band stats endpoint and renders RPS,\n"
    "                      queue depth/wait, latency percentiles, rung\n"
    "                      tallies, and worker health\n"
    "  reduce   <file.s>   ddmin-shrink a source that fails the\n"
    "                      differential oracle; reduced source on\n"
    "                      stdout\n"
    "  kernels             list built-in kernels\n"
    "\n"
    "options:\n"
    "  --kernel <name>      use a built-in kernel instead of a file\n"
    "  --algorithm <name>   gibbons-muchnick | krishnamurthy |\n"
    "                       schlansker | shieh-papachristou | tiemann |\n"
    "                       warren | simple-forward (default)\n"
    "  --builder <name>     n2-fwd | n2-bwd | landskov | table-fwd\n"
    "                       (default) | table-bwd\n"
    "  --machine <name>     sparcstation2 | rs6000like | superscalar2\n"
    "  --policy <name>      serialize | base-offset | storage | symbolic\n"
    "  --window <N>         instruction window (0 = none)\n"
    "  --block <N>          operate on basic block N (default 0)\n"
    "  --heuristics         annotate DOT nodes with heuristic values\n"
    "  --threads <N>        pipeline worker lanes under profile\n"
    "                       (0 = hardware concurrency, 1 = serial;\n"
    "                       output is identical either way)\n"
    "\n"
    "observability (docs/OBSERVABILITY.md):\n"
    "  --stats-json <path>  run result as JSON, \"-\" for stdout\n"
    "                       (schedule and profile)\n"
    "  --trace <path>       trace with per-block counter deltas\n"
    "                       (per phase under profile)\n"
    "  --trace-format <f>   jsonl (default) | chrome: Trace Event\n"
    "                       Format JSON for about://tracing/Perfetto\n"
    "  --counters           nonzero event counters on stderr (any\n"
    "                       command)\n"
    "  --histograms         per-block latency/size histograms on\n"
    "                       stderr (profile: p50/p90/p99/max)\n"
    "  --zero-times         write all seconds fields as 0 in\n"
    "                       --stats-json/--trace output (byte-\n"
    "                       comparable across runs and thread counts)\n"
    "\n"
    "forensics (docs/FORENSICS.md):\n"
    "  --capture-outliers <K>  track the K most expensive blocks\n"
    "                       (deterministic work score) and print a\n"
    "                       forensic table on stderr (profile)\n"
    "  --outlier-dir <dir>  also write one replayable JSON bundle per\n"
    "                       captured block into <dir> (sched91 explain\n"
    "                       re-runs one)\n"
    "  --explain-block <N>  record block N's per-pick decision trace,\n"
    "                       print it on stdout, and add a \"decisions\"\n"
    "                       section to --stats-json (profile)\n"
    "  --log-level <level>  stderr log threshold: error | warn\n"
    "                       (default) | info | debug\n"
    "  --flight-recorder    keep a per-worker ring of recent pipeline\n"
    "                       events, dumped as JSON if the run crashes\n"
    "  --crash-dump <path>  write the crash dump there instead of\n"
    "                       stderr (implies --flight-recorder)\n"
    "\n"
    "robustness (docs/ROBUSTNESS.md):\n"
    "  --strict             fail fast: parse errors and per-block\n"
    "                       faults abort the run (exit 1) instead of\n"
    "                       degrading the block\n"
    "  --verify             re-check every schedule against its DAG\n"
    "                       (default on)\n"
    "  --no-verify          skip the schedule verifier\n"
    "  --max-block-insts <N>  blocks above N insts fall back from an\n"
    "                       n**2 builder to table building (default\n"
    "                       400, 0 = off)\n"
    "  --max-block-seconds <S>  per-block wall-clock budget; overrun\n"
    "                       degrades the block to original order\n"
    "                       (default off)\n"
    "  --max-run-seconds <S>  whole-run wall-clock budget, divided\n"
    "                       fair-share across remaining blocks; once\n"
    "                       spent, remaining blocks degrade to\n"
    "                       original order (default off)\n"
    "  --fault-inject <spec>  deterministic fault injection at the\n"
    "                       pipeline's failure boundaries, e.g.\n"
    "                       \"seed=42,builder-throw=0.25,slow-ms=40\"\n"
    "                       (keys: seed, slow-ms, builder-throw,\n"
    "                       verifier-reject, slow-block, alloc-fail;\n"
    "                       rates in [0,1]; schedule/profile/serve)\n"
    "  --reduce-seconds <S> wall-clock cap for reduce: return the\n"
    "                       best reduction found when it expires\n"
    "\n"
    "service (sched91 serve):\n"
    "  --socket <path>      AF_UNIX socket path (default\n"
    "                       /tmp/sched91.sock)\n"
    "  --queue-capacity <N> admission queue depth (default 64); a\n"
    "                       full queue answers rejected/overloaded\n"
    "  --deadline-ms <ms>   default per-request deadline; expired\n"
    "                       in queue = rejected/deadline, expired\n"
    "                       mid-run = degraded blocks (0 = none)\n"
    "  --threads <N>        worker lanes (0 = hardware concurrency)\n"
    "  --stats-json <path>  final stats document at drain (default\n"
    "                       stdout)\n"
    "  --snapshot-seconds <S>  append one stats document (with delta\n"
    "                       counters) to --snapshot-json every S\n"
    "                       seconds, written temp-then-rename\n"
    "  --snapshot-json <path>  periodic snapshot JSONL destination\n"
    "  --trace-json <path>  merged Chrome-trace span stream at drain\n"
    "                       (\"-\" = stdout); `trace-dump` control\n"
    "                       lines serve the same stream live\n"
    "  --interval-ms <ms>   top: scrape period (default 1000)\n"
    "  --iterations <N>     top: render N frames then exit (0 = until\n"
    "                       interrupted; useful for scripts/CI)\n"
    "  --isolate <mode>     none (default) | process: run ladder\n"
    "                       attempts in pre-forked sandbox worker\n"
    "                       subprocesses; a worker killed by a signal,\n"
    "                       rlimit, or the hung-worker watchdog costs\n"
    "                       only its one request (answered degraded,\n"
    "                       payload quarantined) and is respawned\n"
    "  --isolate-hang-ms <ms>  watchdog SIGKILL bound for requests\n"
    "                       with no deadline (default 10000)\n"
    "  --isolate-rlimit-cpu <s>  per-worker RLIMIT_CPU seconds\n"
    "                       (0 = unlimited)\n"
    "  --isolate-rlimit-as-mb <MiB>  per-worker RLIMIT_AS (0 =\n"
    "                       unlimited; keep 0 under sanitizers)\n"
    "\n"
    "exit codes: 0 success (including lenient recovery and a clean\n"
    "drain), 1 runtime error, 2 usage error\n";

CliOptions
parseArgs(int argc, char **argv)
{
    CliOptions opts;
    if (argc < 2) {
        std::fputs(kUsage, stderr);
        std::exit(2);
    }
    opts.command = argv[1];

    for (int i = 2; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                usageError("missing value for ", arg);
            return argv[++i];
        };
        if (arg == "--kernel")
            opts.kernel = next();
        else if (arg == "--algorithm")
            opts.algorithm = parseAlgorithm(next());
        else if (arg == "--builder")
            opts.builder = parseBuilder(next());
        else if (arg == "--machine")
            opts.machineName = next();
        else if (arg == "--policy")
            opts.policy = parsePolicy(next());
        else if (arg == "--window")
            opts.window = std::atoi(next().c_str());
        else if (arg == "--block")
            opts.block = std::atoi(next().c_str());
        else if (arg == "--heuristics")
            opts.heuristics = true;
        else if (arg == "--threads")
            opts.threads =
                static_cast<unsigned>(std::atoi(next().c_str()));
        else if (arg == "--stats-json")
            opts.statsJson = next();
        else if (arg == "--trace")
            opts.tracePath = next();
        else if (arg == "--trace-format") {
            opts.traceFormat = next();
            if (opts.traceFormat != "jsonl" &&
                opts.traceFormat != "chrome")
                usageError("unknown trace format '", opts.traceFormat,
                           "' (expected jsonl or chrome)");
        } else if (arg == "--counters")
            opts.counters = true;
        else if (arg == "--histograms")
            opts.histograms = true;
        else if (arg == "--zero-times")
            opts.zeroTimes = true;
        else if (arg == "--strict")
            opts.strict = true;
        else if (arg == "--verify")
            opts.verify = true;
        else if (arg == "--no-verify")
            opts.verify = false;
        else if (arg == "--capture-outliers") {
            opts.captureOutliers = std::atoi(next().c_str());
            if (opts.captureOutliers <= 0)
                usageError("--capture-outliers needs a positive K");
        } else if (arg == "--outlier-dir")
            opts.outlierDir = next();
        else if (arg == "--explain-block") {
            opts.explainBlock = std::atoi(next().c_str());
            if (opts.explainBlock < 0)
                usageError("--explain-block needs a block id >= 0");
        } else if (arg == "--log-level") {
            try {
                log::setThreshold(log::parseLevel(next()));
            } catch (const FatalError &e) {
                usageError(e.what());
            }
        } else if (arg == "--flight-recorder")
            opts.flightRecorder = true;
        else if (arg == "--crash-dump")
            opts.crashDump = next();
        else if (arg == "--inject-panic") {
            // Undocumented: CI's crash-dump self-test injects a
            // failure after the run so the dump path is exercised
            // without a real bug.
            opts.injectPanic = next();
            if (opts.injectPanic != "run" && opts.injectPanic != "abort")
                usageError("--inject-panic expects 'run' or 'abort'");
        } else if (arg == "--max-block-insts")
            opts.maxBlockInsts = std::atoi(next().c_str());
        else if (arg == "--max-block-seconds")
            opts.maxBlockSeconds = std::atof(next().c_str());
        else if (arg == "--max-run-seconds")
            opts.maxRunSeconds = std::atof(next().c_str());
        else if (arg == "--fault-inject") {
            opts.faultInject = next();
            try {
                (void)fault::parseSpec(opts.faultInject);
            } catch (const FatalError &e) {
                usageError(e.what());
            }
        } else if (arg == "--reduce-seconds") {
            opts.reduceSeconds = std::atof(next().c_str());
            if (opts.reduceSeconds <= 0.0)
                usageError("--reduce-seconds needs a positive budget");
        } else if (arg == "--socket")
            opts.socketPath = next();
        else if (arg == "--queue-capacity") {
            opts.queueCapacity = std::atoi(next().c_str());
            if (opts.queueCapacity <= 0)
                usageError("--queue-capacity needs a positive depth");
        } else if (arg == "--deadline-ms") {
            opts.deadlineMs = std::atof(next().c_str());
            if (opts.deadlineMs < 0.0)
                usageError("--deadline-ms must be >= 0");
        } else if (arg == "--snapshot-seconds") {
            opts.snapshotSeconds = std::atof(next().c_str());
            if (opts.snapshotSeconds <= 0.0)
                usageError(
                    "--snapshot-seconds needs a positive period");
        } else if (arg == "--snapshot-json")
            opts.snapshotJson = next();
        else if (arg == "--trace-json")
            opts.traceJson = next();
        else if (arg == "--interval-ms") {
            opts.topIntervalMs = std::atoi(next().c_str());
            if (opts.topIntervalMs <= 0)
                usageError("--interval-ms needs a positive period");
        } else if (arg == "--iterations") {
            opts.topIterations = std::atoi(next().c_str());
            if (opts.topIterations < 0)
                usageError("--iterations must be >= 0");
        } else if (arg == "--isolate") {
            opts.isolate = next();
            if (opts.isolate != "none" && opts.isolate != "process")
                usageError("--isolate expects 'none' or 'process'");
        } else if (arg == "--isolate-hang-ms") {
            opts.isolateHangMs = std::atoi(next().c_str());
            if (opts.isolateHangMs <= 0)
                usageError("--isolate-hang-ms needs a positive bound");
        } else if (arg == "--isolate-rlimit-cpu") {
            opts.isolateRlimitCpu = std::atoi(next().c_str());
            if (opts.isolateRlimitCpu < 0)
                usageError("--isolate-rlimit-cpu must be >= 0");
        } else if (arg == "--isolate-rlimit-as-mb") {
            opts.isolateRlimitAsMb = std::atoi(next().c_str());
            if (opts.isolateRlimitAsMb < 0)
                usageError("--isolate-rlimit-as-mb must be >= 0");
        } else if (arg == "--isolate-exe")
            opts.isolateExe = next();
        else if (!arg.empty() && arg[0] != '-')
            opts.input = arg;
        else
            usageError("unknown option '", arg,
                       "' (run sched91 with no arguments for usage)");
    }
    return opts;
}

/** Robustness knobs shared by every pipeline-driving command. */
void
applyRobustness(PipelineOptions &pipeline, const CliOptions &opts)
{
    pipeline.verify = opts.verify;
    pipeline.containFaults = !opts.strict;
    pipeline.maxBlockInsts = opts.maxBlockInsts;
    pipeline.maxBlockSeconds = opts.maxBlockSeconds;
    pipeline.maxRunSeconds = opts.maxRunSeconds;
}

// --- Graceful shutdown (docs/ROBUSTNESS.md) --------------------------
//
// Two commands share SIGINT/SIGTERM for graceful shutdown, and both
// handlers are async-signal-safe (a relaxed atomic store, plus one
// write(2) to the daemon's self-pipe):
//
//  - `serve` drains: stop admitting, answer everything already
//    accepted, emit the final stats document, exit 0;
//  - `schedule`/`profile` cancel an interrupt token the pipeline
//    checks at each block start, so remaining blocks degrade to their
//    original order and the run still finishes its accounting, stats
//    output, and exit-0 path.

CancellationToken g_interrupt;
service::Daemon *g_daemon = nullptr;

void
onInterruptSignal(int)
{
    g_interrupt.requestCancel();
}

void
onDaemonSignal(int)
{
    if (g_daemon != nullptr)
        g_daemon->requestDrain();
}

/** Route SIGINT/SIGTERM to @p handler for the scope's lifetime. */
class SignalScope
{
  public:
    explicit SignalScope(void (*handler)(int))
        : prevInt_(std::signal(SIGINT, handler)),
          prevTerm_(std::signal(SIGTERM, handler))
    {
    }
    ~SignalScope()
    {
        std::signal(SIGINT, prevInt_);
        std::signal(SIGTERM, prevTerm_);
    }

    SignalScope(const SignalScope &) = delete;
    SignalScope &operator=(const SignalScope &) = delete;

  private:
    void (*prevInt_)(int);
    void (*prevTerm_)(int);
};

/**
 * Observability bracket for one CLI run: enables the layer when any
 * obs option is present, opens the trace sink, and on finish() prints
 * the counter table and/or writes the stats JSON.
 */
class ObsSession
{
  public:
    explicit ObsSession(const CliOptions &opts) : opts_(opts)
    {
        if (!opts.observing())
            return;
        obs::setEnabled(true);
        obs::PhaseProfiler::global().clear();
        before_ = obs::CounterRegistry::global().snapshot();
        if (!opts.tracePath.empty()) {
            std::ostream *stream = &std::cout;
            if (opts.tracePath != "-") {
                traceFile_.open(opts.tracePath);
                if (!traceFile_)
                    fatal("cannot open '", opts.tracePath, "'");
                stream = &traceFile_;
            }
            if (opts.traceFormat == "chrome")
                sink_ = std::make_unique<obs::ChromeTraceSink>(
                    *stream, opts.zeroTimes);
            else
                sink_ = std::make_unique<obs::JsonlTraceSink>(
                    *stream, opts.zeroTimes);
        }
    }

    obs::TraceSink *trace() { return sink_.get(); }

    obs::RunMeta
    meta(const CliOptions &opts) const
    {
        obs::RunMeta m;
        m.command = opts.command;
        m.input = opts.kernel.empty() ? opts.input : opts.kernel;
        m.builder = builderKindName(opts.builder);
        m.algorithm = algorithmName(opts.algorithm);
        m.machine = opts.machineName;
        m.policy = aliasPolicyName(opts.policy);
        return m;
    }

    /** Counter deltas accumulated since the session opened. */
    obs::CounterSet
    deltas() const
    {
        return obs::CounterRegistry::global().deltaSince(before_);
    }

    /** Emit --counters and --stats-json output for a finished run. */
    void
    finish(const ProgramResult &result)
    {
        if (!opts_.observing())
            return;
        obs::CounterSet delta = deltas();
        if (opts_.counters)
            std::fputs(obs::renderCounters(delta).c_str(), stderr);
        if (opts_.histograms) {
            if (result.histograms.empty())
                std::fputs("(no histograms: this command does not run "
                           "the block pipeline)\n",
                           stderr);
            else
                std::fputs(
                    obs::renderHistograms(result.histograms).c_str(),
                    stderr);
        }
        if (opts_.statsJson.empty())
            return;
        obs::EmitOptions emit;
        emit.zeroTimes = opts_.zeroTimes;
        std::string json = obs::programResultJson(
            result, meta(opts_), delta,
            &obs::PhaseProfiler::global().root(), emit);
        if (opts_.statsJson == "-") {
            std::fputs(json.c_str(), stdout);
            std::fputc('\n', stdout);
        } else {
            std::ofstream out(opts_.statsJson);
            if (!out)
                fatal("cannot open '", opts_.statsJson, "'");
            out << json << '\n';
        }
    }

    /** Counter table only (commands without a ProgramResult). */
    void
    finishCountersOnly()
    {
        if (opts_.counters)
            std::fputs(obs::renderCounters(deltas()).c_str(), stderr);
    }

  private:
    const CliOptions &opts_;
    std::ofstream traceFile_;
    /** Declared after traceFile_ so it is destroyed first — the
     * Chrome sink writes its buffered document on destruction. */
    std::unique_ptr<obs::TraceSink> sink_;
    obs::CounterSet before_;
};

Program
loadInput(const CliOptions &opts, std::size_t *parseErrors = nullptr,
          std::size_t *parseWarnings = nullptr)
{
    if (!opts.kernel.empty())
        return kernelProgram(opts.kernel);
    if (opts.input.empty())
        fatal("no input file; pass a .s file or --kernel <name>");
    std::ifstream in(opts.input);
    if (!in)
        fatal("cannot open '", opts.input, "'");
    std::ostringstream text;
    text << in.rdbuf();

    // Lenient by default: malformed lines become source-located
    // diagnostics on stderr (via the leveled logger, so --log-level
    // error can silence parse warnings) and the rest of the file
    // still schedules.  --strict restores fail-fast (the engine
    // throws on first error).
    DiagnosticEngine::Options dopts;
    dopts.strict = opts.strict;
    dopts.echoToLog = true;
    DiagnosticEngine diags(dopts);
    Program prog = parseAssembly(text.str(), diags, opts.input);
    if (diags.hasErrors())
        log::error("sched91: ", diags.errorCount(), " malformed line",
                   diags.errorCount() == 1 ? "" : "s",
                   " dropped; scheduling the rest");
    if (parseErrors)
        *parseErrors = diags.errorCount();
    if (parseWarnings)
        *parseWarnings = diags.warningCount();
    stampMemGenerations(prog);
    return prog;
}

BlockView
selectBlock(Program &prog, const CliOptions &opts,
            std::vector<BasicBlock> &blocks)
{
    PartitionOptions popts;
    popts.window = opts.window;
    blocks = partitionBlocks(prog, popts);
    if (opts.block < 0 ||
        opts.block >= static_cast<int>(blocks.size())) {
        fatal("block ", opts.block, " out of range (program has ",
              blocks.size(), " blocks)");
    }
    return BlockView(prog, blocks[static_cast<std::size_t>(opts.block)]);
}

int
cmdSchedule(const CliOptions &opts)
{
    SignalScope signals(onInterruptSignal);
    ObsSession session(opts);
    std::size_t parse_errors = 0, parse_warnings = 0;
    Program prog = loadInput(opts, &parse_errors, &parse_warnings);
    MachineModel machine = presetByName(opts.machineName);
    PartitionOptions popts;
    popts.window = opts.window;
    auto blocks = partitionBlocks(prog, popts);

    PipelineOptions popeline;
    popeline.algorithm = opts.algorithm;
    popeline.builder = opts.builder;
    popeline.build.memPolicy = opts.policy;
    applyRobustness(popeline, opts);

    // Aggregate run statistics for --stats-json (phase seconds come
    // from the profiler tree scheduleBlock feeds).
    ProgramResult agg;
    agg.numBlocks = blocks.size();
    agg.numInsts = prog.size();
    agg.parseErrors = parse_errors;
    agg.parseWarnings = parse_warnings;

    long long before = 0, after = 0;
    std::printf("! scheduled by sched91 (%s, %s)\n",
                std::string(algorithmName(opts.algorithm)).c_str(),
                std::string(builderKindName(opts.builder)).c_str());
    for (std::size_t b = 0; b < blocks.size(); ++b) {
        const BasicBlock &bb = blocks[b];
        BlockView block(prog, bb);

        obs::CounterSet block_before;
        obs::ScopedPhase block_timer("block");
        if (session.trace())
            block_before = obs::CounterRegistry::global().snapshot();

        // Per-block containment: a fault degrades this block to its
        // original instruction order and the run continues (--strict
        // propagates instead; see docs/ROBUSTNESS.md).  A SIGINT/
        // SIGTERM drain degrades every remaining block the same way —
        // the accounting and stats output below still run and the
        // process exits 0, so an interrupted run leaves a complete,
        // well-formed record.
        std::optional<BlockScheduleResult> result;
        if (g_interrupt.cancelled()) {
            obs::ev::cancelRunInterrupted.inc();
            obs::ev::robustBlocksDegraded.inc();
            ++agg.blocksDegraded;
            agg.blockIssues.push_back(ProgramResult::BlockIssue{
                b, "interrupt",
                "run interrupted: block kept original order", true});
        } else {
            try {
                result = scheduleBlock(block, machine, popeline);
            } catch (const std::exception &e) {
                if (opts.strict)
                    throw;
                std::fprintf(stderr,
                             "sched91: block %zu degraded to original "
                             "order: %s\n",
                             b, e.what());
                obs::ev::robustBlocksDegraded.inc();
                ++agg.blocksDegraded;
                agg.blockIssues.push_back(ProgramResult::BlockIssue{
                    b, "sched", e.what(), true});
            }
        }

        if (session.trace()) {
            obs::TraceEvent ev;
            ev.block = b;
            ev.begin = bb.begin;
            ev.size = bb.size();
            ev.phase = "block";
            ev.seconds = block_timer.stop();
            ev.counters = obs::CounterRegistry::global().deltaSince(
                block_before);
            session.trace()->event(ev);
        }
        if (result)
            agg.dagStats.accumulate(result->dag);

        // Quality bookkeeping against a table-built ground truth is
        // not part of the measured pipeline: keep its events out of
        // the counters (a table-fwd build here would otherwise show
        // table probes under --builder n2-fwd).
        bool was_observing = obs::enabled();
        obs::setEnabled(false);
        try {
            Dag gt = TableForwardBuilder().build(block, machine,
                                                 popeline.build);
            long long original =
                simulateSchedule(gt, originalOrderSchedule(gt).order,
                                 machine)
                    .cycles;
            before += original;
            after += result ? simulateSchedule(gt, result->sched.order,
                                               machine)
                                  .cycles
                            : original;
        } catch (const std::exception &) {
            // A block degraded during build may defeat the ground-
            // truth builder too; skip its cycle accounting.
        }
        obs::setEnabled(was_observing);
        std::printf(".B%u:\n", bb.begin);
        if (result) {
            for (std::uint32_t n : result->sched.order)
                std::printf("    %s\n",
                            block.inst(n).toString().c_str());
        } else {
            for (std::uint32_t n = 0; n < bb.size(); ++n)
                std::printf("    %s\n",
                            block.inst(n).toString().c_str());
        }
    }
    std::fprintf(stderr,
                 "! %zu blocks, cycles %lld -> %lld (%.1f%%)\n",
                 blocks.size(), before, after,
                 before ? 100.0 * (before - after) / before : 0.0);

    agg.cyclesOriginal = before;
    agg.cyclesScheduled = after;
    const obs::PhaseStats &root = obs::PhaseProfiler::global().root();
    auto phase_seconds = [&root](const char *name) {
        const obs::PhaseStats *p = root.child(name);
        if (p)
            return p->seconds;
        // Phases opened by scheduleBlock nest under the CLI's
        // per-block timer when tracing.
        const obs::PhaseStats *blk = root.child("block");
        p = blk ? blk->child(name) : nullptr;
        return p ? p->seconds : 0.0;
    };
    agg.buildSeconds = phase_seconds("build");
    agg.heurSeconds = phase_seconds("heur");
    agg.schedSeconds = phase_seconds("sched");
    session.finish(agg);
    return 0;
}

int
cmdDag(const CliOptions &opts, bool dot)
{
    ObsSession session(opts);
    Program prog = loadInput(opts);
    MachineModel machine = presetByName(opts.machineName);
    std::vector<BasicBlock> blocks;
    BlockView block = selectBlock(prog, opts, blocks);

    BuildOptions bopts;
    bopts.memPolicy = opts.policy;
    Dag dag = makeBuilder(opts.builder)->build(block, machine, bopts);
    runAllStaticPasses(dag, PassImpl::ReverseWalk, true);
    session.finishCountersOnly();

    if (dot) {
        DotOptions dopts;
        dopts.showHeuristics = opts.heuristics;
        std::fputs(toDot(dag, dopts).c_str(), stdout);
        return 0;
    }

    std::printf("block %d: %u nodes, %zu arcs (%zu duplicate "
                "attempts merged)\n",
                opts.block, dag.size(), dag.numArcs(),
                dag.duplicateCount());
    for (std::uint32_t i = 0; i < dag.size(); ++i) {
        std::printf("%3u: %-30s d2l=%-3d est=%-3d slack=%-3d "
                    "children=%d\n",
                    i, dag.inst(i).toString().c_str(),
                    dag.ann().maxDelayToLeaf[i],
                    dag.ann().earliestStart[i], dag.ann().slack[i],
                    dag.numChildren(i));
        for (std::uint32_t arc_id : dag.succs(i)) {
            const Arc &arc = dag.arc(arc_id);
            std::printf("       -> %u %s d=%d\n", arc.to,
                        std::string(depKindName(arc.kind)).c_str(),
                        arc.delay);
        }
    }
    return 0;
}

int
cmdCompile(const CliOptions &opts)
{
    ObsSession session(opts);
    Program prog = loadInput(opts);
    MachineModel machine = presetByName(opts.machineName);
    BackendOptions bopts;
    bopts.prepass = opts.algorithm;
    bopts.builder = opts.builder;
    bopts.memPolicy = opts.policy;
    bopts.verify = opts.verify;
    bopts.containFaults = !opts.strict;
    bopts.maxBlockInsts = opts.maxBlockInsts;
    bopts.maxBlockSeconds = opts.maxBlockSeconds;
    BackendResult result = compileProgram(prog, machine, bopts);
    session.finishCountersOnly();
    std::fputs(result.program.toString().c_str(), stdout);
    std::fprintf(stderr,
                 "! %zu blocks (%zu allocated), %d spill stores, %d "
                 "reloads, %lld cycles\n",
                 result.blocks, result.allocatedBlocks,
                 result.spillStores, result.spillLoads, result.cycles);
    if (result.blocksDegraded || result.builderFallbacks)
        std::fprintf(stderr,
                     "! robustness: %zu degraded, %zu builder "
                     "fallbacks\n",
                     result.blocksDegraded, result.builderFallbacks);
    for (const ProgramResult::BlockIssue &issue : result.blockIssues)
        std::fprintf(stderr, "!   block %zu [%s]%s: %s\n", issue.block,
                     issue.stage.c_str(),
                     issue.degraded ? " degraded" : "",
                     issue.reason.c_str());
    return 0;
}

int
cmdTimeline(const CliOptions &opts)
{
    ObsSession session(opts);
    Program prog = loadInput(opts);
    MachineModel machine = presetByName(opts.machineName);
    std::vector<BasicBlock> blocks;
    BlockView block = selectBlock(prog, opts, blocks);

    PipelineOptions pipeline;
    pipeline.algorithm = opts.algorithm;
    pipeline.builder = opts.builder;
    pipeline.build.memPolicy = opts.policy;
    applyRobustness(pipeline, opts);
    auto result = scheduleBlock(block, machine, pipeline);
    session.finishCountersOnly();

    std::printf("original order:\n%s\n",
                renderTimeline(result.dag,
                               originalOrderSchedule(result.dag).order,
                               machine)
                    .c_str());
    std::printf("scheduled (%s):\n%s",
                std::string(algorithmName(opts.algorithm)).c_str(),
                renderTimeline(result.dag, result.sched.order, machine)
                    .c_str());
    return 0;
}

int
cmdStats(const CliOptions &opts)
{
    ObsSession session(opts);
    Program prog = loadInput(opts);
    PartitionOptions popts;
    popts.window = opts.window;
    auto blocks = partitionBlocks(prog, popts);
    auto s = measureStructure(prog, blocks);
    session.finishCountersOnly();
    std::printf("blocks            %zu\n", s.numBlocks);
    std::printf("instructions      %zu\n", s.numInsts);
    std::printf("insts/block       max %d avg %.2f\n",
                static_cast<int>(s.instsPerBlock.max()),
                s.instsPerBlock.avg());
    std::printf("mem exprs/block   max %d avg %.2f\n",
                static_cast<int>(s.memExprsPerBlock.max()),
                s.memExprsPerBlock.avg());
    return 0;
}

int
cmdReport(const CliOptions &opts)
{
    ObsSession session(opts);
    Program prog = loadInput(opts);
    MachineModel machine = presetByName(opts.machineName);
    PipelineOptions pipeline;
    pipeline.algorithm = opts.algorithm;
    pipeline.builder = opts.builder;
    pipeline.build.memPolicy = opts.policy;
    pipeline.partition.window = opts.window;
    applyRobustness(pipeline, opts);
    ProgramReport report = reportProgram(prog, machine, pipeline);
    std::fputs(report.render(15).c_str(), stdout);
    session.finishCountersOnly();
    return 0;
}

/** One replayable JSON bundle per captured outlier, written into
 * --outlier-dir as outlier-block<id>.json. */
void
writeOutlierBundles(const std::vector<obs::OutlierRecord> &outliers,
                    const obs::RunMeta &meta, const CliOptions &opts)
{
    obs::EmitOptions emit;
    emit.zeroTimes = opts.zeroTimes;
    for (const obs::OutlierRecord &rec : outliers) {
        std::string path = opts.outlierDir + "/outlier-block" +
                           std::to_string(rec.block) + ".json";
        std::ofstream out(path);
        if (!out)
            fatal("cannot open '", path, "'");
        out << obs::outlierBundleJson(rec, meta, emit) << '\n';
        std::fprintf(stderr, "sched91: wrote %s\n", path.c_str());
    }
}

int
cmdProfile(const CliOptions &opts)
{
    if (opts.input.empty())
        fatal("usage: sched91 profile <name>");
    SignalScope signals(onInterruptSignal);
    MachineModel machine = presetByName(opts.machineName);
    Program prog = cachedProgram(opts.input);

    PipelineOptions pipeline;
    pipeline.algorithm = opts.algorithm;
    pipeline.builder = opts.builder;
    pipeline.build.memPolicy = opts.policy;
    pipeline.partition.window = opts.window;
    pipeline.evaluate = true;
    pipeline.threads = opts.threads;
    pipeline.captureOutliers = opts.captureOutliers;
    pipeline.explainBlock = opts.explainBlock;
    pipeline.interrupt = &g_interrupt;
    applyRobustness(pipeline, opts);

    ObsSession session(opts);
    pipeline.trace = session.trace();
    ProgramResult r = runPipeline(prog, machine, pipeline);
    session.finish(r);

    if (opts.explainBlock >= 0) {
        if (r.decisions.empty())
            std::fprintf(stderr,
                         "sched91: no decision trace for block %d "
                         "(out of range or degraded)\n",
                         opts.explainBlock);
        else
            std::fputs(obs::renderDecisionTrace(r.decisions).c_str(),
                       stdout);
    }
    if (opts.captureOutliers > 0) {
        std::fputs(obs::renderOutliers(r.outliers).c_str(), stderr);
        if (!opts.outlierDir.empty())
            writeOutlierBundles(r.outliers, session.meta(opts), opts);
    }
    if (opts.injectPanic == "run")
        panic("injected failure (--inject-panic run)");
    if (opts.injectPanic == "abort")
        std::abort();

    std::printf("profile %s: %zu blocks, %zu insts\n",
                opts.input.c_str(), r.numBlocks, r.numInsts);
    std::printf("build %.2f ms, heuristics %.2f ms, schedule %.2f ms\n",
                r.buildSeconds * 1e3, r.heurSeconds * 1e3,
                r.schedSeconds * 1e3);
    std::printf("arcs/block max %d avg %.2f; children/inst max %d "
                "avg %.2f\n",
                static_cast<int>(r.dagStats.arcsPerBlock.max()),
                r.dagStats.arcsPerBlock.avg(),
                static_cast<int>(r.dagStats.childrenPerInst.max()),
                r.dagStats.childrenPerInst.avg());
    std::printf("cycles %lld -> %lld (%.1f%% gain)\n", r.cyclesOriginal,
                r.cyclesScheduled,
                r.cyclesOriginal
                    ? 100.0 * (r.cyclesOriginal - r.cyclesScheduled) /
                          r.cyclesOriginal
                    : 0.0);
    if (r.blocksDegraded || r.builderFallbacks || r.verifierRejections)
        std::fprintf(stderr,
                     "! robustness: %zu degraded, %zu builder "
                     "fallbacks, %zu verifier rejections\n",
                     r.blocksDegraded, r.builderFallbacks,
                     r.verifierRejections);
    for (const ProgramResult::BlockIssue &issue : r.blockIssues)
        std::fprintf(stderr, "!   block %zu [%s]%s: %s\n", issue.block,
                     issue.stage.c_str(),
                     issue.degraded ? " degraded" : "",
                     issue.reason.c_str());
    return 0;
}

// Outlier bundles carry the *display* names emitted by the stats
// writer (builderKindName / aliasPolicyName), which differ from the
// CLI option tokens ("n**2 fwd" vs "n2-fwd") — map them back by
// asking each enum value for its name.  A mismatch is a data error
// (exit 1), not a usage error.

BuilderKind
builderFromDisplayName(const std::string &name)
{
    static const BuilderKind kinds[] = {
        BuilderKind::N2Forward,    BuilderKind::N2Backward,
        BuilderKind::N2Landskov,   BuilderKind::TableForward,
        BuilderKind::TableBackward,
    };
    for (BuilderKind kind : kinds)
        if (builderKindName(kind) == name)
            return kind;
    fatal("unknown builder '", name, "' in bundle meta");
}

AliasPolicy
policyFromDisplayName(const std::string &name)
{
    static const AliasPolicy policies[] = {
        AliasPolicy::SerializeAll,
        AliasPolicy::BaseOffset,
        AliasPolicy::StorageClassed,
        AliasPolicy::SymbolicExpr,
    };
    for (AliasPolicy policy : policies)
        if (aliasPolicyName(policy) == name)
            return policy;
    fatal("unknown alias policy '", name, "' in bundle meta");
}

AlgorithmKind
algorithmFromDisplayName(const std::string &name)
{
    for (AlgorithmKind kind : allAlgorithms())
        if (algorithmName(kind) == name)
            return kind;
    fatal("unknown algorithm '", name, "' in bundle meta");
}

/**
 * Replay a forensic bundle written by --outlier-dir: re-parse its
 * captured source, re-run the single block under the configuration
 * recorded in its meta section, and print the per-pick decision
 * trace.  The replay is deterministic, so the reconstructed schedule
 * is the one the original run emitted.
 */
int
cmdExplain(const CliOptions &opts)
{
    if (opts.input.empty())
        fatal("usage: sched91 explain <bundle.json>");
    std::ifstream in(opts.input);
    if (!in)
        fatal("cannot open '", opts.input, "'");
    std::ostringstream text;
    text << in.rdbuf();
    obs::JsonValue doc = obs::parseJson(text.str());
    if (!doc.has("sched91_outlier"))
        fatal("'", opts.input,
              "' is not a sched91 outlier bundle (missing "
              "sched91_outlier marker)");
    if (!doc.has("source") || !doc.at("source").isString())
        fatal("'", opts.input, "' carries no source text to replay");

    // Capture configuration: bundle meta wins; CLI options fill any
    // gaps (old bundles without a policy field, say).
    AlgorithmKind algorithm = opts.algorithm;
    BuilderKind builder = opts.builder;
    AliasPolicy policy = opts.policy;
    std::string machineName = opts.machineName;
    if (doc.has("meta")) {
        const obs::JsonValue &meta = doc.at("meta");
        std::string name = meta.strOr("algorithm", "");
        if (!name.empty())
            algorithm = algorithmFromDisplayName(name);
        name = meta.strOr("builder", "");
        if (!name.empty())
            builder = builderFromDisplayName(name);
        name = meta.strOr("policy", "");
        if (!name.empty())
            policy = policyFromDisplayName(name);
        machineName = meta.strOr("machine", machineName);
    }

    const long long block =
        static_cast<long long>(doc.numberOr("block", -1));
    std::printf("bundle %s: block %lld, score %.0f, %.0f insts\n",
                opts.input.c_str(), block, doc.numberOr("score", 0),
                doc.numberOr("insts", 0));
    if (doc.has("meta")) {
        // Daemon-captured bundles carry the request's live trace id,
        // so a bundle cross-references its span tree in a
        // `trace-dump` / --trace-json stream.
        const std::string traceId =
            doc.at("meta").strOr("trace_id", "");
        if (!traceId.empty())
            std::printf("trace id: %s\n", traceId.c_str());
    }
    if (doc.has("issue")) {
        const obs::JsonValue &issue = doc.at("issue");
        std::string stage = issue.strOr("stage", "");
        if (!stage.empty())
            std::printf("issue: [%s] %s\n", stage.c_str(),
                        issue.strOr("reason", "").c_str());
    }

    // The captured source is one block's instructions (Inst::toString
    // round-trips through the parser); replay it as block 0.
    DiagnosticEngine diags;
    Program prog =
        parseAssembly(doc.at("source").str(), diags, opts.input);
    if (diags.hasErrors())
        fatal("bundle source does not re-parse:\n", diags.render());
    stampMemGenerations(prog);
    MachineModel machine = presetByName(machineName);

    PipelineOptions pipeline;
    pipeline.algorithm = algorithm;
    pipeline.builder = builder;
    pipeline.build.memPolicy = policy;
    pipeline.threads = 1;
    pipeline.explainBlock = 0;
    applyRobustness(pipeline, opts);
    ProgramResult r = runPipeline(prog, machine, pipeline);
    if (r.decisions.empty())
        fatal("replay produced no decision trace (block degraded: ",
              r.blocksDegraded, ")");
    std::fputs(obs::renderDecisionTrace(r.decisions).c_str(), stdout);
    return 0;
}

/**
 * Long-lived scheduling daemon (service/daemon.hh): newline-delimited
 * JSON requests over an AF_UNIX socket, each run through the
 * admission-control + deadline + retry/degradation ladder.
 * SIGINT/SIGTERM drains gracefully and the final stats document (the
 * drain contract) goes to --stats-json, default stdout.
 */
int
cmdServe(const CliOptions &opts)
{
    // The daemon always observes: the per-request histograms and
    // counter deltas in the final stats document are part of the
    // drain contract, not an opt-in.
    obs::setEnabled(true);
    obs::PhaseProfiler::global().clear();

    if (opts.snapshotSeconds > 0.0 && opts.snapshotJson.empty())
        fatal("serve: --snapshot-seconds needs --snapshot-json");

    service::DaemonConfig cfg;
    cfg.socketPath = opts.socketPath;
    cfg.workers = opts.threads;
    cfg.queueCapacity = static_cast<std::size_t>(opts.queueCapacity);
    cfg.statsPath = opts.statsJson.empty() ? "-" : opts.statsJson;
    cfg.zeroTimes = opts.zeroTimes;
    cfg.snapshotSeconds = opts.snapshotSeconds;
    cfg.snapshotPath = opts.snapshotJson;
    cfg.tracePath = opts.traceJson;
    cfg.engine.builder = opts.builder;
    cfg.engine.algorithm = opts.algorithm;
    cfg.engine.policy = opts.policy;
    cfg.engine.machineName = opts.machineName;
    cfg.engine.defaultDeadlineMs = opts.deadlineMs;
    cfg.engine.maxBlockInsts = opts.maxBlockInsts;
    cfg.engine.captureOutliers = opts.captureOutliers;
    cfg.engine.outlierDir = opts.outlierDir;
    cfg.isolateProcess = opts.isolate == "process";
    cfg.isolateHangMs = opts.isolateHangMs;
    cfg.isolateRlimitCpu = opts.isolateRlimitCpu;
    cfg.isolateRlimitAsMb =
        static_cast<std::size_t>(opts.isolateRlimitAsMb);
    cfg.sandboxWorkerExe = opts.isolateExe;

    service::Daemon daemon(cfg);
    g_daemon = &daemon;
    SignalScope signals(onDaemonSignal);
    int rc = daemon.run();
    g_daemon = nullptr;
    return rc;
}

/** Minimal line-oriented AF_UNIX client for `sched91 top`. */
class UnixClient
{
  public:
    explicit UnixClient(const std::string &path)
    {
        fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
        if (fd_ < 0)
            fatal("top: socket(): ", std::strerror(errno));
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        if (path.size() >= sizeof(addr.sun_path))
            fatal("top: socket path '", path,
                  "' too long for AF_UNIX");
        std::strncpy(addr.sun_path, path.c_str(),
                     sizeof(addr.sun_path) - 1);
        if (::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                      sizeof(addr)) < 0)
            fatal("top: connect('", path,
                  "'): ", std::strerror(errno),
                  " (is the daemon running?)");
    }

    ~UnixClient()
    {
        if (fd_ >= 0)
            ::close(fd_);
    }

    UnixClient(const UnixClient &) = delete;
    UnixClient &operator=(const UnixClient &) = delete;

    void
    sendLine(const std::string &line)
    {
        std::string framed = line;
        framed += '\n';
        std::size_t off = 0;
        while (off < framed.size()) {
            const ssize_t n = ::send(fd_, framed.data() + off,
                                     framed.size() - off,
                                     MSG_NOSIGNAL);
            if (n < 0) {
                if (errno == EINTR)
                    continue;
                fatal("top: send(): ", std::strerror(errno));
            }
            off += static_cast<std::size_t>(n);
        }
    }

    /** Next response line; nullopt on daemon EOF. */
    std::optional<std::string>
    recvLine()
    {
        for (;;) {
            const std::size_t nl = buffer_.find('\n');
            if (nl != std::string::npos) {
                std::string line = buffer_.substr(0, nl);
                buffer_.erase(0, nl + 1);
                return line;
            }
            char chunk[65536];
            const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
            if (n == 0)
                return std::nullopt;
            if (n < 0) {
                if (errno == EINTR)
                    continue;
                fatal("top: recv(): ", std::strerror(errno));
            }
            buffer_.append(chunk, static_cast<std::size_t>(n));
        }
    }

  private:
    int fd_ = -1;
    std::string buffer_;
};

/** Human-scaled duration from nanoseconds. */
std::string
fmtNs(double ns)
{
    char buf[64];
    if (ns >= 1e9)
        std::snprintf(buf, sizeof buf, "%.2fs", ns / 1e9);
    else if (ns >= 1e6)
        std::snprintf(buf, sizeof buf, "%.1fms", ns / 1e6);
    else if (ns >= 1e3)
        std::snprintf(buf, sizeof buf, "%.1fus", ns / 1e3);
    else
        std::snprintf(buf, sizeof buf, "%.0fns", ns);
    return buf;
}

/**
 * `sched91 top [socket]`: poll the daemon's in-band `stats` endpoint
 * and render a refreshing console frame — request rates, queue
 * pressure, latency percentiles, ladder tallies, worker health.  The
 * scrape path never enters the admission queue, so the console stays
 * live while the daemon sheds load.  With --iterations N the view
 * renders N frames without clearing the screen (scripts, CI).
 */
int
cmdTop(const CliOptions &opts)
{
    const std::string socket =
        !opts.input.empty() ? opts.input : opts.socketPath;
    UnixClient client(socket);
    const bool refresh =
        opts.topIterations == 0 && ::isatty(STDOUT_FILENO) != 0;

    double lastAccepted = -1.0;
    for (int frame = 0;
         opts.topIterations == 0 || frame < opts.topIterations;
         ++frame) {
        if (frame > 0)
            std::this_thread::sleep_for(
                std::chrono::milliseconds(opts.topIntervalMs));
        client.sendLine("{\"type\":\"stats\",\"id\":\"top\"}");
        std::optional<std::string> line = client.recvLine();
        if (!line)
            fatal("top: daemon closed the connection (draining?)");
        obs::JsonValue doc = obs::parseJson(*line);
        if (!doc.has("sched91_serve_stats"))
            fatal("top: unexpected response (not a stats document): ",
                  line->substr(0, 120));

        const obs::JsonValue &svc = doc.at("service");
        const obs::JsonValue &meta = doc.at("meta");
        const double accepted = svc.numberOr("accepted", 0);
        const double rps =
            lastAccepted >= 0.0
                ? (accepted - lastAccepted) * 1000.0 /
                      static_cast<double>(opts.topIntervalMs)
                : 0.0;
        lastAccepted = accepted;

        auto pct = [&doc](const char *hist, const char *p) -> double {
            if (!doc.has("histograms"))
                return 0.0;
            const obs::JsonValue &hists = doc.at("histograms");
            if (!hists.has(hist))
                return 0.0;
            return hists.at(hist).numberOr(p, 0);
        };

        std::string frameText;
        char buf[256];
        std::snprintf(buf, sizeof buf,
                      "sched91 top — %s   uptime %.1fs   machine %s\n",
                      socket.c_str(),
                      meta.numberOr("uptime_seconds", 0),
                      meta.strOr("machine", "?").c_str());
        frameText += buf;
        std::snprintf(
            buf, sizeof buf,
            "requests  accepted %.0f  ok %.0f  degraded %.0f  "
            "error %.0f  rejected %.0f (after admit %.0f)\n",
            accepted, svc.numberOr("ok", 0),
            svc.numberOr("degraded", 0), svc.numberOr("error", 0),
            svc.numberOr("rejected", 0),
            svc.numberOr("rejected_after_admit", 0));
        frameText += buf;
        const obs::JsonValue &queue = doc.at("queue");
        std::snprintf(
            buf, sizeof buf,
            "load      rps %.1f   queue %.0f/%.0f   wait p50 %s "
            "p99 %s   latency p50 %s p99 %s\n",
            rps, queue.numberOr("depth", 0),
            queue.numberOr("capacity", 0),
            fmtNs(pct("svc.queue_wait_ns", "p50")).c_str(),
            fmtNs(pct("svc.queue_wait_ns", "p99")).c_str(),
            fmtNs(pct("svc.request_ns", "p50")).c_str(),
            fmtNs(pct("svc.request_ns", "p99")).c_str());
        frameText += buf;
        std::snprintf(
            buf, sizeof buf,
            "ladder    retries %.0f  fallbacks %.0f  quarantine %.0f "
            "(adds %.0f, hits %.0f)  deadline %.0f\n",
            svc.numberOr("retries", 0),
            svc.numberOr("degraded_fallbacks", 0),
            svc.numberOr("quarantine_size", 0),
            svc.numberOr("quarantine_adds", 0),
            svc.numberOr("quarantine_hits", 0),
            svc.numberOr("deadline_expired", 0));
        frameText += buf;
        if (meta.strOr("isolate", "") == "process") {
            std::snprintf(
                buf, sizeof buf,
                "workers   lanes %.0f  live %.0f  crashes %.0f  "
                "kills %.0f  respawns %.0f  spawn-failures %.0f\n",
                meta.numberOr("workers", 0),
                svc.numberOr("workers_live", 0),
                svc.numberOr("worker_crashes", 0),
                svc.numberOr("worker_kills", 0),
                svc.numberOr("worker_respawns", 0),
                svc.numberOr("worker_spawn_failures", 0));
            frameText += buf;
        }
        if (doc.has("trace")) {
            std::snprintf(buf, sizeof buf,
                          "trace     spans %.0f (dropped %.0f)\n",
                          doc.at("trace").numberOr("spans", 0),
                          doc.at("trace").numberOr("dropped", 0));
            frameText += buf;
        }

        if (refresh)
            std::fputs("\x1b[H\x1b[2J", stdout);
        else if (frame > 0)
            std::fputc('\n', stdout);
        std::fputs(frameText.c_str(), stdout);
        std::fflush(stdout);
    }
    return 0;
}

/**
 * Shrink a source that fails the differential oracle to a near-
 * minimal reproducer (fuzz/differential.hh): whole lines first, then
 * trailing operands.  --reduce-seconds caps the search wall-clock and
 * returns the best reduction found so far.  An input that passes the
 * oracle is a data error (exit 1) — there is nothing to reduce.
 */
int
cmdReduce(const CliOptions &opts)
{
    std::string source;
    if (!opts.kernel.empty()) {
        source = kernelProgram(opts.kernel).toString();
    } else {
        if (opts.input.empty())
            fatal("usage: sched91 reduce <file.s> "
                  "[--reduce-seconds S]");
        std::ifstream in(opts.input);
        if (!in)
            fatal("cannot open '", opts.input, "'");
        std::ostringstream text;
        text << in.rdbuf();
        source = text.str();
    }

    MachineModel machine = presetByName(opts.machineName);
    fuzz::OracleOptions oopts;
    oopts.memPolicy = opts.policy;

    ObsSession session(opts);
    fuzz::OracleReport report =
        fuzz::checkSource(source, machine, oopts);
    if (report.ok)
        fatal("input passes the differential oracle (",
              report.blocksChecked, " blocks, ",
              report.schedulesChecked,
              " schedules checked); nothing to reduce");
    std::fprintf(stderr, "sched91: oracle failure: %s\n",
                 report.failure.c_str());

    std::string reduced = fuzz::minimizeSource(source, machine, oopts,
                                               opts.reduceSeconds);
    auto lineCount = [](const std::string &text) {
        return static_cast<std::size_t>(
            std::count(text.begin(), text.end(), '\n'));
    };
    std::fprintf(stderr, "sched91: reduced %zu -> %zu lines%s\n",
                 lineCount(source), lineCount(reduced),
                 opts.reduceSeconds > 0.0 ? " (wall-clock capped)"
                                          : "");
    session.finishCountersOnly();
    std::fputs(reduced.c_str(), stdout);
    return 0;
}

/**
 * Hidden command: the child side of `sched91 serve --isolate=process`
 * (service/sandbox_worker.hh).  Spawned only by the supervisor, which
 * generates exactly this flag set — so it parses its own argv (the
 * fd-plumbing flags are not part of the public CLI) and never prints
 * usage.
 */
int
cmdSandboxWorker(int argc, char **argv)
{
    service::SandboxWorkerConfig cfg;
    std::string faultSpec;
    try {
        for (int i = 2; i < argc; ++i) {
            const std::string arg = argv[i];
            auto next = [&]() -> std::string {
                if (i + 1 >= argc)
                    fatal("missing value for ", arg);
                return argv[++i];
            };
            if (arg == "--req-fd")
                cfg.reqFd = std::atoi(next().c_str());
            else if (arg == "--resp-fd")
                cfg.respFd = std::atoi(next().c_str());
            else if (arg == "--ring-fd")
                cfg.ringFd = std::atoi(next().c_str());
            else if (arg == "--builder")
                cfg.engine.builder = service::builderFromToken(next());
            else if (arg == "--algorithm")
                cfg.engine.algorithm =
                    service::algorithmFromToken(next());
            else if (arg == "--policy")
                cfg.engine.policy = service::policyFromToken(next());
            else if (arg == "--machine")
                cfg.engine.machineName = next();
            else if (arg == "--max-block-insts")
                cfg.engine.maxBlockInsts = std::atoi(next().c_str());
            else if (arg == "--capture-outliers")
                cfg.engine.captureOutliers = std::atoi(next().c_str());
            else if (arg == "--outlier-dir")
                cfg.engine.outlierDir = next();
            else if (arg == "--fault-inject")
                faultSpec = next();
            else
                fatal("unknown option '", arg, "'");
        }
        if (!faultSpec.empty())
            fault::configure(fault::parseSpec(faultSpec));
        return service::runSandboxWorker(cfg);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "sched91 __sandbox-worker: %s\n",
                     e.what());
        return 1;
    }
}

} // namespace

int
main(int argc, char **argv)
{
    // Dispatched before parseArgs: the worker's fd-plumbing flags are
    // internal, not public CLI surface.
    if (argc >= 2 &&
        std::strcmp(argv[1], "__sandbox-worker") == 0)
        return cmdSandboxWorker(argc, argv);
    try {
        CliOptions opts = parseArgs(argc, argv);
        if (opts.flightRecorder || !opts.crashDump.empty()) {
            obs::flight::setEnabled(true);
            obs::flight::setCrashDump(opts.crashDump, opts.zeroTimes);
            obs::flight::installCrashHandlers();
        }
        if (!opts.faultInject.empty())
            fault::configure(fault::parseSpec(opts.faultInject));
        if (opts.command == "schedule")
            return cmdSchedule(opts);
        if (opts.command == "dag")
            return cmdDag(opts, /*dot=*/false);
        if (opts.command == "dot")
            return cmdDag(opts, /*dot=*/true);
        if (opts.command == "stats")
            return cmdStats(opts);
        if (opts.command == "profile")
            return cmdProfile(opts);
        if (opts.command == "report")
            return cmdReport(opts);
        if (opts.command == "timeline")
            return cmdTimeline(opts);
        if (opts.command == "compile")
            return cmdCompile(opts);
        if (opts.command == "explain")
            return cmdExplain(opts);
        if (opts.command == "serve")
            return cmdServe(opts);
        if (opts.command == "top")
            return cmdTop(opts);
        if (opts.command == "reduce")
            return cmdReduce(opts);
        if (opts.command == "kernels") {
            for (const std::string &name : kernelNames())
                std::printf("%s\n", name.c_str());
            return 0;
        }
        std::fprintf(stderr, "sched91: unknown command '%s'\n\n",
                     opts.command.c_str());
        std::fputs(kUsage, stderr);
        return 2;
    } catch (const UsageError &e) {
        std::fprintf(stderr, "sched91: %s\n\n", e.what());
        std::fputs(kUsage, stderr);
        return 2;
    } catch (const PanicError &e) {
        // Internal invariant violation — still a clean exit, never an
        // abort (docs/ROBUSTNESS.md exit-code contract).  With the
        // flight recorder on, the last-events dump lands first so the
        // forensics survive the exit.
        if (obs::flight::enabled())
            obs::flight::writeCrashDump(e.what());
        std::fprintf(stderr, "sched91: internal error: %s\n", e.what());
        return 1;
    } catch (const FatalError &e) {
        std::fprintf(stderr, "sched91: %s\n", e.what());
        return 1;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "sched91: unexpected error: %s\n",
                     e.what());
        return 1;
    }
}
