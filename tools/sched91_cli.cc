/**
 * @file
 * sched91 command-line driver.
 *
 *     sched91 schedule <file.s> [options]   schedule and print assembly
 *     sched91 dag      <file.s> [options]   print the dependence DAG
 *     sched91 dot      <file.s> [options]   DOT graph on stdout
 *     sched91 stats    <file.s>             Table-3-style structure
 *     sched91 profile  <name>               run a synthetic workload
 *     sched91 report   <file.s>             worst-scheduled blocks
 *     sched91 timeline <file.s> --block N   FU occupancy chart
 *     sched91 compile  <file.s>             prepass+allocate+postpass
 *     sched91 kernels                       list built-in kernels
 *
 * Common options:
 *     --kernel <name>       use a built-in kernel instead of a file
 *     --algorithm <name>    gibbons-muchnick | krishnamurthy |
 *                           schlansker | shieh-papachristou | tiemann |
 *                           warren | simple-forward   (default)
 *     --builder <name>      n2-fwd | n2-bwd | landskov | table-fwd |
 *                           table-bwd   (default table-fwd)
 *     --machine <name>      sparcstation2 | rs6000like | superscalar2
 *     --policy <name>       serialize | base-offset | storage |
 *                           symbolic
 *     --window <N>          instruction window (0 = none)
 *     --block <N>           operate on basic block N (default 0)
 *     --heuristics          annotate DOT nodes with heuristic values
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "core/sched91.hh"
#include "dag/dot_export.hh"
#include "sched/report.hh"
#include "core/backend.hh"
#include "sched/timeline.hh"
#include "support/logging.hh"

using namespace sched91;

namespace
{

struct CliOptions
{
    std::string command;
    std::string input;
    std::string kernel;
    AlgorithmKind algorithm = AlgorithmKind::SimpleForward;
    BuilderKind builder = BuilderKind::TableForward;
    std::string machineName = "sparcstation2";
    AliasPolicy policy = AliasPolicy::BaseOffset;
    int window = 0;
    int block = 0;
    bool heuristics = false;
};

AlgorithmKind
parseAlgorithm(const std::string &name)
{
    for (AlgorithmKind kind : allAlgorithms())
        if (algorithmName(kind) == name)
            return kind;
    fatal("unknown algorithm '", name, "'");
}

BuilderKind
parseBuilder(const std::string &name)
{
    static const std::map<std::string, BuilderKind> map = {
        {"n2-fwd", BuilderKind::N2Forward},
        {"n2-bwd", BuilderKind::N2Backward},
        {"landskov", BuilderKind::N2Landskov},
        {"table-fwd", BuilderKind::TableForward},
        {"table-bwd", BuilderKind::TableBackward},
    };
    auto it = map.find(name);
    if (it == map.end())
        fatal("unknown builder '", name, "'");
    return it->second;
}

AliasPolicy
parsePolicy(const std::string &name)
{
    static const std::map<std::string, AliasPolicy> map = {
        {"serialize", AliasPolicy::SerializeAll},
        {"base-offset", AliasPolicy::BaseOffset},
        {"storage", AliasPolicy::StorageClassed},
        {"symbolic", AliasPolicy::SymbolicExpr},
    };
    auto it = map.find(name);
    if (it == map.end())
        fatal("unknown alias policy '", name, "'");
    return it->second;
}

CliOptions
parseArgs(int argc, char **argv)
{
    CliOptions opts;
    if (argc < 2)
        fatal("usage: sched91 <command> [input] [options]");
    opts.command = argv[1];

    for (int i = 2; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("missing value for ", arg);
            return argv[++i];
        };
        if (arg == "--kernel")
            opts.kernel = next();
        else if (arg == "--algorithm")
            opts.algorithm = parseAlgorithm(next());
        else if (arg == "--builder")
            opts.builder = parseBuilder(next());
        else if (arg == "--machine")
            opts.machineName = next();
        else if (arg == "--policy")
            opts.policy = parsePolicy(next());
        else if (arg == "--window")
            opts.window = std::atoi(next().c_str());
        else if (arg == "--block")
            opts.block = std::atoi(next().c_str());
        else if (arg == "--heuristics")
            opts.heuristics = true;
        else if (!arg.empty() && arg[0] != '-')
            opts.input = arg;
        else
            fatal("unknown option '", arg, "'");
    }
    return opts;
}

Program
loadInput(const CliOptions &opts)
{
    if (!opts.kernel.empty())
        return kernelProgram(opts.kernel);
    if (opts.input.empty())
        fatal("no input file; pass a .s file or --kernel <name>");
    std::ifstream in(opts.input);
    if (!in)
        fatal("cannot open '", opts.input, "'");
    std::ostringstream text;
    text << in.rdbuf();
    Program prog = parseAssembly(text.str());
    stampMemGenerations(prog);
    return prog;
}

BlockView
selectBlock(Program &prog, const CliOptions &opts,
            std::vector<BasicBlock> &blocks)
{
    PartitionOptions popts;
    popts.window = opts.window;
    blocks = partitionBlocks(prog, popts);
    if (opts.block < 0 ||
        opts.block >= static_cast<int>(blocks.size())) {
        fatal("block ", opts.block, " out of range (program has ",
              blocks.size(), " blocks)");
    }
    return BlockView(prog, blocks[static_cast<std::size_t>(opts.block)]);
}

int
cmdSchedule(const CliOptions &opts)
{
    Program prog = loadInput(opts);
    MachineModel machine = presetByName(opts.machineName);
    PartitionOptions popts;
    popts.window = opts.window;
    auto blocks = partitionBlocks(prog, popts);

    PipelineOptions popeline;
    popeline.algorithm = opts.algorithm;
    popeline.builder = opts.builder;
    popeline.build.memPolicy = opts.policy;

    long long before = 0, after = 0;
    std::printf("! scheduled by sched91 (%s, %s)\n",
                std::string(algorithmName(opts.algorithm)).c_str(),
                std::string(builderKindName(opts.builder)).c_str());
    for (const BasicBlock &bb : blocks) {
        BlockView block(prog, bb);
        auto result = scheduleBlock(block, machine, popeline);
        Dag gt = TableForwardBuilder().build(block, machine,
                                             popeline.build);
        before += simulateSchedule(gt,
                                   originalOrderSchedule(gt).order,
                                   machine)
                      .cycles;
        after +=
            simulateSchedule(gt, result.sched.order, machine).cycles;
        std::printf(".B%u:\n", bb.begin);
        for (std::uint32_t n : result.sched.order)
            std::printf("    %s\n", block.inst(n).toString().c_str());
    }
    std::fprintf(stderr,
                 "! %zu blocks, cycles %lld -> %lld (%.1f%%)\n",
                 blocks.size(), before, after,
                 before ? 100.0 * (before - after) / before : 0.0);
    return 0;
}

int
cmdDag(const CliOptions &opts, bool dot)
{
    Program prog = loadInput(opts);
    MachineModel machine = presetByName(opts.machineName);
    std::vector<BasicBlock> blocks;
    BlockView block = selectBlock(prog, opts, blocks);

    BuildOptions bopts;
    bopts.memPolicy = opts.policy;
    Dag dag = makeBuilder(opts.builder)->build(block, machine, bopts);
    runAllStaticPasses(dag, PassImpl::ReverseWalk, true);

    if (dot) {
        DotOptions dopts;
        dopts.showHeuristics = opts.heuristics;
        std::fputs(toDot(dag, dopts).c_str(), stdout);
        return 0;
    }

    std::printf("block %d: %u nodes, %zu arcs (%zu duplicate "
                "attempts merged)\n",
                opts.block, dag.size(), dag.numArcs(),
                dag.duplicateCount());
    for (std::uint32_t i = 0; i < dag.size(); ++i) {
        const DagNode &node = dag.node(i);
        std::printf("%3u: %-30s d2l=%-3d est=%-3d slack=%-3d "
                    "children=%d\n",
                    i, node.inst->toString().c_str(),
                    node.ann.maxDelayToLeaf, node.ann.earliestStart,
                    node.ann.slack, node.numChildren);
        for (std::uint32_t arc_id : node.succArcs) {
            const Arc &arc = dag.arc(arc_id);
            std::printf("       -> %u %s d=%d\n", arc.to,
                        std::string(depKindName(arc.kind)).c_str(),
                        arc.delay);
        }
    }
    return 0;
}

int
cmdCompile(const CliOptions &opts)
{
    Program prog = loadInput(opts);
    MachineModel machine = presetByName(opts.machineName);
    BackendOptions bopts;
    bopts.prepass = opts.algorithm;
    bopts.builder = opts.builder;
    bopts.memPolicy = opts.policy;
    BackendResult result = compileProgram(prog, machine, bopts);
    std::fputs(result.program.toString().c_str(), stdout);
    std::fprintf(stderr,
                 "! %zu blocks (%zu allocated), %d spill stores, %d "
                 "reloads, %lld cycles\n",
                 result.blocks, result.allocatedBlocks,
                 result.spillStores, result.spillLoads, result.cycles);
    return 0;
}

int
cmdTimeline(const CliOptions &opts)
{
    Program prog = loadInput(opts);
    MachineModel machine = presetByName(opts.machineName);
    std::vector<BasicBlock> blocks;
    BlockView block = selectBlock(prog, opts, blocks);

    PipelineOptions pipeline;
    pipeline.algorithm = opts.algorithm;
    pipeline.builder = opts.builder;
    pipeline.build.memPolicy = opts.policy;
    auto result = scheduleBlock(block, machine, pipeline);

    std::printf("original order:\n%s\n",
                renderTimeline(result.dag,
                               originalOrderSchedule(result.dag).order,
                               machine)
                    .c_str());
    std::printf("scheduled (%s):\n%s",
                std::string(algorithmName(opts.algorithm)).c_str(),
                renderTimeline(result.dag, result.sched.order, machine)
                    .c_str());
    return 0;
}

int
cmdStats(const CliOptions &opts)
{
    Program prog = loadInput(opts);
    PartitionOptions popts;
    popts.window = opts.window;
    auto blocks = partitionBlocks(prog, popts);
    auto s = measureStructure(prog, blocks);
    std::printf("blocks            %zu\n", s.numBlocks);
    std::printf("instructions      %zu\n", s.numInsts);
    std::printf("insts/block       max %d avg %.2f\n",
                static_cast<int>(s.instsPerBlock.max()),
                s.instsPerBlock.avg());
    std::printf("mem exprs/block   max %d avg %.2f\n",
                static_cast<int>(s.memExprsPerBlock.max()),
                s.memExprsPerBlock.avg());
    return 0;
}

int
cmdReport(const CliOptions &opts)
{
    Program prog = loadInput(opts);
    MachineModel machine = presetByName(opts.machineName);
    PipelineOptions pipeline;
    pipeline.algorithm = opts.algorithm;
    pipeline.builder = opts.builder;
    pipeline.build.memPolicy = opts.policy;
    pipeline.partition.window = opts.window;
    ProgramReport report = reportProgram(prog, machine, pipeline);
    std::fputs(report.render(15).c_str(), stdout);
    return 0;
}

int
cmdProfile(const CliOptions &opts)
{
    if (opts.input.empty())
        fatal("usage: sched91 profile <name>");
    MachineModel machine = presetByName(opts.machineName);
    Program prog = cachedProgram(opts.input);

    PipelineOptions pipeline;
    pipeline.algorithm = opts.algorithm;
    pipeline.builder = opts.builder;
    pipeline.build.memPolicy = opts.policy;
    pipeline.partition.window = opts.window;
    pipeline.evaluate = true;
    ProgramResult r = runPipeline(prog, machine, pipeline);

    std::printf("profile %s: %zu blocks, %zu insts\n",
                opts.input.c_str(), r.numBlocks, r.numInsts);
    std::printf("build %.2f ms, heuristics %.2f ms, schedule %.2f ms\n",
                r.buildSeconds * 1e3, r.heurSeconds * 1e3,
                r.schedSeconds * 1e3);
    std::printf("arcs/block max %d avg %.2f; children/inst max %d "
                "avg %.2f\n",
                static_cast<int>(r.dagStats.arcsPerBlock.max()),
                r.dagStats.arcsPerBlock.avg(),
                static_cast<int>(r.dagStats.childrenPerInst.max()),
                r.dagStats.childrenPerInst.avg());
    std::printf("cycles %lld -> %lld (%.1f%% gain)\n", r.cyclesOriginal,
                r.cyclesScheduled,
                r.cyclesOriginal
                    ? 100.0 * (r.cyclesOriginal - r.cyclesScheduled) /
                          r.cyclesOriginal
                    : 0.0);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        CliOptions opts = parseArgs(argc, argv);
        if (opts.command == "schedule")
            return cmdSchedule(opts);
        if (opts.command == "dag")
            return cmdDag(opts, /*dot=*/false);
        if (opts.command == "dot")
            return cmdDag(opts, /*dot=*/true);
        if (opts.command == "stats")
            return cmdStats(opts);
        if (opts.command == "profile")
            return cmdProfile(opts);
        if (opts.command == "report")
            return cmdReport(opts);
        if (opts.command == "timeline")
            return cmdTimeline(opts);
        if (opts.command == "compile")
            return cmdCompile(opts);
        if (opts.command == "kernels") {
            for (const std::string &name : kernelNames())
                std::printf("%s\n", name.c_str());
            return 0;
        }
        fatal("unknown command '", opts.command, "'");
    } catch (const FatalError &e) {
        std::fprintf(stderr, "sched91: %s\n", e.what());
        return 1;
    }
}
