/**
 * @file
 * Soak client for `sched91 serve` (docs/ROBUSTNESS.md).
 *
 * Replays a deterministic generated corpus (fuzz/program_gen) against
 * a running daemon and asserts the response contract:
 *
 *  - zero lost responses: every request line sent gets an answer;
 *  - zero duplicated responses: each id is answered exactly once;
 *  - every status is within the ladder ("ok" | "degraded" |
 *    "rejected"), and every rejection carries a known reason
 *    ("overloaded" | "draining" | "deadline") — the client only sends
 *    well-formed requests, so a "status":"error" is a violation;
 *  - the empty program answers "ok" with zero blocks.
 *
 * Requests are pipelined (bounded in-flight window per connection)
 * across several concurrent connections, so the daemon's admission
 * queue, worker lanes, and per-connection write lock all see real
 * contention.  With `--fault-inject` armed on the daemon, fault
 * decisions are a pure function of (seed, block content), so the same
 * corpus fails the same way on every run — which is what makes these
 * assertions possible at all.
 *
 * Exit codes: 0 contract held, 1 violations (printed to stderr),
 * 2 usage.
 */

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "fuzz/program_gen.hh"
#include "obs/json.hh"
#include "obs/json_parse.hh"

using namespace sched91;

namespace
{

struct Options
{
    std::string socketPath = "/tmp/sched91.sock";
    int requests = 64;
    int connections = 4;
    int pipeline = 4; ///< in-flight window per connection
    std::uint64_t seed = 1;
    double corruption = 0.0;
    double deadlineMs = 0.0;
    bool evaluate = false;
    bool includeEmpty = true;
    bool expectDegraded = false; ///< a crash run with zero degraded
                                 ///< answers means faults never landed
    int timeoutMs = 30000; ///< silence this long = lost responses

    /** Interleave a `{"type":"stats"}` control scrape after every N
     * answered requests per connection (0 = off), asserting the
     * telemetry contract under load: counters monotone across
     * successive scrapes, and at quiesce the conservation law
     * accepted == ok + degraded + error + rejected_after_admit. */
    int scrapeEvery = 0;
};

const char kUsage[] =
    "usage: soak_client [--socket <path>] [--requests N]\n"
    "                   [--connections C] [--pipeline K] [--seed S]\n"
    "                   [--corrupt R] [--deadline-ms MS] [--evaluate]\n"
    "                   [--no-empty] [--expect-degraded]\n"
    "                   [--timeout-ms MS] [--scrape-every N]\n";

Options
parseArgs(int argc, char **argv)
{
    Options opts;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "soak_client: missing value for %s\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--socket")
            opts.socketPath = next();
        else if (arg == "--requests")
            opts.requests = std::atoi(next());
        else if (arg == "--connections")
            opts.connections = std::atoi(next());
        else if (arg == "--pipeline")
            opts.pipeline = std::atoi(next());
        else if (arg == "--seed")
            opts.seed = static_cast<std::uint64_t>(std::atoll(next()));
        else if (arg == "--corrupt")
            opts.corruption = std::atof(next());
        else if (arg == "--deadline-ms")
            opts.deadlineMs = std::atof(next());
        else if (arg == "--evaluate")
            opts.evaluate = true;
        else if (arg == "--no-empty")
            opts.includeEmpty = false;
        else if (arg == "--expect-degraded")
            opts.expectDegraded = true;
        else if (arg == "--timeout-ms")
            opts.timeoutMs = std::atoi(next());
        else if (arg == "--scrape-every")
            opts.scrapeEvery = std::atoi(next());
        else {
            std::fputs(kUsage, stderr);
            std::exit(2);
        }
    }
    if (opts.requests < 1 || opts.connections < 1 || opts.pipeline < 1) {
        std::fputs(kUsage, stderr);
        std::exit(2);
    }
    if (opts.connections > opts.requests)
        opts.connections = opts.requests;
    return opts;
}

/** One request line; id "q<index>" is globally unique, so duplicate
 * and loss detection needs no coordination between connections. */
std::string
requestLine(const Options &opts, int index)
{
    std::string source;
    if (!(opts.includeEmpty && index == 0)) {
        fuzz::GenParams params;
        params.seed = opts.seed + static_cast<std::uint64_t>(index);
        params.numBlocks = 1 + index % 4;
        params.maxBlockSize = 8 + (index % 5) * 12;
        params.corruption = opts.corruption;
        source = fuzz::generateSource(params);
    }
    obs::JsonWriter w;
    w.beginObject();
    w.key("id").value("q" + std::to_string(index));
    w.key("source").value(source);
    if (opts.deadlineMs > 0.0)
        w.key("deadline_ms").value(opts.deadlineMs);
    if (opts.evaluate)
        w.key("evaluate").value(true);
    w.endObject();
    std::string line = w.take();
    line += '\n';
    return line;
}

/** Shared tallies and the violation log. */
struct Outcome
{
    std::atomic<std::uint64_t> ok{0}, degraded{0}, rejected{0};
    std::mutex mu;
    std::vector<std::string> violations;

    void
    violation(std::string what)
    {
        std::lock_guard<std::mutex> lock(mu);
        violations.push_back(std::move(what));
    }
};

int
connectTo(const std::string &path)
{
    int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0)
        return -1;
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) < 0) {
        ::close(fd);
        return -1;
    }
    return fd;
}

bool
sendAll(int fd, const std::string &bytes)
{
    std::size_t off = 0;
    while (off < bytes.size()) {
        ssize_t n = ::send(fd, bytes.data() + off, bytes.size() - off,
                           MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

/** Check one response line against the contract; returns the id it
 * answered (empty = violation already recorded). */
std::string
checkResponse(const std::string &line, Outcome &out)
{
    try {
        obs::JsonValue doc = obs::parseJson(line);
        std::string id = doc.strOr("id", "");
        std::string status = doc.strOr("status", "");
        if (status == "ok") {
            out.ok.fetch_add(1, std::memory_order_relaxed);
        } else if (status == "degraded") {
            out.degraded.fetch_add(1, std::memory_order_relaxed);
        } else if (status == "rejected") {
            std::string reason = doc.strOr("reason", "");
            if (reason != "overloaded" && reason != "draining" &&
                reason != "deadline")
                out.violation("unknown rejection reason '" + reason +
                              "' for " + id);
            out.rejected.fetch_add(1, std::memory_order_relaxed);
        } else {
            out.violation("status '" + status + "' outside the ladder "
                          "for " + id + ": " + line);
        }
        if (id == "q0" && status != "ok")
            out.violation("empty program answered '" + status +
                          "', expected ok");
        if (id.empty())
            out.violation("response without an id: " + line);
        return id;
    } catch (const std::exception &e) {
        out.violation(std::string("unparseable response (") + e.what() +
                      "): " + line);
        return "";
    }
}

/** Service counters a live scrape must never report going backwards
 * (all Sum-kind; gauges like queue depth legitimately move both
 * ways). */
const char *const kMonotoneKeys[] = {
    "accepted", "rejected", "ok",
    "degraded", "error",    "retries",
    "rejected_after_admit",
};

/** Per-connection memory of the previous scrape's counters. */
using ScrapeState = std::map<std::string, double>;

/**
 * Check one in-band stats response against the telemetry contract:
 * the document is well-formed, the monotone service counters never
 * decrease between successive scrapes on this connection, and the
 * answered tallies never exceed admissions (in-flight requests make
 * `accepted` run ahead; it must never run behind).
 */
void
checkScrape(const std::string &line, ScrapeState &last, Outcome &out)
{
    try {
        obs::JsonValue doc = obs::parseJson(line);
        if (!doc.has("service")) {
            out.violation("stats response without a service section: " +
                          line.substr(0, 120));
            return;
        }
        const obs::JsonValue &svc = doc.at("service");
        for (const char *key : kMonotoneKeys) {
            const double now = svc.numberOr(key, 0);
            auto it = last.find(key);
            if (it != last.end() && now < it->second)
                out.violation(
                    "stats counter '" + std::string(key) +
                    "' went backwards between scrapes (" +
                    std::to_string(it->second) + " -> " +
                    std::to_string(now) + ")");
            last[key] = now;
        }
        const double accepted = svc.numberOr("accepted", 0);
        const double answered = svc.numberOr("ok", 0) +
                                svc.numberOr("degraded", 0) +
                                svc.numberOr("error", 0) +
                                svc.numberOr("rejected_after_admit", 0);
        if (answered > accepted)
            out.violation(
                "scrape answered more than it admitted (accepted " +
                std::to_string(accepted) + ", answered " +
                std::to_string(answered) + ")");
    } catch (const std::exception &e) {
        out.violation(std::string("unparseable stats response (") +
                      e.what() + "): " + line.substr(0, 120));
    }
}

/**
 * Drive one connection: send its request slice with a bounded
 * in-flight window, read newline-delimited responses (they may come
 * back in any order — workers finish when they finish), and account
 * every id exactly once.  With --scrape-every N, a stats control line
 * is interleaved after every N answered requests — on the same
 * connection, so the scrape contends with real load.
 */
void
runConnection(const Options &opts, const std::vector<int> &indices,
              Outcome &out)
{
    int fd = connectTo(opts.socketPath);
    if (fd < 0) {
        out.violation("cannot connect to '" + opts.socketPath +
                      "': " + std::strerror(errno));
        return;
    }

    std::set<std::string> pending; // sent, not yet answered
    std::size_t next = 0;
    std::string buffer;
    bool dead = false;
    int answeredHere = 0;  // request answers seen on this connection
    int pendingScrapes = 0;
    ScrapeState scrapeState;

    while (!dead && (next < indices.size() || !pending.empty() ||
                     pendingScrapes > 0)) {
        while (next < indices.size() &&
               pending.size() <
                   static_cast<std::size_t>(opts.pipeline)) {
            int index = indices[next++];
            if (!sendAll(fd, requestLine(opts, index))) {
                out.violation("send failed: " +
                              std::string(std::strerror(errno)));
                dead = true;
                break;
            }
            pending.insert("q" + std::to_string(index));
        }
        if (dead || (pending.empty() && pendingScrapes == 0))
            break;

        pollfd pfd{fd, POLLIN, 0};
        int rc = ::poll(&pfd, 1, opts.timeoutMs);
        if (rc == 0) {
            out.violation(std::to_string(pending.size()) +
                          " responses lost (read timeout)");
            break;
        }
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            out.violation(std::string("poll failed: ") +
                          std::strerror(errno));
            break;
        }
        char chunk[65536];
        ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
        if (n == 0) {
            out.violation(std::to_string(pending.size()) +
                          " responses lost (daemon closed the "
                          "connection)");
            break;
        }
        if (n < 0) {
            if (errno == EINTR)
                continue;
            out.violation(std::string("recv failed: ") +
                          std::strerror(errno));
            break;
        }
        buffer.append(chunk, static_cast<std::size_t>(n));
        std::size_t start = 0;
        for (std::size_t nl;
             (nl = buffer.find('\n', start)) != std::string::npos;
             start = nl + 1) {
            std::string respLine = buffer.substr(start, nl - start);
            if (pendingScrapes > 0 &&
                respLine.find("\"sched91_serve_stats\"") !=
                    std::string::npos) {
                checkScrape(respLine, scrapeState, out);
                --pendingScrapes;
                continue;
            }
            std::string id = checkResponse(respLine, out);
            if (id.empty())
                continue;
            if (pending.erase(id) == 0) {
                out.violation("duplicate or unexpected response id '" +
                              id + "'");
                continue;
            }
            ++answeredHere;
            if (opts.scrapeEvery > 0 &&
                answeredHere % opts.scrapeEvery == 0) {
                if (sendAll(fd, "{\"type\":\"stats\",\"id\":\"s" +
                                    std::to_string(answeredHere) +
                                    "\"}\n"))
                    ++pendingScrapes;
                else
                    out.violation("scrape send failed: " +
                                  std::string(std::strerror(errno)));
            }
        }
        buffer.erase(0, start);
    }
    ::close(fd);
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts = parseArgs(argc, argv);

    // Round-robin the corpus over the connections.
    std::vector<std::vector<int>> slices(
        static_cast<std::size_t>(opts.connections));
    for (int i = 0; i < opts.requests; ++i)
        slices[static_cast<std::size_t>(i % opts.connections)]
            .push_back(i);

    Outcome out;
    std::vector<std::thread> drivers;
    for (const std::vector<int> &slice : slices)
        drivers.emplace_back(
            [&opts, &slice, &out] { runConnection(opts, slice, out); });
    for (std::thread &t : drivers)
        t.join();

    // At quiesce (all drivers joined, nothing in flight) a fresh
    // scrape must balance exactly: every admitted request was answered
    // down the ladder or charged to rejected_after_admit.
    if (opts.scrapeEvery > 0) {
        int fd = connectTo(opts.socketPath);
        if (fd < 0) {
            out.violation("final scrape: cannot connect: " +
                          std::string(std::strerror(errno)));
        } else {
            std::string line;
            if (!sendAll(fd, "{\"type\":\"stats\",\"id\":\"sfinal\"}\n")) {
                out.violation("final scrape: send failed");
            } else {
                char c;
                ssize_t n;
                while ((n = ::recv(fd, &c, 1, 0)) == 1 && c != '\n')
                    line += c;
                if (line.empty())
                    out.violation("final scrape: no response");
            }
            ::close(fd);
            if (!line.empty()) {
                try {
                    obs::JsonValue doc = obs::parseJson(line);
                    const obs::JsonValue &svc = doc.at("service");
                    const double accepted = svc.numberOr("accepted", 0);
                    const double answeredSvc =
                        svc.numberOr("ok", 0) +
                        svc.numberOr("degraded", 0) +
                        svc.numberOr("error", 0) +
                        svc.numberOr("rejected_after_admit", 0);
                    if (answeredSvc != accepted)
                        out.violation(
                            "conservation broken at quiesce: accepted " +
                            std::to_string(accepted) +
                            " != ok+degraded+error+rejected_after_admit " +
                            std::to_string(answeredSvc));
                } catch (const std::exception &e) {
                    out.violation(
                        std::string("final scrape unparseable (") +
                        e.what() + ")");
                }
            }
        }
    }

    const std::uint64_t answered = out.ok.load() + out.degraded.load() +
                                   out.rejected.load();
    std::printf("soak_client: %d requests over %d connections: "
                "%llu ok, %llu degraded, %llu rejected\n",
                opts.requests, opts.connections,
                static_cast<unsigned long long>(out.ok.load()),
                static_cast<unsigned long long>(out.degraded.load()),
                static_cast<unsigned long long>(out.rejected.load()));
    if (answered != static_cast<std::uint64_t>(opts.requests))
        out.violations.push_back(
            "answered " + std::to_string(answered) + " of " +
            std::to_string(opts.requests) + " requests");
    if (opts.expectDegraded && out.degraded.load() == 0)
        out.violations.push_back(
            "--expect-degraded: no degraded responses — the injected "
            "faults never fired");
    if (out.violations.empty())
        return 0;
    for (const std::string &v : out.violations)
        std::fprintf(stderr, "soak_client: CONTRACT VIOLATION: %s\n",
                     v.c_str());
    return 1;
}
