#!/bin/sh
# Configure, build, and run the full test suite — the repo's tier-1
# verification sequence.  Run from the repository root:
#
#     tools/verify.sh [build-dir]
#
set -e

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j
cd "$BUILD_DIR"
ctest --output-on-failure -j
